"""The Profiler facade: one object wiring all profiling concerns.

``install_profiling(hub, ...)`` is the single switch.  Until it is
called nothing in this package runs: the hub's ``profiler`` stays
``None``, histograms record no exemplars, broker/minidb locks stay
plain, no commit spans are recorded and no sampler thread exists — the
profiling-off cost is the cost of a few ``is None`` checks.  Once
installed:

* broker registry/per-queue locks and the minidb statement mutex are
  swapped for :class:`~repro.obs.prof.locks.ProfiledLock` wrappers
  (through the seams those tiers expose — they never import this
  package);
* hub-fed histograms start recording ``(value, trace_id)`` exemplars
  and the commit hook records ``db.commit`` spans;
* the workflow filter feeds finished requests into the
  :class:`~repro.obs.prof.slo.SLOTracker` and the
  :class:`~repro.obs.prof.retain.SlowTraceRetainer`;
* optionally a :class:`~repro.obs.prof.sampler.StackSampler` thread
  collects collapsed stacks.

:meth:`Profiler.report` assembles everything — per-pattern latency
attribution (:class:`~repro.obs.prof.attribution.CriticalPathAnalyzer`
over the tracer's archive), lock contention, SLO burn rates, slow
traces, exemplars and sampler output — into one JSON-friendly dict,
served by ``GET /workflow/profile`` and the ``repro.obs.prof`` CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.prof.attribution import (
    ASYNC_STAGE_ORDER,
    SYNC_STAGE_ORDER,
    CriticalPathAnalyzer,
)
from repro.obs.prof.locks import LockProfiler
from repro.obs.prof.retain import SlowTraceRetainer
from repro.obs.prof.sampler import StackSampler
from repro.obs.prof.slo import SLOPolicy, SLOTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.obs.prof.witness import LockOrderWitness


class Profiler:
    """Aggregates attribution, contention, SLO and slow-trace state."""

    def __init__(
        self,
        hub: "ObservabilityHub",
        lock_profiler: LockProfiler | None = None,
        sampler: StackSampler | None = None,
        retainer: SlowTraceRetainer | None = None,
        slo_tracker: SLOTracker | None = None,
        commit_spans: bool = True,
        witness: "LockOrderWitness | None" = None,
    ) -> None:
        self.hub = hub
        self.lock_profiler = lock_profiler
        #: Optional runtime lock-order witness (shared with the
        #: profiled locks); its verdict joins :meth:`report`.
        self.witness = witness
        self.sampler = sampler
        self.retainer = retainer or SlowTraceRetainer(hub.exporter)
        self.slo_tracker = slo_tracker or SLOTracker()
        #: Whether the commit hook records ``db.commit`` spans.
        self.commit_spans = commit_spans
        self.analyzer = CriticalPathAnalyzer(hub.exporter)

    # -- request feed -------------------------------------------------------

    def observe_request(
        self,
        operation: str,
        duration_ms: float,
        trace_id: str | None = None,
        pattern: str | None = None,
    ) -> None:
        """One finished request: feed SLOs and the slow-trace retainer.

        Never raises — profiling must not take the request path down.
        """
        try:
            self.slo_tracker.observe(operation, duration_ms)
            if pattern is not None:
                self.slo_tracker.observe(pattern, duration_ms)
            key = f"{operation}:{pattern}" if pattern else operation
            self.retainer.offer(key, duration_ms, trace_id)
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    # -- reporting ----------------------------------------------------------

    def attribution(self) -> dict[str, Any]:
        """Per-pattern stage attribution over the archived traces."""
        return self.analyzer.aggregate(self.analyzer.attribute_all())

    def report(self) -> dict[str, Any]:
        """Everything the profiling layer knows, JSON-friendly."""
        registry = self.hub.registry
        report: dict[str, Any] = {
            "enabled": True,
            "attribution": self.attribution(),
            "locks": (
                self.lock_profiler.report()
                if self.lock_profiler is not None
                else []
            ),
            "slo": self.slo_tracker.report(),
            "slow_traces": self.retainer.report(),
            "exemplars": {
                name: registry.family_exemplars(name)
                for name in (
                    "http_request_latency_ms",
                    "broker_delivery_wait_ms",
                    "db_commit_latency_ms",
                )
                if registry.family_exemplars(name)
            },
        }
        if self.sampler is not None:
            report["sampler"] = self.sampler.report()
        if self.witness is not None:
            report["lock_order"] = self.witness.check().to_dict()
        untimed = registry.snapshot().get("broker_deliveries_untimed")
        if untimed is not None:
            report["untimed_deliveries"] = {
                series["labels"].get("reason", "?"): series["value"]
                for series in untimed["series"]
            }
        return report

    def render_text(self) -> str:
        """Human-readable profile report (CLI/servlet text mode)."""
        report = self.report()
        lines: list[str] = []
        lines.append("== latency attribution (per pattern) ==")
        attribution = report["attribution"]
        if not attribution:
            lines.append("  (no attributable traces)")
        for pattern, agg in attribution.items():
            lines.append(
                f"  {pattern}: {agg['traces']} traces, "
                f"mean {agg['mean_total_ms']:.2f} ms, "
                f"max {agg['max_total_ms']:.2f} ms "
                f"(slowest trace {agg['slowest_trace_id']})"
            )
            for stage in SYNC_STAGE_ORDER:
                value = agg["stages"].get(stage, 0.0)
                share = (
                    value / agg["mean_total_ms"] * 100.0
                    if agg["mean_total_ms"]
                    else 0.0
                )
                lines.append(
                    f"    sync  {stage:<16} {value:8.3f} ms  {share:5.1f}%"
                )
            for stage in ASYNC_STAGE_ORDER:
                value = agg["async_stages"].get(stage, 0.0)
                lines.append(f"    async {stage:<16} {value:8.3f} ms")
        if report["locks"]:
            lines.append("== lock contention ==")
            for lock in report["locks"]:
                wait = lock["wait_ms"]
                hold = lock["hold_ms"]
                lines.append(
                    f"  {lock['name']}: {lock['acquisitions']} acq, "
                    f"{lock['contended']} contended "
                    f"({lock['contention_rate'] * 100.0:.1f}%), "
                    f"wait p95 {wait['p95']:.3f} ms, "
                    f"hold p95 {hold['p95']:.3f} ms"
                )
                for holder in lock["holders"][:3]:
                    lines.append(
                        f"    holder {holder['site']:<28}"
                        f" {holder['hold_ms']:8.3f} ms"
                        f" ({holder['share'] * 100.0:.1f}%)"
                    )
        if report["slo"]:
            lines.append("== SLO burn rates ==")
            for operation, status in report["slo"].items():
                verdict = "ok" if status["ok"] else "BURNING"
                lines.append(
                    f"  {operation}: {verdict}, "
                    f"burn {status['burn_rate']:.2f}, "
                    f"{status['violations']}/{status['window_count']} "
                    f"over {status['threshold_ms']:.1f} ms "
                    f"(objective {status['objective']:.3f})"
                )
        if report["slow_traces"]:
            lines.append("== slowest retained traces ==")
            for operation, entries in report["slow_traces"].items():
                for entry in entries:
                    lines.append(
                        f"  {operation}: {entry['duration_ms']:.2f} ms "
                        f"trace {entry['trace_id']} "
                        f"({entry['spans']} spans)"
                    )
        if report.get("untimed_deliveries"):
            lines.append("== untimed deliveries ==")
            for reason, count in report["untimed_deliveries"].items():
                lines.append(f"  {reason}: {count:g}")
        if "sampler" in report:
            sampler = report["sampler"]
            lines.append(
                f"== sampler: {sampler['samples']} samples, "
                f"{sampler['distinct_stacks']} stacks =="
            )
            for hot in sampler["hottest"][:5]:
                lines.append(f"  {hot['count']:6d} {hot['stack']}")
        if self.witness is not None:
            lines.append("== lock-order witness ==")
            lines.append("  " + self.witness.check().render_text().replace(
                "\n", "\n  "
            ))
        return "\n".join(lines)

    def close(self) -> None:
        """Stop background work (the sampler thread, if running)."""
        if self.sampler is not None:
            self.sampler.stop()


def install_profiling(
    hub: "ObservabilityHub",
    db=None,
    broker=None,
    slos: Iterable[SLOPolicy] = (),
    sampler: bool = False,
    sample_interval_s: float = 0.01,
    commit_spans: bool = True,
    profile_locks: bool = True,
    witness: "LockOrderWitness | bool | None" = None,
) -> Profiler:
    """Turn profiling on for a wired system (idempotent per hub).

    * ``db`` / ``broker`` — their locks are swapped for profiled
      wrappers (skipped with ``profile_locks=False``);
    * ``slos`` — :class:`SLOPolicy` objects to track; registers an
      ``slo`` health component (never part of readiness gating);
    * ``sampler=True`` — start the collapsed-stack wall-clock sampler;
    * ``witness`` — a :class:`~repro.obs.prof.witness.LockOrderWitness`
      (or ``True`` for a fresh one against the installed tree's static
      graph): every profiled lock reports its acquisition order to it,
      and the witness verdict joins :meth:`Profiler.report` under
      ``lock_order``.  Requires ``profile_locks``.

    Returns the (new or already-installed) :class:`Profiler`.
    """
    if hub.profiler is not None:
        return hub.profiler
    lock_witness: "LockOrderWitness | None" = None
    if witness:
        from repro.obs.prof.witness import LockOrderWitness

        lock_witness = (
            witness if isinstance(witness, LockOrderWitness)
            else LockOrderWitness()
        )
    lock_profiler: LockProfiler | None = None
    if profile_locks and (db is not None or broker is not None):
        lock_profiler = LockProfiler(clock=hub.clock, witness=lock_witness)
        if broker is not None:
            broker.install_lock_profiler(
                lock_profiler.wrap, lock_profiler.condition_factory()
            )
        if db is not None:
            db.wrap_mutex(lock_profiler.wrap)
    stack_sampler: StackSampler | None = None
    if sampler:
        stack_sampler = StackSampler(
            interval_s=sample_interval_s, clock=hub.clock
        )
        stack_sampler.start()
    tracker = SLOTracker(policies=slos)
    profiler = Profiler(
        hub,
        lock_profiler=lock_profiler,
        sampler=stack_sampler,
        retainer=SlowTraceRetainer(hub.exporter),
        slo_tracker=tracker,
        commit_spans=commit_spans,
        witness=lock_witness,
    )
    hub.profiler = profiler
    hub.exemplars_enabled = True
    if tracker.policies():
        hub.register_health("slo", tracker.health)
    return profiler
