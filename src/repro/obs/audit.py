"""Durable audit/provenance trail, persisted in minidb.

In a laboratory the record of *what happened* — which task instances
ran, who authorized them, which were marked successful, what was
backtracked — matters as much as the execution itself.  PR 1's traces
and metrics are ephemeral; this module is the durable half:

* the ``WFAudit`` table is written through ``db.insert``, i.e. the same
  statement/transaction path as every other engine write, so audit rows
  ride the write-ahead log and **survive crash recovery** exactly like
  workflow state (and an audit write inside an open engine transaction
  commits or rolls back with it);
* every row carries the acting party, a wall-clock timestamp, the
  workflow/task/instance/authorization ids that apply, the engine
  event-log sequence (when bridged from an event) and the PR-1 trace id
  of the request that caused it — so log lines, span trees and audit
  rows cross-link on one trace id;
* :meth:`AuditStore.query` reconstructs provenance timelines, filterable
  by workflow, experiment, actor, kind and time range, with pagination —
  the backing of ``GET /workflow/audit``.

The store is fed two ways: :meth:`AuditStore.on_event` subscribes to the
engine's :class:`~repro.core.events.EventLog` (task and task-instance
state transitions, authorization decisions, restarts, cancellations),
and the agent manager / workflow filter call :meth:`AuditStore.record`
directly for dispatch/ack and filter-mode decisions that have no engine
event of their own.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.minidb.predicates import AND, EQ, GE, LE
from repro.minidb.schema import Column, TableSchema
from repro.minidb.types import ColumnType
from repro.resilience.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.engine import Database

#: Name of the audit table (sibling of ``WFTask`` / ``WFAuthorization``).
AUDIT_TABLE = "WFAudit"

#: Structured columns every audit row may populate; anything else an
#: event carries lands in the ``detail`` JSON column.
_ID_COLUMNS = (
    "workflow_id",
    "wftask_id",
    "experiment_id",
    "auth_id",
)
_TEXT_COLUMNS = ("task", "event", "state")


def install_audit_schema(db: "Database") -> bool:
    """Create the ``WFAudit`` table and its indexes.

    Idempotent: returns ``False`` without touching the database when the
    table already exists — which is also how reopening a WAL-backed
    database works, since the original ``CREATE TABLE`` replays from the
    log before this runs again.
    """
    if db.has_table(AUDIT_TABLE):
        return False
    db.create_table(
        TableSchema(
            name=AUDIT_TABLE,
            columns=[
                Column("audit_id", ColumnType.INTEGER, nullable=False),
                Column("created", ColumnType.REAL, nullable=False),
                Column("kind", ColumnType.TEXT, nullable=False),
                Column("actor", ColumnType.TEXT),
                Column("workflow_id", ColumnType.INTEGER),
                Column("wftask_id", ColumnType.INTEGER),
                Column("experiment_id", ColumnType.INTEGER),
                Column("auth_id", ColumnType.INTEGER),
                Column("task", ColumnType.TEXT),
                Column("event", ColumnType.TEXT),
                Column("state", ColumnType.TEXT),
                Column("sequence", ColumnType.INTEGER),
                Column("trace_id", ColumnType.TEXT),
                Column("span_id", ColumnType.TEXT),
                Column("detail", ColumnType.TEXT),
            ],
            primary_key=("audit_id",),
            autoincrement="audit_id",
        )
    )
    db.create_index(AUDIT_TABLE, ["workflow_id"])
    db.create_index(AUDIT_TABLE, ["kind"])
    db.create_index(AUDIT_TABLE, ["experiment_id"])
    return True


class AuditStore:
    """Writes and queries the durable audit trail."""

    def __init__(
        self, db: "Database", tracer=None, log=None, clock: Clock | None = None
    ) -> None:
        self.db = db
        self.tracer = tracer
        #: :class:`~repro.obs.log.BoundLogger` the writer narrates to.
        self.log = log
        #: Injectable time source stamping the ``created`` column.
        self.clock: Clock = clock or SystemClock()
        #: Records that failed to persist (diagnostics only).
        self.write_errors = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def record(
        self,
        kind: str,
        actor: str | None = None,
        workflow_id: int | None = None,
        wftask_id: int | None = None,
        experiment_id: int | None = None,
        auth_id: int | None = None,
        task: str | None = None,
        event: str | None = None,
        state: str | None = None,
        sequence: int | None = None,
        **detail: Any,
    ) -> dict[str, Any] | None:
        """Persist one audit row; returns it, or ``None`` on failure.

        Never raises: a broken audit write must not take down the
        operation it describes.  The active span's trace context is
        stamped on automatically, which is what lets a ``/workflow/audit``
        timeline cross-link with the PR-1 trace tree.
        """
        trace_id = span_id = None
        if self.tracer is not None:
            try:
                current = self.tracer.current_span()
            except Exception:  # noqa: BLE001 - correlation is best-effort
                current = None
            if current is not None:
                trace_id = current.trace_id
                span_id = current.span_id
        row = {
            "created": self.clock.now(),
            "kind": kind,
            "actor": actor,
            "workflow_id": workflow_id,
            "wftask_id": wftask_id,
            "experiment_id": experiment_id,
            "auth_id": auth_id,
            "task": task,
            "event": event,
            "state": state,
            "sequence": sequence,
            "trace_id": trace_id,
            "span_id": span_id,
            "detail": _encode_detail(detail),
        }
        try:
            stored = self.db.insert(AUDIT_TABLE, row)
        except Exception:  # noqa: BLE001 - auditing is best-effort
            self.write_errors += 1
            return None
        if self.log is not None:
            self.log.debug(
                f"audit {kind}",
                audit_id=stored["audit_id"],
                actor=actor,
                workflow_id=workflow_id,
                experiment_id=experiment_id,
            )
        return stored

    def on_event(self, engine_event) -> None:
        """EventLog subscriber: mirror an engine event into the trail.

        Runs synchronously inside ``EventLog.emit`` — under the engine
        lock and, when the emitting code holds one open, inside the same
        database transaction as the state change it describes.
        """
        payload = dict(engine_event.payload)
        structured: dict[str, Any] = {
            "sequence": engine_event.sequence,
            "actor": _actor_from_payload(payload),
        }
        for column in _ID_COLUMNS:
            value = payload.pop(column, None)
            if isinstance(value, int) and not isinstance(value, bool):
                structured[column] = value
        for column in _TEXT_COLUMNS:
            value = payload.pop(column, None)
            if isinstance(value, str):
                structured[column] = value
        detail = {
            key: value
            for key, value in payload.items()
            if isinstance(value, (str, int, float, bool, type(None)))
            or isinstance(value, (list, tuple))
        }
        self.record(engine_event.kind, **structured, **detail)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        workflow_id: int | None = None,
        experiment_id: int | None = None,
        wftask_id: int | None = None,
        actor: str | None = None,
        kind: str | None = None,
        task: str | None = None,
        trace_id: str | None = None,
        since: float | None = None,
        until: float | None = None,
        limit: int = 100,
        offset: int = 0,
    ) -> tuple[int, list[dict[str, Any]]]:
        """``(total matching, one page)`` of audit rows, oldest first.

        ``since``/``until`` bound the ``created`` timestamp (inclusive);
        the page is ``rows[offset:offset + limit]`` of the full match.
        """
        clauses = []
        for column, value in (
            ("workflow_id", workflow_id),
            ("experiment_id", experiment_id),
            ("wftask_id", wftask_id),
            ("actor", actor),
            ("kind", kind),
            ("task", task),
            ("trace_id", trace_id),
        ):
            if value is not None:
                clauses.append(EQ(column, value))
        if since is not None:
            clauses.append(GE("created", float(since)))
        if until is not None:
            clauses.append(LE("created", float(until)))
        if not clauses:
            predicate = None
        elif len(clauses) == 1:
            predicate = clauses[0]
        else:
            predicate = AND(*clauses)
        rows = self.db.select(AUDIT_TABLE, predicate, order_by="audit_id")
        total = len(rows)
        page = rows[offset:offset + limit] if limit is not None else rows[offset:]
        return total, [decode_record(row) for row in page]

    def timeline(self, workflow_id: int) -> list[dict[str, Any]]:
        """Every audit row of one workflow, in commit order."""
        __, rows = self.query(workflow_id=workflow_id, limit=None)  # type: ignore[arg-type]
        return rows

    def count(self) -> int:
        return self.db.count(AUDIT_TABLE)


def decode_record(row: dict[str, Any]) -> dict[str, Any]:
    """An audit row with its ``detail`` JSON expanded back to a dict."""
    record = dict(row)
    raw = record.pop("detail", None)
    record["detail"] = json.loads(raw) if raw else {}
    return record


def verify_timeline(records: list[dict[str, Any]]) -> list[str]:
    """Check that a timeline's transitions obey the Fig. 4 machines.

    Replays every ``task.state`` row against the task model and every
    ``instance.state`` row against the task-instance model, per entity.
    Returns human-readable violations (empty list = provenance is
    internally consistent) — a recovered audit trail that lost or
    duplicated rows fails this check, which is how the crash-recovery
    test proves nothing went missing.
    """
    # Imported here, not at module level: repro.core's package __init__
    # pulls in the web tier, which imports repro.obs back.
    from repro.core.states import TASK_INSTANCE_MODEL, TASK_MODEL

    violations: list[str] = []
    task_states: dict[int, str] = {}
    instance_states: dict[int, str] = {}
    for record in records:
        kind = record.get("kind")
        event = record.get("event")
        state = record.get("state")
        if kind == "task.state":
            key = record.get("wftask_id")
            table, states, label = TASK_MODEL, task_states, "task"
        elif kind == "instance.state":
            key = record.get("experiment_id")
            table, states, label = TASK_INSTANCE_MODEL, instance_states, "instance"
        else:
            continue
        if key is None or event is None or state is None:
            violations.append(f"{kind} row #{record.get('audit_id')} incomplete")
            continue
        previous = states.get(key, "created")
        expected = table.get((previous, event))
        if expected is None or str(expected.value) != state:
            violations.append(
                f"{label} {key}: illegal transition "
                f"{previous!r} --{event}--> {state!r}"
            )
        states[key] = state
    return violations


def _actor_from_payload(payload: dict[str, Any]) -> str:
    """Who caused an event, best-effort from its payload."""
    for key in ("decided_by", "by", "agent"):
        value = payload.get(key)
        if isinstance(value, str) and value:
            return value
    agent_id = payload.get("agent_id")
    if isinstance(agent_id, int) and not isinstance(agent_id, bool):
        return f"agent:{agent_id}"
    return "engine"


def _encode_detail(detail: dict[str, Any]) -> str | None:
    """JSON-encode leftover payload; ``None`` when there is nothing."""
    cleaned = {key: value for key, value in detail.items() if value is not None}
    if not cleaned:
        return None
    try:
        return json.dumps(cleaned, separators=(",", ":"), default=str)
    except (TypeError, ValueError):
        return json.dumps({"unserialisable": str(cleaned)})
