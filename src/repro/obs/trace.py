"""Trace context: trace IDs, nested spans, propagation, JSON export.

A *trace* is the story of one logical operation — typically one
experiment submission — across every tier it touches.  A *span* is one
timed step of that story.  Spans nest: the WorkflowFilter's
``filter.process`` span parents the engine's event spans, which parent
the broker deliveries, which parent the agent executions.

Propagation is explicit, matching how the system actually crosses
boundaries:

* **same thread** — the :class:`Tracer` keeps a per-thread stack of
  active spans; a new span parents to the top of the stack, so code deep
  in the engine joins the surrounding request span without any plumbing;
* **across the message broker** — :meth:`Tracer.inject` copies the
  active trace context into message headers and :meth:`Tracer.extract`
  recovers it on the consumer side, so a span started in an agent thread
  (or a later pump cycle) joins the originating trace as a *remote*
  child.

Finished spans accumulate in a bounded ring so long-running servers
cannot leak; the :class:`TraceExporter` reassembles them into span trees
and dumps them as JSON for the benchmark harness.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.resilience.clock import Clock, SystemClock

#: Header/attribute keys used for cross-boundary propagation.
TRACE_ID_KEY = "obs.trace_id"
PARENT_SPAN_KEY = "obs.parent_span"


@dataclass
class Span:
    """One timed step of a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_time: float = 0.0  # wall clock, seconds since the epoch
    duration_ms: float | None = None  # None while the span is open
    attributes: dict[str, Any] = field(default_factory=dict)
    #: ``True`` when the parent span lives on the other side of a
    #: process/thread boundary (recovered from message headers).
    remote_parent: bool = False
    error: str | None = None

    @property
    def finished(self) -> bool:
        return self.duration_ms is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly flat representation."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "remote_parent": self.remote_parent,
            "error": self.error,
        }


class Tracer:
    """Creates, nests and collects spans.

    Thread-safe: the active-span stack is per-thread (crossing threads
    is what :meth:`inject`/:meth:`extract` are for), the finished-span
    ring is shared under a lock.
    """

    def __init__(
        self, capacity: int = 10_000, clock: Clock | None = None
    ) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self.capacity = capacity
        self.dropped = 0
        #: Injectable time source: ``now()`` stamps span start times,
        #: ``monotonic()`` measures durations — so a ``ManualClock``
        #: makes span durations deterministic in tests.
        self.clock: Clock = clock or SystemClock()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> str:
        with self._lock:
            return f"{next(self._ids):012x}"

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; it parents to the current span unless an explicit
        (remote) context is given.  Pair with :meth:`end_span`."""
        remote = trace_id is not None or parent_id is not None
        if not remote:
            current = self.current_span()
            if current is not None:
                trace_id = current.trace_id
                parent_id = current.span_id
        span = Span(
            name=name,
            trace_id=trace_id or f"trace-{self._new_id()}",
            span_id=self._new_id(),
            parent_id=parent_id,
            start_time=self.clock.now(),
            attributes=attributes,
            remote_parent=remote,
        )
        span._start_pc = self.clock.monotonic()  # type: ignore[attr-defined]
        self._stack().append(span)
        return span

    def end_span(self, span: Span, error: str | None = None) -> Span:
        """Close a span, compute its duration and archive it."""
        now_pc = self.clock.monotonic()
        span.duration_ms = (
            now_pc - getattr(span, "_start_pc", now_pc)
        ) * 1000.0
        if error is not None:
            span.error = error
        stack = self._stack()
        if span in stack:
            # Pop through to the span even if an inner span leaked open.
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        self._archive(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        """``with tracer.span("engine.check") as s: ...``"""
        opened = self.start_span(
            name, trace_id=trace_id, parent_id=parent_id, **attributes
        )
        try:
            yield opened
        except BaseException as exc:
            self.end_span(opened, error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            self.end_span(opened)

    def record(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None = None,
        duration_ms: float = 0.0,
        start_time: float | None = None,
        **attributes: Any,
    ) -> Span:
        """Archive an already-finished span (e.g. a measured broker
        delivery) without touching the active stack."""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start_time=self.clock.now() if start_time is None else start_time,
            duration_ms=duration_ms,
            attributes=attributes,
            remote_parent=parent_id is not None,
        )
        self._archive(span)
        return span

    def annotate(self, name: str, **attributes: Any) -> Span | None:
        """A zero-duration child of the current span (event marker).

        Returns ``None`` when no span is active — annotations never
        start traces of their own.
        """
        current = self.current_span()
        if current is None:
            return None
        return self.record(
            name,
            trace_id=current.trace_id,
            parent_id=current.span_id,
            duration_ms=0.0,
            **attributes,
        )

    def _archive(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            overflow = len(self._spans) - self.capacity
            if overflow > 0:
                del self._spans[:overflow]
                self.dropped += overflow

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def inject(self, headers: dict[str, Any] | None = None) -> dict[str, Any]:
        """Copy the active trace context into ``headers`` (new dict when
        omitted); a no-op without an active span."""
        headers = {} if headers is None else headers
        current = self.current_span()
        if current is not None:
            headers[TRACE_ID_KEY] = current.trace_id
            headers[PARENT_SPAN_KEY] = current.span_id
        return headers

    @staticmethod
    def extract(headers: dict[str, Any]) -> tuple[str | None, str | None]:
        """``(trace_id, parent_span_id)`` from carrier headers."""
        return headers.get(TRACE_ID_KEY), headers.get(PARENT_SPAN_KEY)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def spans_for(self, trace_id: str) -> list[Span]:
        """All archived spans of one trace, oldest first."""
        with self._lock:
            return [span for span in self._spans if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in archive order."""
        seen: dict[str, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


class TraceExporter:
    """Reassembles archived spans into trees and dumps them as JSON."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def tree(self, trace_id: str) -> list[dict[str, Any]]:
        """The trace as a forest of nested span dicts (children under
        ``children``); spans with missing parents become roots."""
        spans = self.tracer.spans_for(trace_id)
        nodes = {span.span_id: {**span.to_dict(), "children": []} for span in spans}
        roots: list[dict[str, Any]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def to_json(self, trace_id: str, indent: int | None = 2) -> str:
        return json.dumps(
            {"trace_id": trace_id, "spans": self.tree(trace_id)},
            indent=indent,
            default=str,
        )

    def dump(self, trace_id: str, path: str | os.PathLike[str]) -> None:
        """Write one trace's span tree to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(trace_id))
