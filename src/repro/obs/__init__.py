"""repro.obs — unified observability for the Exp-WF reproduction.

The paper evaluates Exp-WF almost entirely through *observed costs*:
database read/write amplification per request (§6) and the overhead of
each WorkflowFilter mode.  The reproduction's instrumentation grew up
fragmented — ``core/events`` has an engine-local event stream,
``minidb/stats`` counts DB accesses, the broker and agents keep their
own counters — and nothing correlated one user request across those
layers.  This package is the missing correlation layer:

* :mod:`repro.obs.trace` — trace IDs and nested spans with wall-clock
  durations, propagated through ``HttpRequest.attributes`` and message
  headers so one experiment submission yields one coherent span tree
  across filter, engine, broker and agents;
* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  histograms with p50/p95/p99 summaries) with a Prometheus-style text
  exposition;
* :mod:`repro.obs.log` — structured JSON logging: trace-correlated,
  level-filtered, ring-buffered and streamable;
* :mod:`repro.obs.audit` — the durable provenance trail: a ``WFAudit``
  table written through the same transaction/WAL path as engine state,
  recording every task/instance transition, authorization decision,
  restart, dispatch/ack and filter-mode decision, queryable as a
  timeline via ``GET /workflow/audit``;
* :mod:`repro.obs.hub` — the :class:`ObservabilityHub` that wires the
  existing instrumentation sources (EventLog, DatabaseStats,
  BrokerStats, ContainerStats, FilterStats) into one registry plus the
  log and audit stores, aggregates per-component health for
  ``GET /workflow/health``, and ``install_observability`` which
  attaches the hub to a running system (idempotently).
"""

from repro.obs.audit import (
    AUDIT_TABLE,
    AuditStore,
    decode_record,
    install_audit_schema,
    verify_timeline,
)
from repro.obs.hub import ObservabilityHub, hub_readiness, install_observability
from repro.obs.log import (
    LEVELS,
    BoundLogger,
    LogRecord,
    StructuredLog,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, TraceExporter, Tracer

__all__ = [
    "AUDIT_TABLE",
    "AuditStore",
    "BoundLogger",
    "Counter",
    "Gauge",
    "Histogram",
    "LEVELS",
    "LogRecord",
    "MetricsRegistry",
    "ObservabilityHub",
    "Span",
    "StructuredLog",
    "TraceExporter",
    "Tracer",
    "decode_record",
    "install_audit_schema",
    "hub_readiness",
    "install_observability",
    "verify_timeline",
]
