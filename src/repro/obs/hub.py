"""The ObservabilityHub: one object that sees every tier.

The hub owns a :class:`~repro.obs.trace.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.log.StructuredLog` and (when an engine is wired) an
:class:`~repro.obs.audit.AuditStore`, and knows how to feed them from
the instrumentation the system already has:

* the engine's :class:`~repro.core.events.EventLog` — subscribed, every
  event becomes an ``engine_events_total{kind=...}`` increment *and* a
  zero-duration span under the active request span, so state
  transitions show up inside the trace tree;
* ``DatabaseStats`` / ``BrokerStats`` / ``ContainerStats`` /
  ``FilterStats`` — mirrored into the registry by pull-time collectors;
* the broker — an observer hook times every send→delivery interval and
  records it both as a ``broker_delivery_wait_ms`` histogram and as a
  ``broker.deliver`` span stitched into the originating trace via the
  message's propagated headers;
* liveness data — every ``watch_*`` call also registers a health
  provider, aggregated by :meth:`ObservabilityHub.health_report` and
  served at ``GET /workflow/health``.

``install_observability`` attaches a hub to a running system (any
subset of tiers) and registers the ``/workflow/metrics``,
``/workflow/audit`` and ``/workflow/health`` servlets.  Installation is
idempotent per hub: watching the same object twice never double-wraps a
hook, double-subscribes the event stream or duplicates a collector, and
re-installing on an ``expdb`` that already carries a hub reuses that
hub instead of stacking a second one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.obs.log import StructuredLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceExporter, Tracer
from repro.resilience.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WorkflowBean
    from repro.messaging.broker import MessageBroker
    from repro.obs.audit import AuditStore
    from repro.obs.prof.profiler import Profiler
    from repro.obs.watch import Watcher
    from repro.weblims.app import ExpDB


class _BrokerObserver:
    """Times send→delivery and stitches deliveries into traces.

    Installed as ``MessageBroker.observer``; called under the broker
    lock, so it must never call back into the broker.
    """

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub
        self._send_times: dict[int, float] = {}

    def on_send(self, message, persistent: bool) -> None:
        self._send_times[message.message_id] = self.hub.clock.monotonic()
        # Cap the pending map: a queue nobody drains must not leak.
        if len(self._send_times) > 10_000:
            oldest = min(self._send_times)
            del self._send_times[oldest]

    def on_deliver(self, message) -> None:
        sent_at = self._send_times.pop(message.message_id, None)
        if sent_at is None:
            # Journal-recovered and redelivered messages have no send
            # timestamp; count them so attribution reports can state how
            # many deliveries went unmeasured instead of undercounting.
            reason = (
                "redelivered" if message.delivery_count > 1 else "recovered"
            )
            self.hub.registry.counter(
                "broker_deliveries_untimed",
                help="Deliveries with no send timestamp, by reason",
                reason=reason,
            ).inc()
            return
        wait_ms = (self.hub.clock.monotonic() - sent_at) * 1000.0
        registry = self.hub.registry
        trace_id, parent_id = self.hub.tracer.extract(message.headers)
        registry.histogram(
            "broker_delivery_wait_ms",
            help="Time between send and delivery per queue",
            queue=message.queue,
        ).observe(
            wait_ms,
            trace_id=trace_id if self.hub.exemplars_enabled else None,
        )
        if trace_id is not None:
            self.hub.tracer.record(
                "broker.deliver",
                trace_id=trace_id,
                parent_id=parent_id,
                duration_ms=wait_ms,
                # Backdate to the send instant so the span sits where the
                # queue wait actually happened on the trace timeline.
                start_time=self.hub.clock.now() - wait_ms / 1000.0,
                queue=message.queue,
                message_id=message.message_id,
                kind=message.headers.get("kind"),
            )

    def on_receive_wait(self, queue: str, waited_ms: float) -> None:
        """Time a consumer spent blocked on its queue before a delivery.

        Distinct from ``broker_delivery_wait_ms`` (send→deliver, the
        message's view): this is the *consumer's* view — how long the
        receive call sat on its queue condition, the quantity the
        per-queue locking work is meant to shrink.
        """
        self.hub.registry.histogram(
            "broker_receive_wait_ms",
            help="Time a blocking receive waited before delivery",
            queue=queue,
        ).observe(waited_ms)


class ObservabilityHub:
    """Tracer + registry + log + audit + exporter, with wiring helpers."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        log: StructuredLog | None = None,
        clock: Clock | None = None,
    ) -> None:
        #: Injectable time source shared with the tracer and log this
        #: hub creates (explicitly-passed ones keep their own clocks).
        self.clock: Clock = clock or SystemClock()
        self.tracer = tracer or Tracer(clock=self.clock)
        self.registry = registry or MetricsRegistry()
        self.log = log or StructuredLog(tracer=self.tracer, clock=self.clock)
        self.exporter = TraceExporter(self.tracer)
        self.broker_observer = _BrokerObserver(self)
        #: Durable provenance store (set by :meth:`install_audit`).
        self.audit: "AuditStore | None" = None
        #: Attribution/contention profiler, attached by
        #: :func:`repro.obs.prof.install_profiling`; ``None`` (the
        #: default) keeps every profiling hook dormant.
        self.profiler: "Profiler | None" = None
        #: Flight-recorder/alerting layer, attached by
        #: :func:`repro.obs.watch.install_watch`; ``None`` (the
        #: default) keeps the watch layer dormant.
        self.watcher: "Watcher | None" = None
        #: Whether histograms fed by the hub record trace-id exemplars.
        self.exemplars_enabled: bool = False
        #: Guards against double-wiring the same object into this hub.
        self._watched: set[tuple[str, int]] = set()
        #: Health providers by component name, registered by ``watch_*``.
        self._health: dict[str, Callable[[], dict[str, Any]]] = {}
        #: (agent, broker) pairs feeding the per-agent health component.
        self._agents: list[tuple[Any, Any]] = []
        self.log.subscribe(self._count_log_record)
        self.registry.add_collector(self._collect_self)

    def span(self, name: str, **attributes: Any):
        """Shorthand for ``hub.tracer.span``."""
        return self.tracer.span(name, **attributes)

    def _once(self, role: str, target: Any) -> bool:
        """Whether ``target`` still needs wiring for ``role`` on this hub."""
        key = (role, id(target))
        if key in self._watched:
            return False
        self._watched.add(key)
        return True

    # ------------------------------------------------------------------
    # Event stream bridge
    # ------------------------------------------------------------------

    def on_event(self, event) -> None:
        """EventLog subscriber: count the event and pin it to the trace.

        Never raises — a metrics problem must not take the engine down.
        """
        try:
            self.registry.counter(
                "engine_events_total",
                help="Engine events by kind",
                kind=event.kind,
            ).inc()
            scalars = {
                key: value
                for key, value in event.payload.items()
                if isinstance(value, (str, int, float, bool, type(None)))
            }
            self.tracer.annotate(
                f"event.{event.kind}", sequence=event.sequence, **scalars
            )
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    # ------------------------------------------------------------------
    # Structured log + audit plumbing
    # ------------------------------------------------------------------

    def _count_log_record(self, record) -> None:
        try:
            self.registry.counter(
                "log_records_total",
                help="Structured log records by level",
                level=record.level,
            ).inc()
        except Exception:  # noqa: BLE001
            pass

    def _collect_self(self) -> None:
        """Mirror the hub's own ring-buffer drop counters."""
        self.registry.counter(
            "trace_spans_dropped_total",
            help="Finished spans evicted from the tracer ring",
        ).set(self.tracer.dropped)
        self.registry.counter(
            "log_records_dropped_total",
            help="Log records evicted from the ring buffer",
        ).set(self.log.dropped)

    def install_audit(self, engine: "WorkflowBean") -> "AuditStore":
        """Create (or reuse) the durable audit store over ``engine.db``
        and subscribe it to the engine's event stream."""
        from repro.obs.audit import AuditStore, install_audit_schema

        if self.audit is None or self.audit.db is not engine.db:
            install_audit_schema(engine.db)
            self.audit = AuditStore(
                engine.db,
                tracer=self.tracer,
                log=self.log.logger("audit"),
                clock=self.clock,
            )
        if self._once("audit-events", engine):
            engine.events.subscribe(self.audit.on_event)
        return self.audit

    def audit_record(self, kind: str, **fields: Any) -> None:
        """Write one audit row if a store is attached; never raises."""
        if self.audit is None:
            return
        try:
            self.audit.record(kind, **fields)
        except Exception:  # noqa: BLE001 - auditing is best-effort
            pass

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def register_health(
        self, component: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Register (or replace) a component's health provider."""
        self._health[component] = provider

    def health_report(self) -> dict[str, Any]:
        """Aggregate every component's health into one readiness report.

        Overall status is ``ok`` only when every component reports
        ``ok``; a provider that raises is reported as ``error`` rather
        than failing the endpoint.
        """
        components: dict[str, Any] = {}
        overall = "ok"
        for name, provider in self._health.items():
            try:
                info = provider()
            except Exception as error:  # noqa: BLE001 - report, don't die
                info = {"status": "error", "error": str(error)}
            if info.get("status", "ok") != "ok":
                overall = "degraded"
            components[name] = info
        return {
            "status": overall,
            "generated_at": self.clock.now(),
            "components": components,
        }

    def _agents_health(self) -> dict[str, Any]:
        agents: dict[str, Any] = {}
        status = "ok"
        now = self.clock.now()
        for agent, broker in self._agents:
            spec = agent.spec
            last_poll = getattr(agent, "last_poll", None)
            depth = None
            if broker is not None:
                try:
                    depth = broker.queue_depth(spec.queue)
                except Exception:  # noqa: BLE001 - queue may not exist yet
                    depth = None
            agent_status = "ok"
            if last_poll is None and depth:
                # Messages are waiting but the agent never polled.
                agent_status = "stale"
                status = "degraded"
            agents[spec.name] = {
                "status": agent_status,
                "kind": spec.kind,
                "queue": spec.queue,
                "queue_depth": depth,
                "last_poll_age_s": (
                    None if last_poll is None else now - last_poll
                ),
                "handled": agent.handled_count,
                "errors": len(agent.errors),
                "in_progress": len(agent.in_progress),
            }
        return {"status": status, "agents": agents}

    # ------------------------------------------------------------------
    # Collector wiring (pull-time mirrors of external counters)
    # ------------------------------------------------------------------

    def watch_database(self, db) -> None:
        """Mirror ``DatabaseStats`` (global and per-table) at scrape time."""
        if not self._once("database", db):
            return

        def collect() -> None:
            stats = db.stats
            self.registry.counter(
                "db_reads_total", help="Logical read statements"
            ).set(stats.reads)
            self.registry.counter(
                "db_writes_total", help="Logical write statements"
            ).set(stats.writes)
            self.registry.counter(
                "db_rows_scanned_total", help="Rows scanned"
            ).set(stats.rows_scanned)
            self.registry.counter(
                "db_index_lookups_total", help="Index lookups"
            ).set(stats.index_lookups)
            self.registry.counter(
                "db_full_scans_total",
                help="Statements served without any index",
            ).set(stats.full_scans)
            self.registry.counter(
                "db_plan_cache_hits_total", help="Plan-cache hits"
            ).set(stats.plan_cache_hits)
            self.registry.counter(
                "db_plan_cache_misses_total", help="Plan-cache misses"
            ).set(stats.plan_cache_misses)
            mvcc_info = getattr(db, "mvcc_info", None)
            if mvcc_info is not None:
                mvcc = mvcc_info()
                self.registry.counter(
                    "db_snapshot_reads_total",
                    help="Reads served from pinned MVCC snapshots",
                ).set(mvcc["snapshot_reads"])
                self.registry.counter(
                    "db_snapshot_versions_total",
                    help="Committed versions published",
                ).set(mvcc["versions_published"])
                self.registry.gauge(
                    "db_snapshot_versions",
                    help="Committed versions still reachable by a pin",
                ).set(mvcc["live_versions"])
                self.registry.gauge(
                    "db_snapshot_pins",
                    help="Currently pinned snapshot readers",
                ).set(mvcc["pinned_snapshots"])
                self.registry.gauge(
                    "db_snapshot_oldest_pin_age_s",
                    help="Age of the oldest pinned snapshot (0 when none)",
                ).set(mvcc["oldest_pin_age_s"] or 0.0)
                self.registry.gauge(
                    "db_mvcc_gc_pending",
                    help="Superseded images awaiting version GC",
                ).set(mvcc["gc_pending"])
                self.registry.counter(
                    "db_mvcc_gc_reclaims_total",
                    help="Superseded images reclaimed by version GC",
                ).set(mvcc["gc_reclaims"])
            wal = db.wal_info()
            if wal.get("enabled"):
                self.registry.counter(
                    "db_wal_fsyncs_total", help="WAL fsync barriers"
                ).set(wal["fsyncs"])
                self.registry.counter(
                    "db_checkpoint_total", help="Online checkpoints taken"
                ).set(wal.get("checkpoints", 0))
                self.registry.counter(
                    "db_wal_rotations_total", help="WAL segment rotations"
                ).set(wal.get("rotations", 0))
                self.registry.gauge(
                    "db_wal_segments", help="Live WAL segment files"
                ).set(wal.get("segments", 0))
                self.registry.gauge(
                    "db_wal_size_bytes", help="On-disk WAL size"
                ).set(wal.get("size_bytes", 0))
                self.registry.gauge(
                    "db_wal_records_since_checkpoint",
                    help="Tail records a crash would replay",
                ).set(wal.get("records_since_checkpoint", 0))
            for table, count in stats.per_table_reads.items():
                self.registry.counter(
                    "db_table_reads_total",
                    help="Read statements per table",
                    table=table,
                ).set(count)
            for table, count in stats.per_table_writes.items():
                self.registry.counter(
                    "db_table_writes_total",
                    help="Write statements per table",
                    table=table,
                ).set(count)

        self.registry.add_collector(collect)

        if getattr(db, "on_commit", None) is None:
            commit_histogram = self.registry.histogram(
                "db_commit_latency_ms",
                help="Commit durability latency (WAL append to fsync)",
            )

            def on_commit(elapsed_ms: float) -> None:
                current = self.tracer.current_span()
                trace_id = current.trace_id if current is not None else None
                commit_histogram.observe(
                    elapsed_ms,
                    trace_id=trace_id if self.exemplars_enabled else None,
                )
                # Commit spans only exist under a profiler: on the bare
                # hub a hot loop of tiny commits must not flood the ring.
                if (
                    self.profiler is not None
                    and self.profiler.commit_spans
                    and current is not None
                ):
                    self.tracer.record(
                        "db.commit",
                        trace_id=current.trace_id,
                        parent_id=current.span_id,
                        duration_ms=elapsed_ms,
                        start_time=self.clock.now() - elapsed_ms / 1000.0,
                    )

            db.on_commit = on_commit

        if getattr(db, "on_checkpoint", None) is None:

            def on_checkpoint(info: dict[str, Any]) -> None:
                # Fires for every checkpoint — operator POST, CLI, and
                # the engine's automatic policy alike — so the audit
                # trail is the one complete record of compactions.
                self.audit_record(
                    "db.checkpoint",
                    event=info.get("reason"),
                    records=info.get("records"),
                    watermark=info.get("watermark"),
                    elapsed_ms=info.get("elapsed_ms"),
                )

            db.on_checkpoint = on_checkpoint

        def health() -> dict[str, Any]:
            info: dict[str, Any] = {
                "status": "ok",
                "tables": len(db.tables()),
                "reads": db.stats.reads,
                "writes": db.stats.writes,
            }
            info["wal"] = db.wal_info()
            if getattr(db, "mvcc_info", None) is not None:
                info["mvcc"] = db.mvcc_info()
            return info

        self.register_health("database", health)

    def watch_container(self, container) -> None:
        """Mirror ``ContainerStats`` at scrape time."""
        if not self._once("container", container):
            return

        def collect() -> None:
            stats = container.stats
            self.registry.counter(
                "http_requests_handled_total", help="Requests handled"
            ).set(stats.requests)
            self.registry.counter(
                "http_filter_invocations_total", help="Filter invocations"
            ).set(stats.filter_invocations)
            self.registry.counter(
                "http_servlet_invocations_total", help="Servlet invocations"
            ).set(stats.servlet_invocations)
            self.registry.counter(
                "http_internal_forwards_total", help="Internal forwards"
            ).set(stats.internal_forwards)
            self.registry.counter(
                "http_errors_total", help="Requests answered with an error"
            ).set(stats.errors)

        self.registry.add_collector(collect)

        def health() -> dict[str, Any]:
            stats = container.stats
            return {
                "status": "ok",
                "requests": stats.requests,
                "errors": stats.errors,
                "servlets": len(container.descriptor.servlet_names()),
            }

        self.register_health("container", health)

    def watch_filter(self, workflow_filter) -> None:
        """Mirror ``FilterStats`` (the Fig. 7 mode counters)."""
        if not self._once("filter", workflow_filter):
            return

        def collect() -> None:
            stats = workflow_filter.stats
            for mode, count in (
                ("passed_through", stats.passed_through),
                ("preprocessed", stats.preprocessed),
                ("denied", stats.denied),
                ("processed", stats.processed),
                ("postprocessed", stats.postprocessed),
                ("degraded", stats.degraded),
            ):
                self.registry.counter(
                    "workflow_filter_requests_total",
                    help="WorkflowFilter requests per handling mode",
                    mode=mode,
                )
                self.registry.counter(
                    "workflow_filter_requests_total",
                    help="WorkflowFilter requests per handling mode",
                    mode=mode,
                ).set(count)

        self.registry.add_collector(collect)

    def watch_engine(self, engine: "WorkflowBean") -> None:
        """Subscribe to the event stream and mirror the check counter."""
        if not self._once("engine", engine):
            return
        engine.events.subscribe(self.on_event)

        def collect() -> None:
            self.registry.counter(
                "engine_checks_total", help="check_workflow evaluations"
            ).set(engine.check_count)
            self.registry.counter(
                "engine_events_dropped_total",
                help="Events evicted from the EventLog ring buffer",
            ).set(engine.events.dropped)

        self.registry.add_collector(collect)

        def health() -> dict[str, Any]:
            from repro.minidb.predicates import EQ

            info: dict[str, Any] = {
                "status": "ok",
                "checks": engine.check_count,
                "last_event_sequence": engine.events.last_sequence,
                "events_dropped": engine.events.dropped,
            }
            if engine.db.has_table("Workflow"):
                info["running_workflows"] = engine.db.count(
                    "Workflow", EQ("status", "running")
                )
            if self.audit is not None:
                info["audit_records"] = self.audit.count()
                info["audit_write_errors"] = self.audit.write_errors
            return info

        self.register_health("engine", health)

    def watch_broker(self, broker: "MessageBroker") -> None:
        """Install the delivery observer and mirror ``BrokerStats``."""
        broker.observer = self.broker_observer
        if not self._once("broker", broker):
            return

        def collect() -> None:
            stats = broker.stats
            self.registry.counter(
                "broker_sends_total", help="Messages sent"
            ).set(stats.sends)
            self.registry.counter(
                "broker_persistent_sends_total", help="Journalled sends"
            ).set(stats.persistent_sends)
            self.registry.counter(
                "broker_deliveries_total", help="Messages delivered"
            ).set(stats.deliveries)
            self.registry.counter(
                "broker_redeliveries_total", help="Redeliveries"
            ).set(stats.redeliveries)
            self.registry.counter(
                "broker_acks_total", help="Acknowledgements"
            ).set(stats.acks)
            self.registry.counter(
                "broker_rejections_total",
                help="Messages negatively acknowledged by consumers",
            ).set(stats.rejections)
            self.registry.counter(
                "broker_dead_lettered_total",
                help="Messages quarantined after exhausting their retries",
            ).set(stats.dead_lettered)
            self.registry.counter(
                "broker_dlq_requeued_total",
                help="Quarantined messages returned to their queue",
            ).set(stats.dlq_requeued)
            self.registry.gauge(
                "broker_dlq_depth",
                help="Messages currently in the dead-letter quarantine",
            ).set(broker.dlq_depth())
            for queue, count in stats.per_queue_sends.items():
                self.registry.counter(
                    "broker_queue_sends_total",
                    help="Sends per queue",
                    queue=queue,
                ).set(count)
            for queue in broker.queue_names():
                self.registry.gauge(
                    "broker_queue_depth",
                    help="Messages waiting per queue",
                    queue=queue,
                ).set(broker.queue_depth(queue))
                self.registry.counter(
                    "broker_queue_wakeups_total",
                    help="Notified wakeups of blocked receives per queue",
                    queue=queue,
                ).set(broker.queue_wakeups(queue))
            self.registry.gauge(
                "broker_in_flight", help="Delivered but unacked messages"
            ).set(broker.in_flight_count())
            journal = broker.journal_info()
            self.registry.gauge(
                "broker_journal_backlog",
                help="Journalled messages a replay would restore",
            ).set(journal["backlog"])
            self.registry.counter(
                "broker_journal_records_total",
                help="Records appended to the broker journal",
            ).set(journal.get("appended_records", 0))
            self.registry.counter(
                "broker_journal_fsyncs_total",
                help="fsync barriers issued by the broker journal",
            ).set(journal.get("fsyncs", 0))

        self.registry.add_collector(collect)

        def health() -> dict[str, Any]:
            dlq_depth = broker.dlq_depth()
            info: dict[str, Any] = {
                "status": "ok",
                "queues": {
                    name: broker.queue_depth(name)
                    for name in broker.queue_names()
                },
                "in_flight": broker.in_flight_count(),
                "dlq_depth": dlq_depth,
                "journal": broker.journal_info(),
            }
            if dlq_depth:
                # Quarantined messages are an operator signal, not a
                # reason for the filter to refuse traffic: degrade the
                # component (health goes 503, like a burning SLO) but
                # keep readiness explicitly true.
                info["status"] = "degraded"
                info["ready"] = True
                info["reason"] = (
                    f"{dlq_depth} message(s) in the dead-letter queue"
                )
            return info

        self.register_health("broker", health)

    def watch_manager(self, manager) -> None:
        """Engine-queue depth and pump liveness for the AgentManager."""
        if not self._once("manager", manager):
            return
        from repro.core.dispatch import ENGINE_QUEUE

        def engine_queue_depth() -> int | None:
            try:
                return manager.broker.queue_depth(ENGINE_QUEUE)
            except Exception:  # noqa: BLE001 - queue may not exist yet
                return None

        def collect() -> None:
            depth = engine_queue_depth()
            if depth is not None:
                self.registry.gauge(
                    "manager_engine_queue_depth",
                    help="Agent messages waiting for the manager's pump",
                ).set(depth)
            self.registry.counter(
                "manager_dispatches_total", help="Task inputs dispatched"
            ).set(manager.dispatch_count)
            self.registry.counter(
                "manager_results_total", help="Task results applied"
            ).set(manager.result_count)
            self.registry.counter(
                "messages_rejected_total",
                help="Inbound agent messages the pump rejected as poison",
            ).set(manager.messages_rejected)
            self.registry.counter(
                "manager_dispatch_failures_total",
                help="Dispatch sends that failed (broker/fault errors)",
            ).set(manager.dispatch_failures)
            self.registry.counter(
                "manager_breaker_short_circuits_total",
                help="Dispatches skipped because a circuit breaker was open",
            ).set(manager.breaker_short_circuits)
            self.registry.counter(
                "manager_redispatches_total",
                help="Instances re-dispatched after a lease expired",
            ).set(manager.redispatches)
            self.registry.counter(
                "manager_lease_aborts_total",
                help="Instances aborted after exhausting the lease budget",
            ).set(manager.lease_aborts)
            self.registry.counter(
                "manager_lease_expiries_total",
                help="Lease deadlines missed by silent agents",
            ).set(manager.leases.expiries)
            self.registry.gauge(
                "manager_active_leases",
                help="Dispatched instances holding a liveness lease",
            ).set(manager.leases.active_count())
            from repro.resilience.breaker import STATE_CODES

            for queue, snap in manager.breaker_snapshots().items():
                self.registry.gauge(
                    "manager_breaker_state",
                    help="Dispatch circuit-breaker state "
                    "(0=closed, 1=half-open, 2=open)",
                    queue=queue,
                ).set(STATE_CODES.get(snap["state"], 0))

        self.registry.add_collector(collect)

        def health() -> dict[str, Any]:
            last_pump = manager.last_pump
            lease_rows = manager.leases.snapshot()
            breakers = manager.breaker_snapshots()
            status = "ok"
            if any(snap["state"] == "open" for snap in breakers.values()):
                status = "degraded"
            return {
                "status": status,
                "dispatches": manager.dispatch_count,
                "results": manager.result_count,
                "messages_rejected": manager.messages_rejected,
                "engine_queue_depth": engine_queue_depth(),
                "last_pump_age_s": (
                    None if last_pump is None else self.clock.now() - last_pump
                ),
                "leases": {
                    "active": len(lease_rows),
                    "expired": sum(1 for row in lease_rows if row["expired"]),
                    "expiries_total": manager.leases.expiries,
                    "redispatches_total": manager.redispatches,
                    "aborts_total": manager.lease_aborts,
                    "rows": lease_rows,
                },
                "breakers": breakers,
            }

        self.register_health("manager", health)

    def watch_agent(self, agent, broker: "MessageBroker | None" = None) -> None:
        """Per-agent queue depth and last-poll-age gauges + health."""
        if not self._once("agent", agent):
            return
        self._agents.append((agent, broker))
        name = agent.spec.name

        def collect() -> None:
            if broker is not None:
                try:
                    self.registry.gauge(
                        "agent_queue_depth",
                        help="Messages waiting per agent queue",
                        agent=name,
                    ).set(broker.queue_depth(agent.spec.queue))
                except Exception:  # noqa: BLE001 - queue may not exist yet
                    pass
            last_poll = getattr(agent, "last_poll", None)
            if last_poll is not None:
                self.registry.gauge(
                    "agent_last_poll_age_seconds",
                    help="Seconds since the agent last polled its queue",
                    agent=name,
                ).set(self.clock.now() - last_poll)
            self.registry.counter(
                "agent_errors_total",
                help="Errors recorded by the agent",
                agent=name,
            ).set(len(agent.errors))

        self.registry.add_collector(collect)
        self.register_health("agents", self._agents_health)

    def watch_email(self, email) -> None:
        """Mailbox-depth gauges for the simulated email transport."""
        if not self._once("email", email):
            return

        def collect() -> None:
            self.registry.counter(
                "email_sent_total", help="Emails delivered"
            ).set(email.sent_count)
            for address, depth in email.depths().items():
                self.registry.gauge(
                    "agent_mailbox_depth",
                    help="Unread emails per recipient address",
                    address=address,
                ).set(depth)

        self.registry.add_collector(collect)

        def health() -> dict[str, Any]:
            return {
                "status": "ok",
                "sent": email.sent_count,
                "unread_total": email.unread_count(),
            }

        self.register_health("email", health)


#: Components whose health gates the WorkflowFilter's readiness.
READINESS_COMPONENTS = ("database", "engine", "broker", "manager")


def hub_readiness(
    hub: ObservabilityHub,
    components: tuple[str, ...] = READINESS_COMPONENTS,
) -> tuple[bool, str]:
    """Readiness verdict for the filter's graceful-degradation probe.

    Ready iff every *present* core component reports ``ok`` — a tier
    that was never watched does not count against readiness (a
    filter-only deployment has no broker to be unhealthy).  A component
    may degrade without losing readiness by reporting an explicit
    ``ready: True`` alongside its non-ok status (the broker does this
    for a populated DLQ): ``/workflow/health`` still answers 503, but
    the filter keeps serving.
    """
    report = hub.health_report()
    bad = []
    for name in components:
        info = report["components"].get(name)
        if info is None:
            continue
        ready = info.get("ready", info.get("status", "ok") == "ok")
        if not ready:
            bad.append(f"{name}={info.get('status')}")
    if bad:
        return False, f"unhealthy components: {', '.join(bad)}"
    return True, ""


def install_observability(
    expdb: "ExpDB | None" = None,
    engine: "WorkflowBean | None" = None,
    broker: "MessageBroker | None" = None,
    manager=None,
    agents: Iterable[Any] = (),
    email=None,
    hub: ObservabilityHub | None = None,
    audit: bool = True,
) -> ObservabilityHub:
    """Attach observability to a running system (any subset of tiers).

    * ``expdb`` — the web container gets per-request root spans and the
      latency histogram, plus the ``/workflow/metrics``,
      ``/workflow/audit`` and ``/workflow/health`` servlets;
    * ``engine`` — event-stream subscription, check-count mirror and
      (unless ``audit=False``) the durable ``WFAudit`` provenance store
      on the engine's database; discovered from the container context
      when omitted;
    * ``broker`` — delivery timing, trace stitching, queue-depth and
      journal-backlog gauges;
    * ``manager`` / ``agents`` — trace propagation through dispatches,
      pump application spans, agent turnaround histograms, queue-depth
      and last-poll-age gauges;
    * ``email`` — mailbox-depth gauges for the human-in-the-loop path.

    Idempotent per system: a second installation on the same ``expdb``
    reuses the hub already in its container context (unless an explicit
    ``hub`` overrides it), and every ``watch_*`` no-ops for an object
    this hub already wired.

    Returns the hub (created fresh unless one was passed or found).
    """
    if hub is None and expdb is not None:
        existing = expdb.container.context.get("obs")
        if isinstance(existing, ObservabilityHub):
            hub = existing
    hub = hub or ObservabilityHub()
    if engine is None and expdb is not None:
        engine = expdb.container.context.get("workflow_bean")
    if broker is None and manager is not None:
        broker = manager.broker
    if engine is not None and audit:
        hub.install_audit(engine)
    if expdb is not None:
        from repro.weblims.auditservlet import AuditServlet
        from repro.weblims.checkpointservlet import CheckpointServlet
        from repro.weblims.dlqservlet import DeadLetterServlet
        from repro.weblims.healthservlet import HealthServlet
        from repro.weblims.lintservlet import LintServlet
        from repro.weblims.metricsservlet import MetricsServlet
        from repro.weblims.profservlet import ProfileServlet

        expdb.container.context["obs"] = hub
        hub.watch_container(expdb.container)
        hub.watch_database(expdb.db)
        workflow_filter = expdb.container.context.get("workflow_filter")
        if workflow_filter is not None:
            hub.watch_filter(workflow_filter)
            if workflow_filter.readiness is None:
                workflow_filter.readiness = lambda: hub_readiness(hub)
        descriptor = expdb.container.descriptor
        names = descriptor.servlet_names()
        if "MetricsServlet" not in names:
            descriptor.add_servlet(MetricsServlet(hub), "/workflow/metrics")
        if "AuditServlet" not in names:
            descriptor.add_servlet(AuditServlet(hub), "/workflow/audit")
        if "HealthServlet" not in names:
            descriptor.add_servlet(HealthServlet(hub), "/workflow/health")
        if "LintServlet" not in names:
            descriptor.add_servlet(LintServlet(expdb.db), "/workflow/lint")
        if "ProfileServlet" not in names:
            descriptor.add_servlet(ProfileServlet(hub), "/workflow/profile")
        if "CheckpointServlet" not in names:
            descriptor.add_servlet(
                CheckpointServlet(expdb.db, hub), "/workflow/checkpoint"
            )
        if broker is not None and "DeadLetterServlet" not in names:
            descriptor.add_servlet(
                DeadLetterServlet(broker, hub), "/workflow/dlq"
            )
    if engine is not None:
        hub.watch_engine(engine)
    if broker is not None:
        hub.watch_broker(broker)
    if manager is not None:
        manager.obs = hub
        hub.watch_manager(manager)
    for agent in agents:
        agent.obs = hub
        hub.watch_agent(agent, broker)
    if email is not None:
        hub.watch_email(email)
    return hub
