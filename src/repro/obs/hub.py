"""The ObservabilityHub: one object that sees every tier.

The hub owns a :class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` and knows how to feed them
from the instrumentation the system already has:

* the engine's :class:`~repro.core.events.EventLog` — subscribed, every
  event becomes an ``engine_events_total{kind=...}`` increment *and* a
  zero-duration span under the active request span, so state
  transitions show up inside the trace tree;
* ``DatabaseStats`` / ``BrokerStats`` / ``ContainerStats`` /
  ``FilterStats`` — mirrored into the registry by pull-time collectors;
* the broker — an observer hook times every send→delivery interval and
  records it both as a ``broker_delivery_wait_ms`` histogram and as a
  ``broker.deliver`` span stitched into the originating trace via the
  message's propagated headers.

``install_observability`` attaches a hub to a running system (any
subset of tiers) and registers the ``/workflow/metrics`` exposition
servlet.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceExporter, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import WorkflowBean
    from repro.messaging.broker import MessageBroker
    from repro.weblims.app import ExpDB


class _BrokerObserver:
    """Times send→delivery and stitches deliveries into traces.

    Installed as ``MessageBroker.observer``; called under the broker
    lock, so it must never call back into the broker.
    """

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub
        self._send_times: dict[int, float] = {}

    def on_send(self, message, persistent: bool) -> None:
        self._send_times[message.message_id] = time.perf_counter()
        # Cap the pending map: a queue nobody drains must not leak.
        if len(self._send_times) > 10_000:
            oldest = min(self._send_times)
            del self._send_times[oldest]

    def on_deliver(self, message) -> None:
        sent_at = self._send_times.pop(message.message_id, None)
        if sent_at is None:  # journal-recovered or redelivered message
            return
        wait_ms = (time.perf_counter() - sent_at) * 1000.0
        registry = self.hub.registry
        registry.histogram(
            "broker_delivery_wait_ms",
            help="Time between send and delivery per queue",
            queue=message.queue,
        ).observe(wait_ms)
        trace_id, parent_id = self.hub.tracer.extract(message.headers)
        if trace_id is not None:
            self.hub.tracer.record(
                "broker.deliver",
                trace_id=trace_id,
                parent_id=parent_id,
                duration_ms=wait_ms,
                queue=message.queue,
                message_id=message.message_id,
                kind=message.headers.get("kind"),
            )


class ObservabilityHub:
    """Tracer + registry + exporter, with wiring helpers."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer or Tracer()
        self.registry = registry or MetricsRegistry()
        self.exporter = TraceExporter(self.tracer)
        self.broker_observer = _BrokerObserver(self)

    def span(self, name: str, **attributes: Any):
        """Shorthand for ``hub.tracer.span``."""
        return self.tracer.span(name, **attributes)

    # ------------------------------------------------------------------
    # Event stream bridge
    # ------------------------------------------------------------------

    def on_event(self, event) -> None:
        """EventLog subscriber: count the event and pin it to the trace.

        Never raises — a metrics problem must not take the engine down.
        """
        try:
            self.registry.counter(
                "engine_events_total",
                help="Engine events by kind",
                kind=event.kind,
            ).inc()
            scalars = {
                key: value
                for key, value in event.payload.items()
                if isinstance(value, (str, int, float, bool, type(None)))
            }
            self.tracer.annotate(
                f"event.{event.kind}", sequence=event.sequence, **scalars
            )
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    # ------------------------------------------------------------------
    # Collector wiring (pull-time mirrors of external counters)
    # ------------------------------------------------------------------

    def watch_database(self, db) -> None:
        """Mirror ``DatabaseStats`` (global and per-table) at scrape time."""

        def collect() -> None:
            stats = db.stats
            self.registry.counter(
                "db_reads_total", help="Logical read statements"
            ).set(stats.reads)
            self.registry.counter(
                "db_writes_total", help="Logical write statements"
            ).set(stats.writes)
            self.registry.counter(
                "db_rows_scanned_total", help="Rows scanned"
            ).set(stats.rows_scanned)
            self.registry.counter(
                "db_index_lookups_total", help="Index lookups"
            ).set(stats.index_lookups)
            for table, count in stats.per_table_reads.items():
                self.registry.counter(
                    "db_table_reads_total",
                    help="Read statements per table",
                    table=table,
                ).set(count)
            for table, count in stats.per_table_writes.items():
                self.registry.counter(
                    "db_table_writes_total",
                    help="Write statements per table",
                    table=table,
                ).set(count)

        self.registry.add_collector(collect)

    def watch_container(self, container) -> None:
        """Mirror ``ContainerStats`` at scrape time."""

        def collect() -> None:
            stats = container.stats
            self.registry.counter(
                "http_requests_handled_total", help="Requests handled"
            ).set(stats.requests)
            self.registry.counter(
                "http_filter_invocations_total", help="Filter invocations"
            ).set(stats.filter_invocations)
            self.registry.counter(
                "http_servlet_invocations_total", help="Servlet invocations"
            ).set(stats.servlet_invocations)
            self.registry.counter(
                "http_internal_forwards_total", help="Internal forwards"
            ).set(stats.internal_forwards)
            self.registry.counter(
                "http_errors_total", help="Requests answered with an error"
            ).set(stats.errors)

        self.registry.add_collector(collect)

    def watch_filter(self, workflow_filter) -> None:
        """Mirror ``FilterStats`` (the Fig. 7 mode counters)."""

        def collect() -> None:
            stats = workflow_filter.stats
            for mode, count in (
                ("passed_through", stats.passed_through),
                ("preprocessed", stats.preprocessed),
                ("denied", stats.denied),
                ("processed", stats.processed),
                ("postprocessed", stats.postprocessed),
            ):
                self.registry.counter(
                    "workflow_filter_requests_total",
                    help="WorkflowFilter requests per handling mode",
                    mode=mode,
                ).set(count)

        self.registry.add_collector(collect)

    def watch_engine(self, engine: "WorkflowBean") -> None:
        """Subscribe to the event stream and mirror the check counter."""
        engine.events.subscribe(self.on_event)

        def collect() -> None:
            self.registry.counter(
                "engine_checks_total", help="check_workflow evaluations"
            ).set(engine.check_count)

        self.registry.add_collector(collect)

    def watch_broker(self, broker: "MessageBroker") -> None:
        """Install the delivery observer and mirror ``BrokerStats``."""
        broker.observer = self.broker_observer

        def collect() -> None:
            stats = broker.stats
            self.registry.counter(
                "broker_sends_total", help="Messages sent"
            ).set(stats.sends)
            self.registry.counter(
                "broker_persistent_sends_total", help="Journalled sends"
            ).set(stats.persistent_sends)
            self.registry.counter(
                "broker_deliveries_total", help="Messages delivered"
            ).set(stats.deliveries)
            self.registry.counter(
                "broker_redeliveries_total", help="Redeliveries"
            ).set(stats.redeliveries)
            self.registry.counter(
                "broker_acks_total", help="Acknowledgements"
            ).set(stats.acks)
            for queue, count in stats.per_queue_sends.items():
                self.registry.counter(
                    "broker_queue_sends_total",
                    help="Sends per queue",
                    queue=queue,
                ).set(count)
            for queue in broker.queue_names():
                self.registry.gauge(
                    "broker_queue_depth",
                    help="Messages waiting per queue",
                    queue=queue,
                ).set(broker.queue_depth(queue))
            self.registry.gauge(
                "broker_in_flight", help="Delivered but unacked messages"
            ).set(broker.in_flight_count())

        self.registry.add_collector(collect)


def install_observability(
    expdb: "ExpDB | None" = None,
    engine: "WorkflowBean | None" = None,
    broker: "MessageBroker | None" = None,
    manager=None,
    agents: Iterable[Any] = (),
    hub: ObservabilityHub | None = None,
) -> ObservabilityHub:
    """Attach observability to a running system (any subset of tiers).

    * ``expdb`` — the web container gets per-request root spans and the
      latency histogram, plus the ``/workflow/metrics`` servlet;
    * ``engine`` — event-stream subscription and check-count mirror;
    * ``broker`` — delivery timing and trace stitching;
    * ``manager`` / ``agents`` — trace propagation through dispatches,
      pump application spans and agent turnaround histograms.

    Returns the hub (created fresh unless one is passed in).
    """
    hub = hub or ObservabilityHub()
    if expdb is not None:
        from repro.weblims.metricsservlet import MetricsServlet

        expdb.container.context["obs"] = hub
        hub.watch_container(expdb.container)
        hub.watch_database(expdb.db)
        workflow_filter = expdb.container.context.get("workflow_filter")
        if workflow_filter is not None:
            hub.watch_filter(workflow_filter)
        descriptor = expdb.container.descriptor
        if "MetricsServlet" not in descriptor.servlet_names():
            descriptor.add_servlet(MetricsServlet(hub), "/workflow/metrics")
    if engine is not None:
        hub.watch_engine(engine)
    if broker is not None:
        hub.watch_broker(broker)
    if manager is not None:
        manager.obs = hub
    for agent in agents:
        agent.obs = hub
    return hub
