"""Declarative alert rules with hysteresis over live system signals.

An :class:`AlertRule` names a *source* (a registered callable, or
``metric:<family>`` to read the metrics registry directly), a threshold
and a comparison, plus ``for_s`` — how long the condition must hold
before the alert *fires*.  The :class:`AlertEngine` evaluates every
rule on demand and walks each through the state machine::

    inactive --breach--> pending --held for_s--> firing
       ^                   |                        |
       |                   v (condition clears)     v (condition clears)
       +---------------- cancel                  resolved

``pending`` is the hysteresis stage: a condition that clears before
``for_s`` elapses cancels silently back to ``inactive`` instead of
flapping.  ``resolved`` is sticky for display (operators see that an
alert fired and recovered) but behaves like ``inactive`` for re-entry.

Every transition is audited (``alert.transition`` rows in ``WFAudit``),
exported through the :class:`~repro.obs.watch.export.TelemetryExporter`
and counted (``watch_alert_transitions_total{rule,to}``), so the alert
history survives the process and a notification relay can tail the
export stream.  Evaluation is pull-based and Clock-injected — the chaos
suite drives the full lifecycle under a ``ManualClock``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.resilience.clock import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.obs.watch.export import TelemetryExporter

#: Supported rule comparisons, by operator spelling.
COMPARISONS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    "==": lambda value, threshold: value == threshold,
}

#: Prefix selecting a metrics-registry family as a rule source.
METRIC_SOURCE_PREFIX = "metric:"

#: Transitions kept in the in-memory history ring.
HISTORY_LIMIT = 256


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting condition."""

    name: str
    #: Registered source name, or ``metric:<family>`` for the registry.
    source: str
    threshold: float
    comparison: str = ">"
    #: Seconds the condition must hold before ``pending`` becomes
    #: ``firing`` (0 = fire on first breach).
    for_s: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in COMPARISONS:
            raise ValueError(
                f"unknown comparison {self.comparison!r}; "
                f"expected one of {sorted(COMPARISONS)}"
            )
        if self.for_s < 0:
            raise ValueError("for_s must be >= 0")

    def breached(self, value: float) -> bool:
        return COMPARISONS[self.comparison](value, self.threshold)


@dataclass
class _RuleRuntime:
    """Mutable evaluation state of one rule."""

    status: str = "inactive"
    #: When the current breach streak began (``pending`` entry time).
    pending_since: float | None = None
    #: When the alert last entered ``firing``.
    firing_since: float | None = None
    last_value: float | None = None
    last_evaluated: float | None = None
    transitions: int = 0
    error: str | None = None


class AlertEngine:
    """Evaluates :class:`AlertRule` sets and drives their lifecycle."""

    def __init__(
        self,
        hub: "ObservabilityHub",
        exporter: "TelemetryExporter | None" = None,
        clock: Clock | None = None,
    ) -> None:
        self.hub = hub
        self.exporter = exporter
        self.clock: Clock = clock or hub.clock
        self._lock = threading.Lock()
        self._rules: dict[str, AlertRule] = {}
        self._runtime: dict[str, _RuleRuntime] = {}
        self._sources: dict[str, Callable[[], float]] = {}
        self._history: deque[dict[str, Any]] = deque(maxlen=HISTORY_LIMIT)
        #: Evaluation passes run (for the benchmark's latency account).
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def add_source(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) a named signal source."""
        if name.startswith(METRIC_SOURCE_PREFIX):
            raise ValueError(
                f"source name {name!r} collides with the metric: namespace"
            )
        with self._lock:
            self._sources[name] = fn

    def add_rule(self, rule: AlertRule) -> None:
        """Register (or replace) a rule; replacement resets its state."""
        with self._lock:
            self._rules[rule.name] = rule
            self._runtime[rule.name] = _RuleRuntime()

    def rules(self) -> list[AlertRule]:
        with self._lock:
            return list(self._rules.values())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _resolve(self, source: str) -> float:
        if source.startswith(METRIC_SOURCE_PREFIX):
            family = source[len(METRIC_SOURCE_PREFIX):]
            return self.hub.registry.family_value(family)
        with self._lock:
            fn = self._sources.get(source)
        if fn is None:
            raise LookupError(f"unknown alert source {source!r}")
        return float(fn())

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """One evaluation pass; returns the transitions it caused.

        Runs every registered source at most once per pass, walks every
        rule's state machine, and audits/exports each transition.  A
        source that raises marks its rules' runtime ``error`` without
        aborting the pass.
        """
        now = self.clock.now() if now is None else now
        # One registry collection serves every metric:-sourced rule.
        self.hub.registry.collect()
        with self._lock:
            rules = list(self._rules.values())
            self.evaluations += 1
        values: dict[str, float | None] = {}
        errors: dict[str, str] = {}
        for rule in rules:
            if rule.source in values:
                continue
            try:
                values[rule.source] = self._resolve(rule.source)
            except Exception as error:  # noqa: BLE001 - a broken source
                values[rule.source] = None  # must not kill the pass
                errors[rule.source] = str(error)
        transitions: list[dict[str, Any]] = []
        for rule in rules:
            value = values[rule.source]
            with self._lock:
                runtime = self._runtime[rule.name]
                runtime.last_evaluated = now
                if value is None:
                    runtime.error = errors.get(rule.source, "source failed")
                    continue
                runtime.error = None
                runtime.last_value = value
                transitions.extend(self._step(rule, runtime, value, now))
        return transitions

    def _step(
        self, rule: AlertRule, runtime: _RuleRuntime, value: float, now: float
    ) -> list[dict[str, Any]]:
        """Advance one rule's state machine; returns its transitions."""
        breached = rule.breached(value)
        made: list[dict[str, Any]] = []
        if runtime.status in ("inactive", "resolved") and breached:
            runtime.pending_since = now
            made.append(
                self._transition(rule, runtime, "pending", "breach", value, now)
            )
        if runtime.status == "pending":
            if not breached:
                runtime.pending_since = None
                made.append(
                    self._transition(
                        rule, runtime, "inactive", "cancel", value, now
                    )
                )
            elif (
                runtime.pending_since is not None
                and now - runtime.pending_since >= rule.for_s
            ):
                runtime.firing_since = now
                made.append(
                    self._transition(rule, runtime, "firing", "fire", value, now)
                )
        elif runtime.status == "firing" and not breached:
            runtime.pending_since = None
            made.append(
                self._transition(rule, runtime, "resolved", "resolve", value, now)
            )
        return made

    def _transition(
        self,
        rule: AlertRule,
        runtime: _RuleRuntime,
        to_status: str,
        event: str,
        value: float,
        now: float,
    ) -> dict[str, Any]:
        """Apply and fan out one transition (audit, export, metrics)."""
        record = {
            "rule": rule.name,
            "from": runtime.status,
            "to": to_status,
            "event": event,
            "at": now,
            "value": value,
            "threshold": rule.threshold,
            "severity": rule.severity,
        }
        runtime.status = to_status
        runtime.transitions += 1
        self._history.append(record)
        try:
            self.hub.registry.counter(
                "watch_alert_transitions_total",
                help="Alert state-machine transitions by rule and target",
                rule=rule.name,
                to=to_status,
            ).inc()
        except Exception:  # noqa: BLE001 - metrics are best-effort
            pass
        self.hub.audit_record(
            "alert.transition",
            actor="watch",
            event=event,
            state=to_status,
            rule=rule.name,
            value=value,
            threshold=rule.threshold,
            severity=rule.severity,
        )
        if self.exporter is not None:
            self.exporter.offer("alert.transition", **record)
        return dict(record)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Current rule statuses + recent transition history."""
        with self._lock:
            rules = []
            for name in sorted(self._rules):
                rule = self._rules[name]
                runtime = self._runtime[name]
                rules.append(
                    {
                        "name": name,
                        "source": rule.source,
                        "comparison": rule.comparison,
                        "threshold": rule.threshold,
                        "for_s": rule.for_s,
                        "severity": rule.severity,
                        "description": rule.description,
                        "status": runtime.status,
                        "value": runtime.last_value,
                        "pending_since": runtime.pending_since,
                        "firing_since": runtime.firing_since,
                        "last_evaluated": runtime.last_evaluated,
                        "transitions": runtime.transitions,
                        "error": runtime.error,
                    }
                )
            history = list(self._history)
        firing = [r["name"] for r in rules if r["status"] == "firing"]
        pending = [r["name"] for r in rules if r["status"] == "pending"]
        return {
            "rules": rules,
            "firing": firing,
            "pending": pending,
            "history": history,
        }

    def counts(self) -> dict[str, int]:
        """Rule count per status (cheap — no source evaluation)."""
        with self._lock:
            counts: dict[str, int] = {}
            for runtime in self._runtime.values():
                counts[runtime.status] = counts.get(runtime.status, 0) + 1
        return counts

    def health(self) -> dict[str, Any]:
        """Health-provider view: degraded while any alert is firing.

        Registered as the ``alerts`` component — deliberately *not* in
        ``READINESS_COMPONENTS``: a firing alert is for operators, not
        a reason for the filter to refuse traffic.
        """
        with self._lock:
            firing = sorted(
                name
                for name, runtime in self._runtime.items()
                if runtime.status == "firing"
            )
            pending = sorted(
                name
                for name, runtime in self._runtime.items()
                if runtime.status == "pending"
            )
            rules = len(self._rules)
        return {
            "status": "degraded" if firing else "ok",
            "rules": rules,
            "firing": firing,
            "pending": pending,
        }
