"""The flight recorder: one causally-ordered timeline per workflow.

A lab workflow's history is scattered across four stores with four
clocks of record: the durable ``WFAudit`` trail (state transitions,
authorizations, dispatch/ack, lease expiries, alert transitions), the
tracer's span archive (request/broker/agent timing), the broker's
dead-letter quarantine and the live lease table.  Debugging "what
happened to workflow 17" means joining all four by hand.

:meth:`FlightRecorder.timeline` does the join: every audit row of the
workflow, every archived span of every trace those rows reference, and
every DLQ entry whose headers name the workflow, merged into one list
ordered by timestamp (ties broken audit-first, then by commit order,
so an audit row and the span that caused it stay adjacent and replays
are deterministic).  The current lease rows and any stuck-entity flags
ride along as context sections.  An unknown workflow id yields
``{"found": False, ...}`` — the structured not-found contract the
instances servlet turns into a 404.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.messaging.broker import MessageBroker
    from repro.minidb.engine import Database
    from repro.obs.hub import ObservabilityHub
    from repro.obs.watch.residency import StateResidencyTracker
    from repro.resilience.leases import LeaseTable

#: Merge order for identical timestamps: provenance first, then the
#: spans that carried it, then quarantine bookkeeping.
_SOURCE_RANK = {"audit": 0, "span": 1, "dlq": 2}


class FlightRecorder:
    """Joins audit, span, lease and DLQ views of one workflow."""

    def __init__(
        self,
        hub: "ObservabilityHub",
        db: "Database",
        leases: "LeaseTable | None" = None,
        residency: "StateResidencyTracker | None" = None,
        broker: "MessageBroker | None" = None,
    ) -> None:
        self.hub = hub
        self.db = db
        self.leases = leases
        self.residency = residency
        self.broker = broker

    # ------------------------------------------------------------------
    # Timeline assembly
    # ------------------------------------------------------------------

    def timeline(self, workflow_id: int) -> dict[str, Any]:
        """The merged timeline of one workflow instance.

        ``{"found": False, "workflow_id": id}`` when no such workflow
        exists — never an empty-but-200-shaped payload.
        """
        workflow = self.db.get("Workflow", workflow_id)
        if workflow is None:
            return {"found": False, "workflow_id": workflow_id}
        pattern = self.db.get("WorkflowPattern", workflow["pattern_id"])
        events: list[dict[str, Any]] = []
        audit_rows: list[dict[str, Any]] = []
        if self.hub.audit is not None:
            audit_rows = self.hub.audit.timeline(workflow_id)
        for row in audit_rows:
            events.append(
                {
                    "ts": row.get("created"),
                    "source": "audit",
                    "kind": row.get("kind"),
                    "actor": row.get("actor"),
                    "task": row.get("task"),
                    "event": row.get("event"),
                    "state": row.get("state"),
                    "wftask_id": row.get("wftask_id"),
                    "experiment_id": row.get("experiment_id"),
                    "trace_id": row.get("trace_id"),
                    "audit_id": row.get("audit_id"),
                    "detail": row.get("detail") or {},
                }
            )
        trace_ids = sorted(
            {
                row["trace_id"]
                for row in audit_rows
                if isinstance(row.get("trace_id"), str)
            }
        )
        for trace_id in trace_ids:
            for span in self.hub.tracer.spans_for(trace_id):
                events.append(
                    {
                        "ts": span.start_time,
                        "source": "span",
                        "kind": f"span.{span.name}",
                        "name": span.name,
                        "duration_ms": span.duration_ms,
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "error": span.error,
                        "attributes": dict(span.attributes),
                    }
                )
        if self.broker is not None:
            for entry in self.broker.dead_letters():
                if entry.get("headers", {}).get("workflow_id") != workflow_id:
                    continue
                events.append(
                    {
                        "ts": None,
                        "source": "dlq",
                        "kind": "message.quarantined",
                        "queue": entry.get("queue"),
                        "reason": entry.get("reason"),
                        "message_id": entry.get("message_id"),
                        "delivery_count": entry.get("delivery_count"),
                    }
                )
        events.sort(key=_merge_key)
        result: dict[str, Any] = {
            "found": True,
            "workflow_id": workflow_id,
            "pattern": pattern["name"] if pattern is not None else None,
            "status": workflow.get("status"),
            "created": workflow.get("created"),
            "events": events,
            "trace_ids": trace_ids,
        }
        if self.leases is not None:
            result["leases"] = [
                row
                for row in self.leases.snapshot()
                if row.get("workflow_id") == workflow_id
            ]
        if self.residency is not None:
            result["stuck"] = [
                entry
                for entry in self.residency.scan()
                if entry.get("workflow_id") == workflow_id
            ]
        return result

    def summary(self, workflow_id: int) -> dict[str, Any]:
        """A cheap header view (no span join) for instance listings."""
        workflow = self.db.get("Workflow", workflow_id)
        if workflow is None:
            return {"found": False, "workflow_id": workflow_id}
        pattern = self.db.get("WorkflowPattern", workflow["pattern_id"])
        audit_records = 0
        if self.hub.audit is not None:
            audit_records, __ = self.hub.audit.query(
                workflow_id=workflow_id, limit=1
            )
        return {
            "found": True,
            "workflow_id": workflow_id,
            "pattern": pattern["name"] if pattern is not None else None,
            "status": workflow.get("status"),
            "created": workflow.get("created"),
            "audit_records": audit_records,
        }

    # ------------------------------------------------------------------
    # Text rendering (CLI / ?format=text)
    # ------------------------------------------------------------------

    def render_text(self, workflow_id: int) -> str:
        """Human-readable flight-recorder printout of one workflow."""
        data = self.timeline(workflow_id)
        if not data["found"]:
            return f"workflow {workflow_id} not found"
        lines = [
            f"== flight recorder: workflow {workflow_id} "
            f"({data['pattern']}, {data['status']}) =="
        ]
        base = None
        for event in data["events"]:
            ts = event.get("ts")
            if base is None and isinstance(ts, (int, float)):
                base = ts
            offset = (
                f"+{ts - base:9.3f}s"
                if base is not None and isinstance(ts, (int, float))
                else " " * 11
            )
            if event["source"] == "audit":
                what = event.get("kind") or ""
                task = event.get("task")
                state = event.get("state")
                extra = " ".join(
                    part
                    for part in (
                        f"task={task}" if task else "",
                        f"state={state}" if state else "",
                        f"actor={event.get('actor')}" if event.get("actor") else "",
                    )
                    if part
                )
                lines.append(f"  {offset} audit {what:<24} {extra}".rstrip())
            elif event["source"] == "span":
                duration = event.get("duration_ms")
                shown = f"{duration:.2f}ms" if duration is not None else "open"
                lines.append(
                    f"  {offset} span  {event['name']:<24} {shown}"
                )
            else:
                lines.append(
                    f"  {offset} dlq   {event.get('queue', '?'):<24} "
                    f"reason={event.get('reason')}"
                )
        for lease in data.get("leases", []):
            lines.append(
                f"  lease: task={lease['task']} agent={lease['agent']} "
                f"remaining={lease['remaining_s']:.1f}s "
                f"expired={lease['expired']}"
            )
        for entry in data.get("stuck", []):
            lines.append(
                f"  STUCK: {entry['kind']} {entry['entity_id']} "
                f"task={entry['task']} state={entry['state']} "
                f"residency={entry['residency_s']:.1f}s ({entry['reason']})"
            )
        return "\n".join(lines)


def _merge_key(event: dict[str, Any]) -> tuple[float, int, int]:
    ts = event.get("ts")
    rank = _SOURCE_RANK.get(event["source"], 3)
    if not isinstance(ts, (int, float)):
        # Timestamp-less entries (DLQ snapshots) sort to the end.
        return (float("inf"), rank, 0)
    return (float(ts), rank, int(event.get("audit_id") or 0))
