"""Durable telemetry export: bounded queue, pluggable sinks, no stalls.

The watch layer produces two record streams an operator wants *outside*
the process — metrics snapshots and alert transitions — and both are
produced on hot paths (alert evaluation runs inside request-serving
processes; a metrics snapshot can be taken from a scrape).  The
exporter therefore decouples production from delivery:

* :meth:`TelemetryExporter.offer` appends to a bounded in-memory queue
  and returns immediately.  When the queue is full the *oldest* record
  is dropped and counted — backpressure never propagates to the caller,
  a slow or dead sink can only cost completeness, never latency;
* :meth:`TelemetryExporter.flush` drains the queue to every registered
  sink.  A sink that raises is counted (``sink_errors``) and skipped
  for the rest of the flush; the records still reach the other sinks.

Sinks are anything with ``emit(record)``.  :class:`JsonLinesSink`
appends one JSON object per line to a file (the durable half of the
tentpole); :class:`MemorySink` keeps records in a list (tests, CLI).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Protocol

from repro.resilience.clock import Clock, SystemClock


class TelemetrySink(Protocol):
    """Destination for exported telemetry records."""

    def emit(self, record: dict[str, Any]) -> None:  # pragma: no cover
        ...


class MemorySink:
    """Keeps every emitted record in memory — tests and the CLI."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == kind]


class JsonLinesSink:
    """Appends one JSON object per line to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0

    def emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self.written += 1


class BrokenSink:
    """A sink that always raises — exercising the error accounting."""

    def __init__(self, message: str = "sink is down") -> None:
        self.message = message

    def emit(self, record: dict[str, Any]) -> None:
        raise RuntimeError(self.message)


class TelemetryExporter:
    """Bounded-queue fan-out of telemetry records to sinks."""

    def __init__(
        self, clock: Clock | None = None, capacity: int = 1024
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.clock: Clock = clock or SystemClock()
        self.capacity = capacity
        self._lock = threading.Lock()
        self._queue: deque[dict[str, Any]] = deque()
        self._sinks: list[TelemetrySink] = []
        #: Records evicted because the queue was full.
        self.dropped = 0
        #: Records handed to at least one sink.
        self.exported = 0
        #: ``emit`` calls that raised (per sink, per record).
        self.sink_errors = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def add_sink(self, sink: TelemetrySink) -> None:
        with self._lock:
            self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Producing (hot path: must never block or raise)
    # ------------------------------------------------------------------

    def offer(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Enqueue one record; drops the oldest when the queue is full.

        Returns the enqueued record (stamped with ``ts`` and ``kind``)
        so callers can reuse it — e.g. the alert engine mirrors it into
        its transition history.
        """
        record = {"ts": self.clock.now(), "kind": kind, **fields}
        with self._lock:
            if len(self._queue) >= self.capacity:
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(record)
        return record

    # ------------------------------------------------------------------
    # Draining (the slow side; errors are counted, never raised)
    # ------------------------------------------------------------------

    def flush(self, limit: int | None = None) -> int:
        """Drain up to ``limit`` records (all, when ``None``) to sinks.

        Returns how many records were drained.  A sink that raises is
        skipped for the remainder of this flush; its failures land in
        ``sink_errors`` and the records are *not* requeued — the queue
        bounds memory, not delivery guarantees.
        """
        with self._lock:
            count = len(self._queue) if limit is None else min(limit, len(self._queue))
            batch = [self._queue.popleft() for __ in range(count)]
            sinks = list(self._sinks)
            self.exported += len(batch) if sinks else 0
        if not batch or not sinks:
            return len(batch)
        broken: set[int] = set()
        for record in batch:
            for index, sink in enumerate(sinks):
                if index in broken:
                    continue
                try:
                    sink.emit(record)
                except Exception:  # noqa: BLE001 - a dead sink must not
                    broken.add(index)  # stall or crash the exporter
                    with self._lock:
                        self.sink_errors += 1
        return len(batch)

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def info(self) -> dict[str, Any]:
        """Counters for the health component and the CLI."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "pending": len(self._queue),
                "sinks": len(self._sinks),
                "exported": self.exported,
                "dropped": self.dropped,
                "sink_errors": self.sink_errors,
            }
