"""Workflow watch layer: flight recorder, stuck detection, alerting.

PR 6's profiling answers "why was this *request* slow"; this package
answers the operational questions a lab running thousand-instance,
multi-day workflows actually asks:

* *what happened to instance N?* — the
  :class:`~repro.obs.watch.recorder.FlightRecorder` joins the durable
  audit trail, the span archive, lease state and the DLQ into one
  causally-ordered timeline (``GET /workflow/instances/<id>/timeline``
  and the ``python -m repro.obs.watch`` CLI);
* *which instances are stuck?* — the
  :class:`~repro.obs.watch.residency.StateResidencyTracker` measures
  wall time per Fig. 4 state against per-pattern baselines;
* *who gets told?* — the :class:`~repro.obs.watch.alerts.AlertEngine`
  evaluates declarative rules (stuck instances, DLQ depth, expired
  leases, queue depths, SLO burn, any metric family) through a
  pending→firing→resolved machine with for-duration hysteresis;
* *does the record survive the process?* — the
  :class:`~repro.obs.watch.export.TelemetryExporter` streams alert
  transitions and metrics snapshots to pluggable sinks behind a
  bounded queue, so a dead sink can never stall the hot path.

``install_watch(hub, ...)`` is the single switch, mirroring
``install_profiling``: until it runs, ``hub.watcher`` stays ``None``
and nothing here costs anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.watch.alerts import AlertEngine, AlertRule
from repro.obs.watch.export import (
    JsonLinesSink,
    MemorySink,
    TelemetryExporter,
    TelemetrySink,
)
from repro.obs.watch.recorder import FlightRecorder
from repro.obs.watch.residency import StateResidencyTracker, StuckPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub

__all__ = [
    "AlertEngine",
    "AlertRule",
    "FlightRecorder",
    "JsonLinesSink",
    "MemorySink",
    "StateResidencyTracker",
    "StuckPolicy",
    "TelemetryExporter",
    "TelemetrySink",
    "Watcher",
    "install_watch",
]


class Watcher:
    """Facade over the residency tracker, alert engine, recorder and
    exporter — what ``hub.watcher`` points at once installed."""

    def __init__(
        self,
        hub: "ObservabilityHub",
        residency: StateResidencyTracker,
        alerts: AlertEngine,
        recorder: FlightRecorder,
        exporter: TelemetryExporter,
        stuck_policy: StuckPolicy,
    ) -> None:
        self.hub = hub
        self.residency = residency
        self.alerts = alerts
        self.recorder = recorder
        self.exporter = exporter
        self.stuck_policy = stuck_policy

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """One alert-evaluation pass; returns the transitions caused."""
        return self.alerts.evaluate(now=now)

    def export_metrics_snapshot(self) -> dict[str, Any]:
        """Queue the full registry snapshot as one telemetry record."""
        return self.exporter.offer(
            "metrics.snapshot", metrics=self.hub.registry.snapshot()
        )

    def stuck(self) -> list[dict[str, Any]]:
        """Currently stuck entities under the installed policy."""
        return self.residency.scan(self.stuck_policy)

    def report(self) -> dict[str, Any]:
        """Everything the watch layer knows, JSON-friendly."""
        return {
            "enabled": True,
            "alerts": self.alerts.report(),
            "stuck": self.stuck(),
            "residency": {
                "tracked": len(self.residency.current()),
                "evicted": self.residency.evicted,
                "baselines": self.residency.baselines(),
            },
            "exporter": self.exporter.info(),
        }

    def health(self) -> dict[str, Any]:
        """The ``alerts`` health component (never gates readiness)."""
        info = self.alerts.health()
        info["exporter"] = self.exporter.info()
        return info

    def close(self) -> None:
        """Drain the export queue to whatever sinks are attached."""
        self.exporter.flush()


def default_rules(
    broker=None, manager=None, stuck_for_s: float = 30.0
) -> list[AlertRule]:
    """The stock rule set ``install_watch`` registers.

    Every rule reads a source that *resolves* when the condition
    clears (currently-stuck count, current DLQ depth, currently-expired
    leases) so the pending→firing→resolved lifecycle is reachable —
    monotone counters would fire forever.
    """
    rules = [
        AlertRule(
            name="stuck-instances",
            source="stuck_instances",
            threshold=0,
            comparison=">",
            for_s=stuck_for_s,
            severity="critical",
            description="entities stuck past their pattern baseline",
        )
    ]
    if broker is not None:
        rules.append(
            AlertRule(
                name="dlq-depth",
                source="broker_dlq_depth",
                threshold=0,
                comparison=">",
                severity="warning",
                description="messages quarantined in the dead-letter queue",
            )
        )
    if manager is not None:
        rules.append(
            AlertRule(
                name="expired-leases",
                source="expired_leases",
                threshold=0,
                comparison=">",
                severity="warning",
                description="dispatched instances whose agent went silent",
            )
        )
    return rules


def install_watch(
    hub: "ObservabilityHub",
    expdb=None,
    engine=None,
    broker=None,
    manager=None,
    rules: Iterable[AlertRule] = (),
    stuck_policy: StuckPolicy | None = None,
    telemetry_path: str | None = None,
    with_default_rules: bool = True,
    exporter_capacity: int = 1024,
    clock=None,
) -> Watcher:
    """Turn the watch layer on for a wired system (idempotent per hub).

    * ``engine`` — the residency tracker subscribes to its event
      stream (discovered from the container context when omitted);
    * ``broker`` / ``manager`` — DLQ-depth, queue-depth and
      expired-lease alert sources, plus lease/DLQ sections in flight
      recordings;
    * ``rules`` — extra :class:`AlertRule`\\ s on top of the stock set
      (suppressed with ``with_default_rules=False``);
    * ``telemetry_path`` — attach a :class:`JsonLinesSink` so alert
      transitions and snapshots survive the process;
    * ``expdb`` — registers ``GET /workflow/instances[/<id>[/timeline]]``
      and ``GET /workflow/alerts``, and the non-readiness ``alerts``
      health component;
    * ``clock`` — time source for residency measurement, hysteresis
      and export stamping (defaults to ``hub.clock``; chaos tests and
      the CLI demo pass the lab's ``ManualClock``).

    Returns the (new or already-installed) :class:`Watcher`.
    """
    if hub.watcher is not None:
        return hub.watcher
    if engine is None and expdb is not None:
        engine = expdb.container.context.get("workflow_bean")
    if broker is None and manager is not None:
        broker = manager.broker
    db = None
    if engine is not None:
        db = engine.db
    elif expdb is not None:
        db = expdb.db
    if db is None:
        raise ValueError("install_watch needs an engine or expdb for its db")
    clock = clock or hub.clock
    exporter = TelemetryExporter(clock=clock, capacity=exporter_capacity)
    if telemetry_path is not None:
        exporter.add_sink(JsonLinesSink(telemetry_path))
    residency = StateResidencyTracker(clock=clock, registry=hub.registry)
    if engine is not None and hub._once("watch-events", engine):
        engine.events.subscribe(residency.on_event)
    alerts = AlertEngine(hub, exporter=exporter, clock=clock)
    recorder = FlightRecorder(
        hub,
        db,
        leases=manager.leases if manager is not None else None,
        residency=residency,
        broker=broker,
    )
    policy = stuck_policy or StuckPolicy()
    watcher = Watcher(hub, residency, alerts, recorder, exporter, policy)

    alerts.add_source(
        "stuck_instances", lambda: float(len(residency.scan(policy)))
    )
    if broker is not None:
        alerts.add_source(
            "broker_dlq_depth", lambda: float(broker.dlq_depth())
        )
        alerts.add_source(
            "queue_depth_max",
            lambda: float(
                max(
                    (broker.queue_depth(name) for name in broker.queue_names()),
                    default=0,
                )
            ),
        )
    if manager is not None:
        alerts.add_source(
            "expired_leases",
            lambda: float(
                sum(1 for row in manager.leases.snapshot() if row["expired"])
            ),
        )
        alerts.add_source(
            "lease_expiries_total", lambda: float(manager.leases.expiries)
        )

    def slo_burning() -> float:
        profiler = hub.profiler
        if profiler is None:
            return 0.0
        return float(
            sum(
                1
                for status in profiler.slo_tracker.report().values()
                if not status["ok"]
            )
        )

    alerts.add_source("slo_burning", slo_burning)
    if with_default_rules:
        for rule in default_rules(broker=broker, manager=manager):
            alerts.add_rule(rule)
    for rule in rules:
        alerts.add_rule(rule)

    def collect() -> None:
        counts = alerts.counts()
        for status in ("pending", "firing"):
            hub.registry.gauge(
                "watch_alerts",
                help="Alert rules per lifecycle status",
                status=status,
            ).set(counts.get(status, 0))
        info = exporter.info()
        hub.registry.gauge(
            "watch_export_pending",
            help="Telemetry records queued for export",
        ).set(info["pending"])
        hub.registry.counter(
            "watch_export_dropped_total",
            help="Telemetry records dropped by the bounded export queue",
        ).set(info["dropped"])
        hub.registry.counter(
            "watch_export_sink_errors_total",
            help="Telemetry sink emit() calls that raised",
        ).set(info["sink_errors"])

    hub.registry.add_collector(collect)
    hub.register_health("alerts", watcher.health)
    if expdb is not None:
        from repro.weblims.alertservlet import AlertServlet
        from repro.weblims.instancesservlet import InstancesServlet

        names = expdb.container.descriptor.servlet_names()
        if "InstancesServlet" not in names:
            expdb.container.descriptor.add_servlet(
                InstancesServlet(hub),
                "/workflow/instances",
                "/workflow/instances/*",
            )
        if "AlertServlet" not in names:
            expdb.container.descriptor.add_servlet(
                AlertServlet(hub), "/workflow/alerts"
            )
    hub.watcher = watcher
    return watcher
