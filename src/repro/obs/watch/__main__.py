"""Command-line front end: ``python -m repro.obs.watch``.

Subcommands::

    python -m repro.obs.watch demo               # full alert lifecycle
    python -m repro.obs.watch demo --json        # machine-readable
    python -m repro.obs.watch timeline           # flight-recorder view

``demo`` assembles the protein lab under a :class:`ManualClock`, drops
the dispatch to the digestion robot (a seeded fault plan — the chaos
suite's agent-silence scenario), and drives the stuck-instance alert
through its whole lifecycle without one wall-clock sleep: residency
builds → ``pending`` → held past ``for_s`` → ``firing`` → lease sweep
redelivers → workflow completes → ``resolved``.  It prints the alert
history, the telemetry-export accounting and the workflow's
flight-recorder timeline.  Exit code 0 when the full
pending→firing→resolved lifecycle was observed and exported, 1 when it
was not (the watch pipeline is broken), 2 on usage errors — the CI
smoke contract.

``timeline`` runs one fault-free workflow to completion and prints its
flight-recorder timeline (audit + spans merged).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path


def _build_lab(tmp: str, manual_clock, fault_plan=None):
    from repro.workloads.protein import build_protein_lab

    from repro.obs.watch import StuckPolicy

    return build_protein_lab(
        wal_path=str(Path(tmp) / "lab.wal"),
        journal_path=str(Path(tmp) / "broker.journal"),
        clock=manual_clock,
        fault_plan=fault_plan,
        lease_ttl_s=120.0,
        watch=True,
        stuck_policy=StuckPolicy(
            multiple=3.0, min_samples=3, floor_s=1.0, fallback_s=60.0
        ),
        telemetry_path=str(Path(tmp) / "telemetry.jsonl"),
    )


def run_demo(as_json: bool) -> int:
    from repro.resilience import FaultPlan, ManualClock

    from repro.obs.watch import MemorySink

    clock = ManualClock()
    plan = FaultPlan(seed=3).rule(
        "broker.publish", "drop", times=1, where={"queue": "agent.digest-bot"}
    )
    with tempfile.TemporaryDirectory() as tmp:
        lab = _build_lab(tmp, clock, fault_plan=plan)
        watcher = lab.obs.watcher
        assert watcher is not None
        sink = MemorySink()
        watcher.exporter.add_sink(sink)
        try:
            workflow = lab.engine.start_workflow("protein_creation")
            workflow_id = workflow["workflow_id"]
            lab.run_messages()

            # The digestion dispatch was dropped; let residency build.
            clock.advance(90.0)
            transitions = list(watcher.evaluate())
            clock.advance(40.0)  # past the lease TTL and the for_s hold
            transitions += watcher.evaluate()

            # Recovery: the lease sweep redelivers, the run completes.
            swept = lab.manager.sweep_leases()
            status = lab.run_to_completion(workflow_id)
            transitions += watcher.evaluate()
            watcher.export_metrics_snapshot()
            watcher.exporter.flush()

            stuck_events = [
                (t["from"], t["to"])
                for t in transitions
                if t["rule"] == "stuck-instances"
            ]
            lifecycle_ok = (
                ("inactive", "pending") in stuck_events
                and ("pending", "firing") in stuck_events
                and ("firing", "resolved") in stuck_events
                and status == "completed"
                and swept["redispatched"] == 1
            )
            exported_kinds = {record["kind"] for record in sink.records}
            exported_ok = {"alert.transition", "metrics.snapshot"} <= (
                exported_kinds
            )
            audited = lab.obs.audit.query(kind="alert.transition")[0] > 0

            if as_json:
                print(
                    json.dumps(
                        {
                            "workflow_id": workflow_id,
                            "status": status,
                            "transitions": transitions,
                            "lifecycle_ok": lifecycle_ok,
                            "exported_ok": exported_ok,
                            "audited": audited,
                            "exporter": watcher.exporter.info(),
                            "alerts": watcher.alerts.report(),
                        },
                        indent=2,
                        default=str,
                    )
                )
            else:
                print(f"workflow {workflow_id}: {status}")
                print("== alert transitions ==")
                for t in transitions:
                    print(
                        f"  t={t['at']:7.1f}  {t['rule']:<18} "
                        f"{t['from']} -> {t['to']} (value {t['value']:g})"
                    )
                info = watcher.exporter.info()
                print(
                    f"== exporter: {info['exported']} exported, "
                    f"{info['dropped']} dropped, "
                    f"{info['sink_errors']} sink errors =="
                )
                print(watcher.recorder.render_text(workflow_id))
            if not (lifecycle_ok and exported_ok and audited):
                print(
                    "alert lifecycle incomplete: "
                    f"lifecycle_ok={lifecycle_ok} exported_ok={exported_ok} "
                    f"audited={audited}",
                    file=sys.stderr,
                )
                return 1
            return 0
        finally:
            lab.app.db.close()
            lab.broker.close()


def run_timeline(as_json: bool) -> int:
    from repro.resilience import ManualClock

    clock = ManualClock()
    with tempfile.TemporaryDirectory() as tmp:
        lab = _build_lab(tmp, clock)
        watcher = lab.obs.watcher
        assert watcher is not None
        try:
            response = lab.app.post(
                "/user", workflow_action="start", pattern="protein_creation"
            )
            if not response.ok:
                print(f"request failed: {response.status}", file=sys.stderr)
                return 1
            workflow_id = response.attributes["workflow_id"]
            status = lab.run_to_completion(workflow_id)
            timeline = watcher.recorder.timeline(workflow_id)
            if as_json:
                print(json.dumps(timeline, indent=2, default=str))
            else:
                print(watcher.recorder.render_text(workflow_id))
            if status != "completed" or not timeline["events"]:
                print(
                    f"timeline incomplete: status={status} "
                    f"events={len(timeline['events'])}",
                    file=sys.stderr,
                )
                return 1
            return 0
        finally:
            lab.app.db.close()
            lab.broker.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="Flight recorder and alerting demo over a "
        "self-contained protein-lab workload.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo",
        help="drive a stuck-instance alert pending->firing->resolved "
        "under a ManualClock",
    )
    demo.add_argument("--json", action="store_true", dest="as_json")
    timeline = sub.add_parser(
        "timeline",
        help="run one workflow and print its flight-recorder timeline",
    )
    timeline.add_argument("--json", action="store_true", dest="as_json")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return run_demo(as_json=args.as_json)
    return run_timeline(as_json=args.as_json)


if __name__ == "__main__":
    sys.exit(main())
