"""State-residency tracking and stuck-instance detection.

Exp-WF workflows run for days with humans and robots in the loop, so
"how long has this instance sat in Fig. 4 state ``active``" is the
primary operational question.  The tracker subscribes to the engine's
event stream and, for every task (``task.state``) and task instance
(``instance.state``), measures wall time spent in each state:

* on every transition the elapsed residency is recorded into a
  ``state_residency_seconds{pattern,kind,state}`` histogram *and* into
  per-``(pattern, kind, state)`` baseline aggregates (count/mean/max);
* entities reaching a terminal state are forgotten; everything else is
  the *current* population :meth:`StateResidencyTracker.scan` inspects.

:meth:`scan` flags entities whose current-state residency exceeds a
configurable multiple of the pattern baseline (:class:`StuckPolicy`).
Time comes from the injected :class:`~repro.resilience.clock.Clock`, so
the chaos suite drives detection with a ``ManualClock`` and never
sleeps.  Baselines built under a ``ManualClock`` are mostly zeros —
that is what :attr:`StuckPolicy.floor_s` (never flag below this) and
:attr:`StuckPolicy.fallback_s` (absolute threshold until the baseline
is credible) are for.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.resilience.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

#: Task states out of which nothing transitions (Fig. 4 task machine).
TERMINAL_TASK_STATES = frozenset({"completed", "aborted", "unreachable"})
#: Instance states out of which nothing transitions.
TERMINAL_INSTANCE_STATES = frozenset({"completed", "aborted"})

#: Label used when an entity's workflow pattern is unknown (the
#: workflow started before the tracker attached).
UNKNOWN_PATTERN = "unknown"


@dataclass(frozen=True)
class StuckPolicy:
    """When does a current-state residency count as *stuck*?

    An entity is flagged when its residency ``r`` satisfies both
    ``r >= floor_s`` and:

    * baseline credible (``samples >= min_samples``):
      ``r > max(multiple * baseline_mean, floor_s)``;
    * otherwise: ``r > fallback_s`` (absolute threshold).
    """

    #: Flag when residency exceeds this multiple of the baseline mean.
    multiple: float = 3.0
    #: Baseline samples required before the multiple applies.
    min_samples: int = 3
    #: Never flag residencies below this (guards near-zero baselines).
    floor_s: float = 1.0
    #: Absolute threshold while the baseline is not yet credible.
    fallback_s: float = 60.0

    def __post_init__(self) -> None:
        if self.multiple <= 0:
            raise ValueError("multiple must be positive")
        if self.fallback_s <= 0:
            raise ValueError("fallback_s must be positive")
        if self.floor_s < 0:
            raise ValueError("floor_s must be >= 0")


@dataclass
class _Baseline:
    """Online count/mean/max of completed residencies for one key."""

    count: int = 0
    mean: float = 0.0
    max: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count
        if value > self.max:
            self.max = value


class StateResidencyTracker:
    """Wall time per Fig. 4 state, with a stuck-entity scanner.

    Subscribe :meth:`on_event` to ``engine.events``; the callback runs
    synchronously inside ``EventLog.emit`` and must stay cheap and
    never raise.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        registry: "MetricsRegistry | None" = None,
        max_entities: int = 50_000,
    ) -> None:
        self.clock: Clock = clock or SystemClock()
        self.registry = registry
        self.max_entities = max_entities
        self._lock = threading.Lock()
        #: workflow_id -> pattern name (from ``workflow.started``).
        self._patterns: dict[int, str] = {}
        #: wftask_id -> task name (learned from ``task.state`` rows).
        self._task_names: dict[int, str] = {}
        #: (kind, entity id) -> live entity record.
        self._current: dict[tuple[str, int], dict[str, Any]] = {}
        #: (pattern, kind, state) -> completed-residency aggregate.
        self._baselines: dict[tuple[str, str, str], _Baseline] = {}
        #: Entities evicted because ``max_entities`` was reached.
        self.evicted = 0

    # ------------------------------------------------------------------
    # Event feed
    # ------------------------------------------------------------------

    def on_event(self, event) -> None:
        """EventLog subscriber; never raises."""
        try:
            self._apply(event.kind, event.payload)
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    def _apply(self, kind: str, payload: dict[str, Any]) -> None:
        if kind == "workflow.started":
            workflow_id = payload.get("workflow_id")
            pattern = payload.get("pattern")
            if isinstance(workflow_id, int) and isinstance(pattern, str):
                with self._lock:
                    self._remember_pattern(workflow_id, pattern)
            return
        if kind == "task.state":
            entity_id = payload.get("wftask_id")
            entity_kind = "task"
            task = payload.get("task")
            if isinstance(entity_id, int) and isinstance(task, str):
                with self._lock:
                    self._task_names[entity_id] = task
                    self._cap(self._task_names)
        elif kind == "instance.state":
            entity_id = payload.get("experiment_id")
            entity_kind = "instance"
        else:
            return
        state = payload.get("state")
        workflow_id = payload.get("workflow_id")
        if not isinstance(entity_id, int) or not isinstance(state, str):
            return
        now = self.clock.now()
        with self._lock:
            self._transition(
                entity_kind, entity_id, state, workflow_id, payload, now
            )

    def _transition(
        self,
        kind: str,
        entity_id: int,
        state: str,
        workflow_id: Any,
        payload: dict[str, Any],
        now: float,
    ) -> None:
        key = (kind, entity_id)
        entry = self._current.get(key)
        pattern = UNKNOWN_PATTERN
        if isinstance(workflow_id, int):
            pattern = self._patterns.get(workflow_id, UNKNOWN_PATTERN)
        if entry is not None:
            elapsed = max(0.0, now - entry["entered_at"])
            self._record_residency(pattern, kind, entry["state"], elapsed)
        terminal = (
            TERMINAL_TASK_STATES if kind == "task" else TERMINAL_INSTANCE_STATES
        )
        if state in terminal:
            self._current.pop(key, None)
            return
        task = payload.get("task")
        if not isinstance(task, str):
            wftask_id = payload.get("wftask_id")
            task = (
                self._task_names.get(wftask_id)
                if isinstance(wftask_id, int)
                else None
            )
        if entry is None and len(self._current) >= self.max_entities:
            self._current.pop(next(iter(self._current)))
            self.evicted += 1
        self._current[key] = {
            "kind": kind,
            "entity_id": entity_id,
            "workflow_id": workflow_id if isinstance(workflow_id, int) else None,
            "pattern": pattern,
            "task": task,
            "state": state,
            "entered_at": now,
        }

    def _remember_pattern(self, workflow_id: int, pattern: str) -> None:
        self._patterns[workflow_id] = pattern
        self._cap(self._patterns)

    def _cap(self, mapping: dict[int, str]) -> None:
        while len(mapping) > self.max_entities:
            mapping.pop(next(iter(mapping)))

    def _record_residency(
        self, pattern: str, kind: str, state: str, elapsed: float
    ) -> None:
        baseline = self._baselines.get((pattern, kind, state))
        if baseline is None:
            baseline = self._baselines[(pattern, kind, state)] = _Baseline()
        baseline.add(elapsed)
        if self.registry is not None:
            self.registry.histogram(
                "state_residency_seconds",
                help="Wall time spent per Fig. 4 state before leaving it",
                pattern=pattern,
                kind=kind,
                state=state,
            ).observe(elapsed)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def current(self) -> list[dict[str, Any]]:
        """Live (non-terminal) entities with their running residency."""
        now = self.clock.now()
        with self._lock:
            return [
                {**entry, "residency_s": max(0.0, now - entry["entered_at"])}
                for entry in self._current.values()
            ]

    def baselines(self) -> dict[str, dict[str, Any]]:
        """Completed-residency aggregates, keyed ``pattern/kind/state``."""
        with self._lock:
            return {
                f"{pattern}/{kind}/{state}": {
                    "count": baseline.count,
                    "mean_s": baseline.mean,
                    "max_s": baseline.max,
                }
                for (pattern, kind, state), baseline in sorted(
                    self._baselines.items()
                )
            }

    def scan(
        self, policy: StuckPolicy | None = None, now: float | None = None
    ) -> list[dict[str, Any]]:
        """Entities stuck in their current state per ``policy``.

        Returns one dict per flagged entity, longest-stuck first, with
        the baseline and threshold that condemned it — the payload the
        alert engine and the flight recorder both surface.
        """
        policy = policy or StuckPolicy()
        now = self.clock.now() if now is None else now
        flagged: list[dict[str, Any]] = []
        with self._lock:
            entries = list(self._current.values())
            baselines = dict(self._baselines)
        for entry in entries:
            residency = max(0.0, now - entry["entered_at"])
            if residency < policy.floor_s:
                continue
            baseline = baselines.get(
                (entry["pattern"], entry["kind"], entry["state"])
            )
            if baseline is not None and baseline.count >= policy.min_samples:
                threshold = max(policy.multiple * baseline.mean, policy.floor_s)
                reason = (
                    f"residency {residency:.1f}s > "
                    f"{policy.multiple:g}x baseline mean {baseline.mean:.1f}s"
                )
                samples, mean = baseline.count, baseline.mean
            else:
                threshold = policy.fallback_s
                reason = (
                    f"residency {residency:.1f}s > fallback "
                    f"{policy.fallback_s:.1f}s (baseline not credible)"
                )
                samples = baseline.count if baseline is not None else 0
                mean = baseline.mean if baseline is not None else 0.0
            if residency > threshold:
                flagged.append(
                    {
                        "kind": entry["kind"],
                        "entity_id": entry["entity_id"],
                        "workflow_id": entry["workflow_id"],
                        "pattern": entry["pattern"],
                        "task": entry["task"],
                        "state": entry["state"],
                        "residency_s": residency,
                        "baseline_mean_s": mean,
                        "baseline_samples": samples,
                        "threshold_s": threshold,
                        "reason": reason,
                    }
                )
        flagged.sort(key=lambda item: -item["residency_s"])
        return flagged

    def report(self) -> dict[str, Any]:
        """JSON-friendly summary for the servlet and CLI."""
        return {
            "tracked": len(self._current),
            "evicted": self.evicted,
            "baselines": self.baselines(),
            "current": self.current(),
        }
