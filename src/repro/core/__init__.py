"""core — the Exp-WF workflow module (the paper's contribution).

Layout mirrors the paper's §4 (model) and §5 (manager):

* :mod:`~repro.core.states` — the execution-model state machines of
  Fig. 4: the basic model plus the extended task-level and
  task-instance-level machines of §4.2.
* :mod:`~repro.core.conditions` — the transition condition language
  (lexer, parser, evaluator).
* :mod:`~repro.core.spec` / :mod:`~repro.core.builder` /
  :mod:`~repro.core.validation` — the workflow specification model:
  patterns, tasks, transitions, agents, sub-workflows.
* :mod:`~repro.core.datamodel` / :mod:`~repro.core.persistence` — the
  workflow data model of Fig. 5 layered onto Exp-DB's schema (only the
  ``Experiment`` table is modified).
* :mod:`~repro.core.engine` — the ``WorkflowBean``: instantiation,
  eligibility, multi-instance task execution, restart/backtracking,
  authorization, output forwarding.
* :mod:`~repro.core.filter` — the ``WorkflowFilter`` and
  ``WorkflowServlet``: the servlet-filter integration of Fig. 6/7 that
  attaches all of the above to an unmodified Exp-DB.
* :mod:`~repro.core.events` — the engine's observable event stream.
"""

from repro.core.builder import PatternBuilder
from repro.core.conditions import Condition
from repro.core.engine import WorkflowBean
from repro.core.filter import (
    DegradationPolicy,
    WorkflowFilter,
    WorkflowServlet,
    install_workflow_support,
)
from repro.core.spec import AgentSpec, TaskDef, TransitionDef, WorkflowPattern
from repro.core.states import (
    BASIC_MODEL,
    TASK_INSTANCE_MODEL,
    TASK_MODEL,
    InstanceState,
    StateMachine,
    TaskState,
)

__all__ = [
    "PatternBuilder",
    "Condition",
    "WorkflowBean",
    "DegradationPolicy",
    "WorkflowFilter",
    "WorkflowServlet",
    "install_workflow_support",
    "AgentSpec",
    "TaskDef",
    "TransitionDef",
    "WorkflowPattern",
    "StateMachine",
    "TaskState",
    "InstanceState",
    "BASIC_MODEL",
    "TASK_MODEL",
    "TASK_INSTANCE_MODEL",
]
