"""The execution-model state machines (Fig. 4 and §4.2).

Three machines are defined, all variations of the basic model:

**Basic model** (one instance per task): created → unreachable |
eligible; eligible → aborted (authorization denied) | delegated;
delegated → aborted | active; active → aborted | completed.

**Task execution model** (extended, §4.2): describes the state of *all*
instances of a task together.  It "moves from eligible directly to
active without a delegated state which only exists for task instances".
A task aborts only if every instance aborts, completes otherwise.
Restart ("backtracking") sends a terminal task back for re-evaluation.

**Task instance execution model** (extended): "contains all the states
of the basic execution model except of unreachable and eligible, since
they have already been determined for the task itself."

States are string enums (persisted verbatim in the database); machines
are transition tables consulted through :class:`StateMachine`, which is
the *only* way engine code mutates a state — guaranteeing no illegal
transition can ever be recorded.
"""

from __future__ import annotations

import enum

from repro.errors import IllegalTransitionError


class TaskState(str, enum.Enum):
    """States of tasks (and of basic-model task instances)."""

    CREATED = "created"
    UNREACHABLE = "unreachable"
    ELIGIBLE = "eligible"
    DELEGATED = "delegated"
    ACTIVE = "active"
    ABORTED = "aborted"
    COMPLETED = "completed"


class InstanceState(str, enum.Enum):
    """States of task instances in the extended model."""

    CREATED = "created"
    DELEGATED = "delegated"
    ACTIVE = "active"
    ABORTED = "aborted"
    COMPLETED = "completed"


#: Events shared across the machines.
class Event(str, enum.Enum):
    BECOME_UNREACHABLE = "become_unreachable"
    BECOME_ELIGIBLE = "become_eligible"
    DENY = "deny_authorization"
    DELEGATE = "delegate"
    ACTIVATE = "activate"
    START = "start"
    COMPLETE = "complete"
    ABORT = "abort"
    RESTART = "restart"


#: Fig. 4 — the basic execution model (single instance per task).
BASIC_MODEL: dict[tuple[str, str], str] = {
    (TaskState.CREATED, Event.BECOME_UNREACHABLE): TaskState.UNREACHABLE,
    (TaskState.CREATED, Event.BECOME_ELIGIBLE): TaskState.ELIGIBLE,
    (TaskState.ELIGIBLE, Event.DENY): TaskState.ABORTED,
    (TaskState.ELIGIBLE, Event.DELEGATE): TaskState.DELEGATED,
    (TaskState.DELEGATED, Event.ABORT): TaskState.ABORTED,
    (TaskState.DELEGATED, Event.START): TaskState.ACTIVE,
    (TaskState.ACTIVE, Event.ABORT): TaskState.ABORTED,
    (TaskState.ACTIVE, Event.COMPLETE): TaskState.COMPLETED,
}

#: §4.2 — the task execution model: eligible goes directly to active;
#: terminal (and unreachable) tasks may be restarted, which sends them
#: back to created for re-evaluation of their eligibility requirements.
TASK_MODEL: dict[tuple[str, str], str] = {
    (TaskState.CREATED, Event.BECOME_UNREACHABLE): TaskState.UNREACHABLE,
    (TaskState.CREATED, Event.BECOME_ELIGIBLE): TaskState.ELIGIBLE,
    (TaskState.ELIGIBLE, Event.DENY): TaskState.ABORTED,
    (TaskState.ELIGIBLE, Event.ACTIVATE): TaskState.ACTIVE,
    # Eligibility can be revoked before activation when an upstream task
    # is restarted and its outputs disappear.
    (TaskState.ELIGIBLE, Event.RESTART): TaskState.CREATED,
    (TaskState.ACTIVE, Event.ABORT): TaskState.ABORTED,
    (TaskState.ACTIVE, Event.COMPLETE): TaskState.COMPLETED,
    (TaskState.ABORTED, Event.RESTART): TaskState.CREATED,
    (TaskState.COMPLETED, Event.RESTART): TaskState.CREATED,
    (TaskState.UNREACHABLE, Event.RESTART): TaskState.CREATED,
}

#: §4.2 — the task instance execution model: no unreachable/eligible.
TASK_INSTANCE_MODEL: dict[tuple[str, str], str] = {
    (InstanceState.CREATED, Event.DELEGATE): InstanceState.DELEGATED,
    (InstanceState.CREATED, Event.ABORT): InstanceState.ABORTED,
    (InstanceState.DELEGATED, Event.ABORT): InstanceState.ABORTED,
    (InstanceState.DELEGATED, Event.START): InstanceState.ACTIVE,
    (InstanceState.ACTIVE, Event.ABORT): InstanceState.ABORTED,
    (InstanceState.ACTIVE, Event.COMPLETE): InstanceState.COMPLETED,
}

#: Terminal states (absorbing except via the explicit restart event).
TERMINAL_TASK_STATES = frozenset(
    {TaskState.ABORTED, TaskState.COMPLETED}
)
TERMINAL_INSTANCE_STATES = frozenset(
    {InstanceState.ABORTED, InstanceState.COMPLETED}
)


class StateMachine:
    """A current state plus a transition table; the sole mutation path."""

    def __init__(
        self,
        table: dict[tuple[str, str], str],
        initial: str,
        name: str = "state-machine",
    ) -> None:
        self.table = table
        self.state = initial
        self.name = name
        self.history: list[tuple[str, str]] = []  # (event, new state)

    def can_apply(self, event: str) -> bool:
        """Whether ``event`` is legal in the current state."""
        return (self.state, event) in self.table

    def apply(self, event: str) -> str:
        """Apply ``event``; returns the new state or raises."""
        try:
            new_state = self.table[(self.state, event)]
        except KeyError:
            raise IllegalTransitionError(
                self.name, str(self.state), str(event)
            ) from None
        self.state = new_state
        self.history.append((str(event), str(new_state)))
        return new_state

    def legal_events(self) -> list[str]:
        """Events applicable in the current state."""
        return [event for (state, event) in self.table if state == self.state]


def basic_machine() -> StateMachine:
    """A fresh basic-model machine (starts in ``created``)."""
    return StateMachine(BASIC_MODEL, TaskState.CREATED, "basic-model")


def task_machine(initial: str = TaskState.CREATED) -> StateMachine:
    """A fresh task-level machine (extended model)."""
    return StateMachine(TASK_MODEL, initial, "task-model")


def instance_machine(initial: str = InstanceState.CREATED) -> StateMachine:
    """A fresh task-instance machine (extended model)."""
    return StateMachine(TASK_INSTANCE_MODEL, initial, "task-instance-model")


def transition_catalog() -> dict[str, list[tuple[str, str, str]]]:
    """Every legal transition per machine, as plain string triples.

    ``{machine: [(state, event, new_state), ...]}`` — the reference the
    audit verifier and documentation build from, decoupled from the enum
    types the engine uses internally.
    """
    catalog: dict[str, list[tuple[str, str, str]]] = {}
    for name, table in (
        ("basic-model", BASIC_MODEL),
        ("task-model", TASK_MODEL),
        ("task-instance-model", TASK_INSTANCE_MODEL),
    ):
        catalog[name] = [
            (str(state.value), str(event.value), str(target.value))
            for (state, event), target in table.items()
        ]
    return catalog
