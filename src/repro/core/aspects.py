"""Aspect-oriented interception — the paper's future work, implemented.

§7: "We are currently investigating whether aspect-oriented programming
can replace filter technology in case of systems that are not
web-based.  An aspect-oriented programming language like AspectJ allows
the specification of precise interceptor points, e.g., when a
particular method of an object is called.  This is similar to filters
but provides more alternatives as to where to intercept calls."

This module provides that alternative integration path: instead of (or
in addition to) intercepting HTTP requests, *advice* is woven around
method calls on arbitrary Python objects — typically the ``TableBean``,
so that programs talking to the LIMS directly (batch importers,
notebooks, scripts) get the same workflow validation and state tracking
as web users, with the target object completely unaware.

Model:

* a **pointcut** selects join points: (object, method-name pattern);
* **advice** runs around matched calls: ``before`` may veto the call by
  raising, ``after_returning`` observes the result, ``after_raising``
  observes failures;
* the :class:`AspectWeaver` installs and removes advice without
  touching the target class — instances are woven individually, and
  unweaving restores the original bound methods exactly.

``install_aspect_workflow_support`` packages the Exp-WF aspect: it
weaves the WorkflowBean's preprocessing and postprocessing around a
TableBean's ``insert``/``update``/``delete`` — the direct-call analog of
the WorkflowFilter's modes (a) and (c).
"""

from __future__ import annotations

import fnmatch
import functools
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WorkflowError


class AdviceVeto(WorkflowError):
    """Raised by ``before`` advice to block the intercepted call."""


@dataclass
class Advice:
    """Callbacks woven around a join point.

    Each receives a :class:`JoinPoint`; ``after_returning`` additionally
    receives the result, ``after_raising`` the exception.
    """

    before: Callable[["JoinPoint"], None] | None = None
    after_returning: Callable[["JoinPoint", Any], None] | None = None
    after_raising: Callable[["JoinPoint", BaseException], None] | None = None


@dataclass
class JoinPoint:
    """One intercepted call: target, method, arguments."""

    target: Any
    method: str
    args: tuple
    kwargs: dict


@dataclass
class _Weave:
    target: Any
    method: str
    original: Callable


@dataclass
class AspectWeaver:
    """Installs advice on object instances; fully reversible.

    The diagnostic ``trace`` is capped (``trace_capacity``, default
    256 entries, oldest discarded) so a long-lived woven object cannot
    leak memory; set it to ``0`` to disable tracing entirely, or to
    ``None`` for the old unbounded behaviour.
    """

    _weaves: list[_Weave] = field(default_factory=list)
    #: (method name, 'call'|'return'|'raise') tuples, for diagnostics.
    trace: list[tuple[str, str]] = field(default_factory=list)
    trace_capacity: int | None = 256
    trace_dropped: int = 0

    def weave(self, target: Any, method_pattern: str, advice: Advice) -> int:
        """Wrap every matching public *method* of ``target``.

        ``method_pattern`` is an fnmatch pattern (``insert``, ``*``,
        ``{insert,update}`` is not supported — weave twice instead).
        Only instance/class methods are join points: arbitrary public
        callables (stored lambdas, callable attribute objects, nested
        classes) are not methods and are never wrapped, so ``*`` on a
        rich object stays safe.  Returns the number of methods woven.
        """
        woven = 0
        for name in dir(target):
            if name.startswith("_"):
                continue
            if not fnmatch.fnmatch(name, method_pattern):
                continue
            bound = getattr(target, name)
            if not inspect.ismethod(bound):
                continue
            self._weave_one(target, name, bound, advice)
            woven += 1
        return woven

    def _trace(self, name: str, phase: str) -> None:
        if self.trace_capacity == 0:
            return
        self.trace.append((name, phase))
        if self.trace_capacity is not None:
            overflow = len(self.trace) - self.trace_capacity
            if overflow > 0:
                del self.trace[:overflow]
                self.trace_dropped += overflow

    def _weave_one(
        self, target: Any, name: str, original: Callable, advice: Advice
    ) -> None:
        weaver = self

        @functools.wraps(original)
        def woven(*args: Any, **kwargs: Any) -> Any:
            join_point = JoinPoint(
                target=target, method=name, args=args, kwargs=kwargs
            )
            weaver._trace(name, "call")
            if advice.before is not None:
                advice.before(join_point)
            try:
                result = original(*args, **kwargs)
            except BaseException as error:
                weaver._trace(name, "raise")
                if advice.after_raising is not None:
                    advice.after_raising(join_point, error)
                raise
            weaver._trace(name, "return")
            if advice.after_returning is not None:
                advice.after_returning(join_point, result)
            return result

        object.__setattr__(target, name, woven)
        self._weaves.append(_Weave(target=target, method=name, original=original))

    def unweave_all(self) -> int:
        """Remove every installed weave, restoring original methods."""
        removed = 0
        for weave in reversed(self._weaves):
            try:
                delattr(weave.target, weave.method)
            except AttributeError:  # pragma: no cover - instance dict only
                pass
            removed += 1
        self._weaves.clear()
        return removed


def install_aspect_workflow_support(bean, engine) -> AspectWeaver:
    """Weave Exp-WF around a TableBean for non-web clients.

    The direct-call analog of the WorkflowFilter:

    * **before** ``insert``/``update``/``delete`` — the engine validates
      the action (mode a); a veto raises :class:`AdviceVeto` and the
      call never reaches the bean;
    * **after returning** — the engine re-checks running workflows
      (mode c), exactly as it does for successful web requests.

    Returns the weaver (call ``unweave_all`` to detach Exp-WF again —
    the bean itself is never modified).
    """

    def table_of(join_point: JoinPoint) -> str | None:
        if join_point.args:
            return join_point.args[0]
        return join_point.kwargs.get("table")

    def payload_of(join_point: JoinPoint) -> dict:
        # insert(table, values) / update(table, criteria, changes) /
        # delete(table, criteria): validate against what the action
        # writes (values/changes) or selects (criteria for deletes).
        positional = join_point.args[1:]
        if join_point.method == "update":
            if len(positional) >= 2:
                return dict(positional[1])
            return dict(join_point.kwargs.get("changes", {}))
        if positional:
            return dict(positional[0])
        return dict(
            join_point.kwargs.get("values")
            or join_point.kwargs.get("criteria")
            or {}
        )

    def before(join_point: JoinPoint) -> None:
        table = table_of(join_point)
        if table is None:
            return
        allowed, reason = engine.validate_user_action(
            table, join_point.method, payload_of(join_point)
        )
        if not allowed:
            engine.events.emit(
                "request.denied",
                table=table,
                action=join_point.method,
                reason=reason,
                via="aspect",
            )
            raise AdviceVeto(f"workflow manager denied {join_point.method}: {reason}")

    def after_returning(join_point: JoinPoint, result: Any) -> None:
        table = table_of(join_point)
        if table is not None:
            engine.on_data_change(table, {"result": result})

    weaver = AspectWeaver()
    advice = Advice(before=before, after_returning=after_returning)
    for method in ("insert", "update", "delete"):
        weaver.weave(bean, method, advice)
    return weaver
