"""Read-only runtime views of workflows, tasks and instances.

The database is the source of truth for all execution state (that is
what makes the response-time profile DB-dominated, as the paper
measures); these dataclasses are the convenient in-memory projection the
web layer, the examples and the tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.minidb.engine import Database
from repro.minidb.predicates import AND, EQ


@dataclass
class InstanceView:
    """One task instance = one (extended) Experiment row."""

    experiment_id: int
    state: str
    success: bool | None
    agent_id: int | None
    experiment: dict[str, Any]
    #: False for instances superseded by a restart (history views only).
    current: bool = True

    @property
    def decided(self) -> bool:
        """Whether the instance reached a terminal state."""
        return self.state in ("completed", "aborted")


@dataclass
class TaskView:
    """One task of a workflow instance with its current instances."""

    wftask_id: int
    name: str
    state: str
    default_instances: int
    requires_authorization: bool
    experiment_type: str | None
    subworkflow: str | None
    child_workflow_id: int | None
    instances: list[InstanceView] = field(default_factory=list)

    @property
    def completed_instances(self) -> int:
        return sum(1 for i in self.instances if i.state == "completed")

    @property
    def aborted_instances(self) -> int:
        return sum(1 for i in self.instances if i.state == "aborted")

    @property
    def undecided_instances(self) -> int:
        return sum(1 for i in self.instances if not i.decided)


@dataclass
class WorkflowView:
    """A full workflow instance snapshot."""

    workflow_id: int
    pattern_name: str
    name: str | None
    status: str
    project_id: int | None
    parent_workflow_id: int | None
    tasks: dict[str, TaskView] = field(default_factory=dict)

    def task(self, name: str) -> TaskView:
        return self.tasks[name]


def load_instance_views(db: Database, wftask_id: int) -> list[InstanceView]:
    """Current (non-superseded) instances of one task, oldest first."""
    rows = db.select(
        "Experiment",
        AND(EQ("wftask_id", wftask_id), EQ("wf_current", True)),
        order_by="experiment_id",
    )
    return [
        InstanceView(
            experiment_id=row["experiment_id"],
            state=row["wf_state"],
            success=row["wf_success"],
            agent_id=row["agent_id"],
            experiment=row,
        )
        for row in rows
    ]


def load_instance_history(db: Database, wftask_id: int) -> list[InstanceView]:
    """Every instance a task ever had, including ones a backtrack
    superseded — the provenance view the audit timeline pairs with."""
    rows = db.select(
        "Experiment", EQ("wftask_id", wftask_id), order_by="experiment_id"
    )
    return [
        InstanceView(
            experiment_id=row["experiment_id"],
            state=row["wf_state"],
            success=row["wf_success"],
            agent_id=row["agent_id"],
            experiment=row,
            current=bool(row["wf_current"]),
        )
        for row in rows
    ]


def load_workflow_view(db: Database, workflow_id: int) -> WorkflowView:
    """Snapshot a workflow instance with all tasks and instances."""
    workflow = db.get("Workflow", workflow_id)
    if workflow is None:
        from repro.errors import InstanceError

        raise InstanceError(f"no workflow with id {workflow_id}")
    pattern = db.get("WorkflowPattern", workflow["pattern_id"])
    view = WorkflowView(
        workflow_id=workflow_id,
        pattern_name=pattern["name"] if pattern else "?",
        name=workflow["name"],
        status=workflow["status"],
        project_id=workflow["project_id"],
        parent_workflow_id=workflow["parent_workflow_id"],
    )
    for task_row in db.select(
        "WFTask", EQ("workflow_id", workflow_id), order_by="wftask_id"
    ):
        wfp_task = db.get("WFPTask", task_row["wfp_task_id"])
        subworkflow = None
        if wfp_task["subpattern_id"] is not None:
            child_pattern = db.get("WorkflowPattern", wfp_task["subpattern_id"])
            subworkflow = child_pattern["name"] if child_pattern else None
        view.tasks[wfp_task["name"]] = TaskView(
            wftask_id=task_row["wftask_id"],
            name=wfp_task["name"],
            state=task_row["state"],
            default_instances=wfp_task["default_instances"],
            requires_authorization=bool(wfp_task["requires_authorization"]),
            experiment_type=wfp_task["experiment_type"],
            subworkflow=subworkflow,
            child_workflow_id=task_row["child_workflow_id"],
            instances=load_instance_views(db, task_row["wftask_id"]),
        )
    return view
