"""The workflow data model (Fig. 5), layered onto Exp-DB's schema.

"The challenges here lay in taking advantage of existing information and
connecting it to workflow related information in a non-intrusive way."
All workflow concepts get *new* tables; of the original data model only
the ``Experiment`` table is extended — with pointers to the workflow and
task an experiment belongs to and to the executing agent (plus the
instance-level execution state, which the paper stores with the task
instance, i.e. in ``Experiment``).

``install_workflow_datamodel`` returns the list of pre-existing tables it
modified — the test suite asserts this list is exactly
``["Experiment"]``, reproducing the paper's headline integration claim.
"""

from __future__ import annotations

from repro.minidb.engine import Database
from repro.minidb.schema import Column, TableSchema, fk
from repro.minidb.types import ColumnType

#: Tables added by Exp-WF (Fig. 5 plus the task- and authorization-state
#: tables the extended execution model needs).
WORKFLOW_TABLES = (
    "WorkflowPattern",
    "WFPTask",
    "WFPTransition",
    "LegalTransition",
    "Agent",
    "ExpType2Agent",
    "Workflow",
    "WFTask",
    "WFAuthorization",
)

#: Columns Exp-WF adds to the original ``Experiment`` table.
EXPERIMENT_EXTENSION_COLUMNS = (
    "workflow_id",
    "wftask_id",
    "agent_id",
    "wf_state",
    "wf_success",
    "wf_current",
)


def install_workflow_datamodel(db: Database) -> list[str]:
    """Create the workflow tables and extend ``Experiment``.

    Returns the names of *pre-existing* tables that were modified (the
    paper's integration claim: exactly one, ``Experiment``).
    """
    db.create_table(
        TableSchema(
            name="WorkflowPattern",
            columns=[
                Column("pattern_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("description", ColumnType.TEXT),
            ],
            primary_key=("pattern_id",),
            autoincrement="pattern_id",
        )
    )
    db.create_table(
        TableSchema(
            name="WFPTask",
            columns=[
                Column("wfp_task_id", ColumnType.INTEGER, nullable=False),
                Column("pattern_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("experiment_type", ColumnType.TEXT),
                Column("subpattern_id", ColumnType.INTEGER),
                Column("default_instances", ColumnType.INTEGER, nullable=False),
                Column(
                    "requires_authorization", ColumnType.BOOLEAN, default=False
                ),
                Column("description", ColumnType.TEXT),
            ],
            primary_key=("wfp_task_id",),
            foreign_keys=[
                fk("pattern_id", "WorkflowPattern", "pattern_id"),
                fk("experiment_type", "ExperimentType", "type_name"),
                fk("subpattern_id", "WorkflowPattern", "pattern_id"),
            ],
            autoincrement="wfp_task_id",
        )
    )
    db.create_table(
        TableSchema(
            name="WFPTransition",
            columns=[
                Column("wfp_transition_id", ColumnType.INTEGER, nullable=False),
                Column("pattern_id", ColumnType.INTEGER, nullable=False),
                Column("source_task_id", ColumnType.INTEGER, nullable=False),
                Column("target_task_id", ColumnType.INTEGER, nullable=False),
                Column("condition", ColumnType.TEXT),
                Column("sample_type", ColumnType.TEXT),
                Column("is_data", ColumnType.BOOLEAN, default=False),
            ],
            primary_key=("wfp_transition_id",),
            foreign_keys=[
                fk("pattern_id", "WorkflowPattern", "pattern_id"),
                fk("source_task_id", "WFPTask", "wfp_task_id"),
                fk("target_task_id", "WFPTask", "wfp_task_id"),
                fk("sample_type", "SampleType", "type_name"),
            ],
            autoincrement="wfp_transition_id",
        )
    )
    db.create_table(
        TableSchema(
            name="LegalTransition",
            columns=[
                Column("legal_transition_id", ColumnType.INTEGER, nullable=False),
                Column("source_type", ColumnType.TEXT, nullable=False),
                Column("target_type", ColumnType.TEXT, nullable=False),
            ],
            primary_key=("legal_transition_id",),
            foreign_keys=[
                fk("source_type", "ExperimentType", "type_name"),
                fk("target_type", "ExperimentType", "type_name"),
            ],
            autoincrement="legal_transition_id",
        )
    )
    db.create_table(
        TableSchema(
            name="Agent",
            columns=[
                Column("agent_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("kind", ColumnType.TEXT, nullable=False),
                Column("contact", ColumnType.TEXT),
                Column("queue", ColumnType.TEXT, nullable=False),
            ],
            primary_key=("agent_id",),
            autoincrement="agent_id",
        )
    )
    db.create_table(
        TableSchema(
            name="ExpType2Agent",
            columns=[
                Column("eta_id", ColumnType.INTEGER, nullable=False),
                Column("experiment_type", ColumnType.TEXT, nullable=False),
                Column("agent_id", ColumnType.INTEGER, nullable=False),
            ],
            primary_key=("eta_id",),
            foreign_keys=[
                fk("experiment_type", "ExperimentType", "type_name"),
                fk("agent_id", "Agent", "agent_id"),
            ],
            autoincrement="eta_id",
        )
    )
    db.create_table(
        TableSchema(
            name="Workflow",
            columns=[
                Column("workflow_id", ColumnType.INTEGER, nullable=False),
                Column("pattern_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("created", ColumnType.TIMESTAMP),
                Column("status", ColumnType.TEXT, default="running"),
                Column("project_id", ColumnType.INTEGER),
                # Sub-workflow links; self-references stay plain integers
                # because minidb resolves FK targets at CREATE time.
                Column("parent_workflow_id", ColumnType.INTEGER),
                Column("parent_wftask_id", ColumnType.INTEGER),
            ],
            primary_key=("workflow_id",),
            foreign_keys=[
                fk("pattern_id", "WorkflowPattern", "pattern_id"),
                fk("project_id", "Project", "project_id"),
            ],
            autoincrement="workflow_id",
        )
    )
    db.create_table(
        TableSchema(
            name="WFTask",
            columns=[
                Column("wftask_id", ColumnType.INTEGER, nullable=False),
                Column("workflow_id", ColumnType.INTEGER, nullable=False),
                Column("wfp_task_id", ColumnType.INTEGER, nullable=False),
                Column("state", ColumnType.TEXT, nullable=False),
                Column("child_workflow_id", ColumnType.INTEGER),
            ],
            primary_key=("wftask_id",),
            foreign_keys=[
                fk("workflow_id", "Workflow", "workflow_id"),
                fk("wfp_task_id", "WFPTask", "wfp_task_id"),
            ],
            autoincrement="wftask_id",
        )
    )
    db.create_table(
        TableSchema(
            name="WFAuthorization",
            columns=[
                Column("auth_id", ColumnType.INTEGER, nullable=False),
                Column("workflow_id", ColumnType.INTEGER, nullable=False),
                Column("wftask_id", ColumnType.INTEGER, nullable=False),
                Column("kind", ColumnType.TEXT, nullable=False),
                Column("status", ColumnType.TEXT, default="pending"),
                Column("agent_id", ColumnType.INTEGER),
                Column("decided_by", ColumnType.TEXT),
            ],
            primary_key=("auth_id",),
            foreign_keys=[
                fk("workflow_id", "Workflow", "workflow_id"),
                fk("wftask_id", "WFTask", "wftask_id"),
            ],
            autoincrement="auth_id",
        )
    )

    # Access-path indexes for the engine's hot lookups.
    db.create_index("WFPTask", ["pattern_id"])
    db.create_index("WFPTransition", ["pattern_id"])
    db.create_index("WFTask", ["workflow_id"])
    db.create_index("ExpType2Agent", ["experiment_type"])
    db.create_index("WFAuthorization", ["workflow_id"])

    # The single modification to the original data model.
    modified = extend_experiment_table(db)
    return modified


def extend_experiment_table(db: Database) -> list[str]:
    """Add the workflow pointers to ``Experiment`` (and nothing else)."""
    db.add_column("Experiment", Column("workflow_id", ColumnType.INTEGER))
    db.add_column("Experiment", Column("wftask_id", ColumnType.INTEGER))
    db.add_column("Experiment", Column("agent_id", ColumnType.INTEGER))
    db.add_column("Experiment", Column("wf_state", ColumnType.TEXT))
    db.add_column("Experiment", Column("wf_success", ColumnType.BOOLEAN))
    # Restart/backtracking keeps superseded instances as history; the
    # engine only considers rows with wf_current = true.
    db.add_column("Experiment", Column("wf_current", ColumnType.BOOLEAN, default=True))
    db.create_index("Experiment", ["workflow_id"])
    db.create_index("Experiment", ["wftask_id"])
    return ["Experiment"]
