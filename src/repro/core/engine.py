"""The WorkflowBean — Exp-WF's workflow engine (§5.2).

"The WorkflowBean's primary responsibility is to keep track of the state
of workflow instances and tasks, and to direct the workflow execution,
e.g., determining a task's eligibility, sending tasks to the
AgentManager, or writing instance information to the database."

Design decisions, mapped to the paper:

* **The database is the source of truth.**  Task state lives in
  ``WFTask.state``; instance state lives in the extended ``Experiment``
  row.  Every state mutation goes through the Fig. 4 state machines, so
  an illegal transition can never be persisted.  (This is also what
  makes the response-time profile DB-dominated, which is the paper's
  central performance observation.)

* **Eligibility (§4.2)**: a task is eligible when, for every distinct
  source task of its incoming transitions, the source has *completed*,
  or is active with at least its default number of instances completed —
  "this allows the system to begin any tasks without undue delay, while
  giving users the power to delay that execution if more source task
  instances are desired" (the delay lever being the authorization gate).
  Conditions are evaluated at that moment; a false (or erroring)
  condition on any incoming transition makes the task unreachable, as
  does an aborted or unreachable source.

* **Multiple task instances (§4.2)**: activating a task spawns its
  default number of instances; users may spawn more while the task is
  active.  A task completes when all its instances are decided and at
  least one completed; it aborts only when every instance aborted.
  Instance success is declared explicitly by the executor.

* **Output forwarding (§4.2)**: destination instances receive the
  outputs of *all successfully completed* source instances; the
  executing agent chooses which to consume and reports the choice with
  its results.

* **Backtracking (§4.2)**: any terminal or unreachable task can be
  restarted; its current instances are superseded (kept as history with
  ``wf_current = false``), undecided ones aborted, and every downstream
  task is restarted in cascade so the repetition propagates.

* **Termination control (§4.2)**: final tasks always require
  authorization; the workflow completes when its final tasks are decided
  and at least one completed.
"""

# conlint: module-allow=CC003 -- the bean lock is deliberately held
# across durable database writes: one re-entrant lock serialises all
# engine methods (the paper's servlet-bean concurrency model), so the
# commit fsync runs under it.  This is the known cost of the current
# thread-per-request model; the async event-driven hot path (ROADMAP
# item 3) replaces the bean lock entirely, and this module-allow is the
# inventory of exactly the sites that rewrite must make awaitable.

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Iterable, TypeVar

from repro.core.conditions import Condition
from repro.core.datamodel import EXPERIMENT_EXTENSION_COLUMNS
from repro.core.dispatch import Dispatcher, NullDispatcher
from repro.core.events import EventLog
from repro.core.instance import WorkflowView, load_workflow_view
from repro.core.persistence import PatternStore, agents_for_type
from repro.core.spec import TaskDef, WorkflowPattern
from repro.core.states import (
    Event,
    InstanceState,
    TaskState,
    instance_machine,
    task_machine,
)
from repro.errors import (
    AuthorizationError,
    ConditionError,
    InstanceError,
    SpecificationError,
)
from repro.minidb.engine import Database
from repro.minidb.predicates import AND, EQ, IN

_Method = TypeVar("_Method", bound=Callable)


def _synchronized(method: _Method) -> _Method:
    """Serialise a public engine method under the bean's lock.

    The original WorkflowBean is a servlet-container bean invoked from
    concurrent request threads; one re-entrant lock per bean gives the
    same calls-run-one-at-a-time behaviour (engine methods freely call
    each other, hence an RLock)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


class WorkflowBean:
    """The workflow engine.  One instance serves one Exp-DB database."""

    def __init__(
        self,
        db: Database,
        dispatcher: Dispatcher | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.db = db
        self.dispatcher: Dispatcher = dispatcher or NullDispatcher()
        self.events = events or EventLog()
        #: Write-through-invalidated cache of specification data:
        #: pattern rows, compiled patterns, WFPTask rows, and the
        #: experiment/sample type-table mappings.  Subscribed to the
        #: database's write listeners, so editing a pattern is visible
        #: to the very next ``start_workflow``.  Set
        #: ``specs.enabled = False`` to audit the cache-bypass path.
        self.specs = PatternStore(db)
        #: Number of check_workflow evaluations (feeds the cost model).
        self.check_count = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Workflow lifecycle
    # ------------------------------------------------------------------

    @_synchronized
    def start_workflow(
        self,
        pattern_name: str,
        name: str | None = None,
        project_id: int | None = None,
        _parent: tuple[int, int] | None = None,
    ) -> dict[str, Any]:
        """Instantiate a stored pattern; returns the ``Workflow`` row.

        The run-through begins immediately: initial tasks are evaluated
        for eligibility and activated (or parked behind authorization).
        """
        pattern_row = self.specs.pattern_row(pattern_name)
        if pattern_row is None:
            raise SpecificationError(f"no stored pattern named {pattern_name!r}")
        parent_workflow_id, parent_wftask_id = _parent or (None, None)
        with self.db.transaction():
            workflow = self.db.insert(
                "Workflow",
                {
                    "pattern_id": pattern_row["pattern_id"],
                    "name": name or pattern_name,
                    "status": "running",
                    "project_id": project_id,
                    "parent_workflow_id": parent_workflow_id,
                    "parent_wftask_id": parent_wftask_id,
                },
            )
            for task_row in self.specs.task_rows(pattern_row["pattern_id"]):
                self.db.insert(
                    "WFTask",
                    {
                        "workflow_id": workflow["workflow_id"],
                        "wfp_task_id": task_row["wfp_task_id"],
                        "state": TaskState.CREATED.value,
                    },
                )
        self.events.emit(
            "workflow.started",
            workflow_id=workflow["workflow_id"],
            pattern=pattern_name,
        )
        self.check_workflow(workflow["workflow_id"])
        return self.db.get("Workflow", workflow["workflow_id"])

    def workflow_view(self, workflow_id: int) -> WorkflowView:
        """A full snapshot of one workflow instance."""
        return load_workflow_view(self.db, workflow_id)

    def list_workflows(self, status: str | None = None) -> list[dict[str, Any]]:
        """All workflow rows, optionally filtered by status."""
        predicate = EQ("status", status) if status else None
        return self.db.select("Workflow", predicate, order_by="workflow_id")

    # ------------------------------------------------------------------
    # The central evaluation loop
    # ------------------------------------------------------------------

    @_synchronized
    def check_workflow(self, workflow_id: int) -> None:
        """Re-evaluate one workflow until no more state changes happen.

        This is the routine the paper describes being triggered by every
        relevant data change — and the reason "a simple insert into an
        experiment related table can trigger several database reads".
        """
        self.check_count += 1
        workflow = self.db.get("Workflow", workflow_id)
        if workflow is None:
            raise InstanceError(f"no workflow with id {workflow_id}")
        if workflow["status"] != "running":
            return
        pattern = self._pattern(workflow["pattern_id"])

        changed = True
        while changed:
            changed = False
            tasks = self._task_rows(workflow_id)
            for task_row in tasks:
                taskdef = pattern.task(self._task_name(task_row))
                state = task_row["state"]
                if state == TaskState.CREATED.value:
                    changed |= self._evaluate_created(
                        workflow, pattern, task_row, taskdef
                    )
                elif state == TaskState.ELIGIBLE.value:
                    changed |= self._try_activate(workflow, task_row, taskdef)
                elif state == TaskState.ACTIVE.value:
                    changed |= self._refresh_active(workflow, task_row, taskdef)
        self._update_workflow_status(workflow_id, pattern)

    # -- created → eligible | unreachable --------------------------------

    def _evaluate_created(
        self,
        workflow: dict[str, Any],
        pattern: WorkflowPattern,
        task_row: dict[str, Any],
        taskdef: TaskDef,
    ) -> bool:
        verdict = self._eligibility_verdict(workflow, pattern, taskdef)
        if verdict == "eligible":
            self._apply_task_event(task_row, Event.BECOME_ELIGIBLE)
            return True
        if verdict == "unreachable":
            self._apply_task_event(task_row, Event.BECOME_UNREACHABLE)
            return True
        return False

    def _eligibility_verdict(
        self,
        workflow: dict[str, Any],
        pattern: WorkflowPattern,
        taskdef: TaskDef,
    ) -> str:
        """``"eligible"``, ``"unreachable"`` or ``"pending"``.

        Per-source verdicts compose as follows:

        * an **aborted** source makes the task unreachable outright ("if
          a required source task ... aborts ... the task and tasks that
          depend on it become unreachable");
        * an **unreachable** source is a *dead path*: it is excluded
          from the join rather than blocking it — this is what lets
          Fig. 1's conditional branches (PCR screening vs. miniprep)
          rejoin downstream.  Only when *every* incoming path is dead
          does the task become unreachable;
        * a satisfied source whose transition **condition** evaluates
          false is likewise a dead path (the branch was not taken);
        * otherwise the task waits until each live source is satisfied
          (completed, or active with its default number of instances
          completed).
        """
        incoming = pattern.incoming(taskdef.name)
        if not incoming:
            return "eligible"
        task_rows = {
            self._task_name(row): row for row in self._task_rows(
                workflow["workflow_id"]
            )
        }
        live_sources = 0
        pending = False
        for source_name in pattern.control_sources(taskdef.name):
            source_row = task_rows[source_name]
            source_state = source_row["state"]
            # A loop back-edge (the source lies downstream of this task)
            # may *enable* the task when satisfied, but never blocks it —
            # otherwise "improve ⇄ check" style iterative loops deadlock
            # on first entry.
            back_edge = pattern.is_back_edge(source_name, taskdef.name)
            if source_state == TaskState.ABORTED.value:
                if back_edge:
                    continue  # a failed later iteration is a dead path
                return "unreachable"
            if source_state == TaskState.UNREACHABLE.value:
                continue  # dead path
            source_def = pattern.task(source_name)
            if not self._source_satisfied(source_row, source_def, source_state):
                if back_edge:
                    continue  # an un-run loop source never blocks
                pending = True
                live_sources += 1
                continue
            # Source is satisfied — evaluate this source's conditions now
            # ("once the destination task is considered for execution").
            branch_taken = True
            for transition in pattern.incoming(taskdef.name):
                if transition.source != source_name:
                    continue
                if transition.parsed_condition is None:
                    continue
                if not self._condition_holds(
                    workflow, source_row, source_def, transition.parsed_condition
                ):
                    branch_taken = False
                    break
            if branch_taken:
                live_sources += 1
            # A satisfied source whose condition failed is a dead path.
        if live_sources == 0:
            return "unreachable"
        if pending:
            return "pending"
        return "eligible"

    def _source_satisfied(
        self,
        source_row: dict[str, Any],
        source_def: TaskDef,
        source_state: str,
    ) -> bool:
        if source_state == TaskState.COMPLETED.value:
            return True
        if source_state != TaskState.ACTIVE.value:
            return False
        if source_def.is_subworkflow:
            return False  # a sub-workflow counts only once completed
        completed = self._count_instances(
            source_row["wftask_id"], InstanceState.COMPLETED.value
        )
        return completed >= source_def.default_instances

    def _condition_holds(
        self,
        workflow: dict[str, Any],
        source_row: dict[str, Any],
        source_def: TaskDef,
        condition: Condition,
    ) -> bool:
        context = self._condition_context(workflow, source_row, source_def)
        try:
            return condition.evaluate(context)
        except ConditionError as error:
            # Errors never route silently: record and treat as false.
            self.events.emit(
                "condition.error",
                workflow_id=workflow["workflow_id"],
                condition=condition.source,
                error=str(error),
            )
            return False

    # -- eligible → active (authorization permitting) ---------------------

    def _try_activate(
        self,
        workflow: dict[str, Any],
        task_row: dict[str, Any],
        taskdef: TaskDef,
    ) -> bool:
        if taskdef.requires_authorization:
            verdict = self._authorization_verdict(workflow, task_row, taskdef)
            if verdict == "denied":
                self._apply_task_event(task_row, Event.DENY)
                return True
            if verdict != "granted":
                return False
        self._apply_task_event(task_row, Event.ACTIVATE)
        if taskdef.is_subworkflow:
            self._start_child_workflow(workflow, task_row, taskdef)
        else:
            self._spawn_instances(
                workflow, task_row, taskdef, taskdef.default_instances
            )
        return True

    def _authorization_verdict(
        self,
        workflow: dict[str, Any],
        task_row: dict[str, Any],
        taskdef: TaskDef,
    ) -> str:
        """``granted`` / ``denied`` / ``pending`` (creating the request)."""
        decisions = self.db.select(
            "WFAuthorization",
            EQ("wftask_id", task_row["wftask_id"]),
            order_by="auth_id",
        )
        live = [d for d in decisions if d["status"] != "cancelled"]
        if live:
            return live[-1]["status"]
        authorizer = self._choose_authorizer(taskdef)
        request = self.db.insert(
            "WFAuthorization",
            {
                "workflow_id": workflow["workflow_id"],
                "wftask_id": task_row["wftask_id"],
                "kind": "final"
                if self._is_final(workflow, taskdef)
                else "start",
                "status": "pending",
                "agent_id": authorizer["agent_id"] if authorizer else None,
            },
        )
        self.events.emit(
            "authorization.requested",
            auth_id=request["auth_id"],
            workflow_id=workflow["workflow_id"],
            task=taskdef.name,
            agent=authorizer["name"] if authorizer else None,
        )
        self.dispatcher.notify_authorization(
            authorizer,
            request["auth_id"],
            workflow,
            taskdef.name,
            request["kind"],
        )
        return "pending"

    def _choose_authorizer(self, taskdef: TaskDef) -> dict | None:
        """A human agent for the task's type, else any human agent."""
        if taskdef.experiment_type is not None:
            for agent in agents_for_type(self.db, taskdef.experiment_type):
                if agent["kind"] == "human":
                    return agent
        humans = self.db.select("Agent", EQ("kind", "human"), order_by="agent_id")
        return humans[0] if humans else None

    def _is_final(self, workflow: dict[str, Any], taskdef: TaskDef) -> bool:
        pattern = self._pattern(workflow["pattern_id"])
        return taskdef.name in pattern.final_tasks()

    @_synchronized
    def respond_authorization(
        self, auth_id: int, approve: bool, decided_by: str = ""
    ) -> None:
        """Record an authorization decision and advance the workflow."""
        request = self.db.get("WFAuthorization", auth_id)
        if request is None:
            raise AuthorizationError(f"no authorization request {auth_id}")
        if request["status"] != "pending":
            raise AuthorizationError(
                f"authorization {auth_id} already {request['status']}"
            )
        self.db.update(
            "WFAuthorization",
            EQ("auth_id", auth_id),
            {
                "status": "granted" if approve else "denied",
                "decided_by": decided_by,
            },
        )
        self.events.emit(
            "authorization.decided",
            auth_id=auth_id,
            workflow_id=request["workflow_id"],
            wftask_id=request["wftask_id"],
            approved=approve,
            decided_by=decided_by,
        )
        self.check_workflow(request["workflow_id"])

    def pending_authorizations(
        self, workflow_id: int | None = None
    ) -> list[dict[str, Any]]:
        """All authorization requests awaiting a decision."""
        predicate = EQ("status", "pending")
        if workflow_id is not None:
            predicate = AND(predicate, EQ("workflow_id", workflow_id))
        return self.db.select("WFAuthorization", predicate, order_by="auth_id")

    # -- sub-workflows -----------------------------------------------------

    def _start_child_workflow(
        self,
        workflow: dict[str, Any],
        task_row: dict[str, Any],
        taskdef: TaskDef,
    ) -> None:
        child = self.start_workflow(
            taskdef.subworkflow,
            name=f"{workflow['name']}/{taskdef.name}",
            project_id=workflow["project_id"],
            _parent=(workflow["workflow_id"], task_row["wftask_id"]),
        )
        self.db.update(
            "WFTask",
            EQ("wftask_id", task_row["wftask_id"]),
            {"child_workflow_id": child["workflow_id"]},
        )

    def _notify_parent(self, workflow: dict[str, Any]) -> None:
        """Propagate a finished child workflow into its parent task."""
        parent_wftask_id = workflow["parent_wftask_id"]
        if parent_wftask_id is None:
            return
        parent_task = self.db.get("WFTask", parent_wftask_id)
        if parent_task is None or parent_task["state"] != TaskState.ACTIVE.value:
            return
        event = (
            Event.COMPLETE
            if workflow["status"] == "completed"
            else Event.ABORT
        )
        self._apply_task_event(parent_task, event)
        self.check_workflow(workflow["parent_workflow_id"])

    # -- instances ---------------------------------------------------------

    def _spawn_instances(
        self,
        workflow: dict[str, Any],
        task_row: dict[str, Any],
        taskdef: TaskDef,
        count: int,
    ) -> list[dict[str, Any]]:
        experiments = []
        for __ in range(count):
            experiments.append(
                self._create_and_delegate(workflow, task_row, taskdef)
            )
        return experiments

    def _create_and_delegate(
        self,
        workflow: dict[str, Any],
        task_row: dict[str, Any],
        taskdef: TaskDef,
    ) -> dict[str, Any]:
        agent = self.dispatcher.choose_agent(taskdef.experiment_type)
        with self.db.transaction():
            experiment = self.db.insert(
                "Experiment",
                {
                    "project_id": workflow["project_id"],
                    "type_name": taskdef.experiment_type,
                    "status": "new",
                    "workflow_id": workflow["workflow_id"],
                    "wftask_id": task_row["wftask_id"],
                    "agent_id": agent["agent_id"] if agent else None,
                    "wf_state": InstanceState.CREATED.value,
                    "wf_success": None,
                    "wf_current": True,
                },
            )
            type_table = self._type_table(taskdef.experiment_type)
            if type_table is not None:
                self.db.insert(
                    type_table, {"experiment_id": experiment["experiment_id"]}
                )
        self.events.emit(
            "instance.created",
            workflow_id=workflow["workflow_id"],
            task=taskdef.name,
            experiment_id=experiment["experiment_id"],
            agent=agent["name"] if agent else None,
        )
        experiment = self._apply_instance_event(experiment, Event.DELEGATE)
        if agent is not None:
            inputs = self.collect_available_inputs(
                workflow["workflow_id"], taskdef.name
            )
            self.dispatcher.dispatch_instance(
                agent, workflow, taskdef.name, experiment, inputs
            )
        return experiment

    @_synchronized
    def spawn_instance(self, workflow_id: int, task_name: str) -> dict[str, Any]:
        """User-requested additional instance for an active task (§4.2)."""
        workflow, task_row, taskdef = self._resolve_task(workflow_id, task_name)
        if task_row["state"] != TaskState.ACTIVE.value:
            raise InstanceError(
                f"task {task_name!r} is {task_row['state']}, instances can "
                "only be added while it is active"
            )
        if taskdef.is_subworkflow:
            raise InstanceError(
                f"task {task_name!r} is a sub-workflow and has no instances"
            )
        return self._create_and_delegate(workflow, task_row, taskdef)

    @_synchronized
    def instance_started(self, experiment_id: int) -> None:
        """An agent reported that it began executing the instance.

        Asynchronous messaging means a start notification can arrive
        after the instance was decided another way (a human entered the
        results through the web interface first, or the task was
        restarted).  Stale notifications are recorded and ignored — the
        queue must never wedge on them.
        """
        experiment = self.db.get("Experiment", experiment_id)
        if experiment is None or experiment["wftask_id"] is None:
            raise InstanceError(
                f"experiment {experiment_id} is not a workflow task instance"
            )
        if (
            experiment["wf_state"] != InstanceState.DELEGATED.value
            or not experiment["wf_current"]
        ):
            self.events.emit(
                "message.stale",
                experiment_id=experiment_id,
                message_kind="task.started",
                state=experiment["wf_state"],
            )
            return
        self._apply_instance_event(experiment, Event.START)

    @_synchronized
    def complete_instance(
        self,
        experiment_id: int,
        success: bool,
        outputs: Iterable[dict[str, Any]] = (),
        chosen_input_ids: Iterable[int] = (),
        result_values: dict[str, Any] | None = None,
    ) -> None:
        """Record an instance's results and its explicit success flag.

        "Success of an instance must now be specified explicitly by the
        executor of the task instance" — a successful instance completes,
        an unsuccessful one aborts.  ``outputs`` creates samples (plus
        their type rows and ``ExperimentIO`` output links);
        ``chosen_input_ids`` records which forwarded source outputs this
        instance consumed; ``result_values`` updates the experiment-type
        row.
        """
        experiment = self.db.get("Experiment", experiment_id)
        if experiment is None or experiment["wftask_id"] is None:
            raise InstanceError(
                f"experiment {experiment_id} is not a workflow task instance"
            )
        if not experiment["wf_current"] or experiment["wf_state"] in (
            InstanceState.COMPLETED.value,
            InstanceState.ABORTED.value,
        ):
            # A late result for an instance decided another way (human
            # raced the robot, or a restart superseded it).
            self.events.emit(
                "message.stale",
                experiment_id=experiment_id,
                message_kind="task.result",
                state=experiment["wf_state"],
            )
            return
        if experiment["wf_state"] == InstanceState.DELEGATED.value:
            experiment = self._apply_instance_event(experiment, Event.START)
        if experiment["wf_state"] != InstanceState.ACTIVE.value:
            raise InstanceError(
                f"instance {experiment_id} is {experiment['wf_state']!r}, "
                "cannot record results"
            )
        with self.db.transaction():
            for sample_id in chosen_input_ids:
                self._link_io(experiment, sample_id, "input")
            for output in outputs:
                sample_id = self._create_output_sample(experiment, output)
                self._link_io(experiment, sample_id, "output")
            if result_values:
                self._update_result_values(experiment, result_values)
            self.db.update(
                "Experiment",
                EQ("experiment_id", experiment_id),
                {"wf_success": success, "status": "done"},
            )
        experiment = self.db.get("Experiment", experiment_id)
        self._apply_instance_event(
            experiment, Event.COMPLETE if success else Event.ABORT
        )
        self.events.emit(
            "instance.result",
            experiment_id=experiment_id,
            workflow_id=experiment["workflow_id"],
            wftask_id=experiment["wftask_id"],
            agent_id=experiment["agent_id"],
            success=success,
        )
        self._after_instance_decided(experiment)

    @_synchronized
    def abort_instance(self, experiment_id: int, _propagate: bool = True) -> None:
        """Abort one instance (user decision or agent failure).

        ``_propagate=False`` is used internally during restarts, where the
        caller re-evaluates the workflow itself once every instance of
        the restarted tasks has been dealt with.
        """
        experiment = self._require_instance(experiment_id)
        if experiment["wf_state"] not in (
            InstanceState.CREATED.value,
            InstanceState.DELEGATED.value,
            InstanceState.ACTIVE.value,
        ):
            raise InstanceError(
                f"instance {experiment_id} is already "
                f"{experiment['wf_state']!r}"
            )
        self.db.update(
            "Experiment",
            EQ("experiment_id", experiment_id),
            {"wf_success": False},
        )
        experiment = self.db.get("Experiment", experiment_id)
        self._apply_instance_event(experiment, Event.ABORT)
        if experiment["agent_id"] is not None:
            agent = self.db.get("Agent", experiment["agent_id"])
            if agent is not None:
                self.dispatcher.send_abort(agent, experiment_id)
        if _propagate:
            self._after_instance_decided(self.db.get("Experiment", experiment_id))

    def _after_instance_decided(self, experiment: dict[str, Any]) -> None:
        task_row = self.db.get("WFTask", experiment["wftask_id"])
        workflow = self.db.get("Workflow", experiment["workflow_id"])
        if task_row is None or workflow is None:  # pragma: no cover
            return
        taskdef = self._pattern(workflow["pattern_id"]).task(
            self._task_name(task_row)
        )
        self._refresh_active(workflow, task_row, taskdef)
        self.check_workflow(workflow["workflow_id"])

    def _refresh_active(
        self,
        workflow: dict[str, Any],
        task_row: dict[str, Any],
        taskdef: TaskDef,
    ) -> bool:
        """Complete/abort an active task once all instances are decided."""
        if task_row["state"] != TaskState.ACTIVE.value:
            return False
        if taskdef.is_subworkflow:
            return False  # decided via _notify_parent
        instances = self._current_instances(task_row["wftask_id"])
        if not instances:
            return False
        undecided = [
            row
            for row in instances
            if row["wf_state"]
            not in (InstanceState.COMPLETED.value, InstanceState.ABORTED.value)
        ]
        if undecided:
            return False
        completed = [
            row
            for row in instances
            if row["wf_state"] == InstanceState.COMPLETED.value
        ]
        self._apply_task_event(
            task_row, Event.COMPLETE if completed else Event.ABORT
        )
        return True

    @_synchronized
    def cancel_workflow(self, workflow_id: int, by: str = "") -> None:
        """Abort a running workflow as a whole.

        Undecided instances are aborted (with agent notifications), live
        tasks are aborted, pending authorizations cancelled, and the
        workflow is marked aborted.  Individual tasks can still be
        restarted later — backtracking reopens the workflow.
        """
        workflow = self.db.get("Workflow", workflow_id)
        if workflow is None:
            raise InstanceError(f"no workflow with id {workflow_id}")
        if workflow["status"] != "running":
            raise InstanceError(
                f"workflow {workflow_id} is already {workflow['status']}"
            )
        for task_row in self._task_rows(workflow_id):
            state = task_row["state"]
            if state == TaskState.ACTIVE.value:
                for experiment in self._current_instances(task_row["wftask_id"]):
                    if experiment["wf_state"] in (
                        InstanceState.CREATED.value,
                        InstanceState.DELEGATED.value,
                        InstanceState.ACTIVE.value,
                    ):
                        self.abort_instance(
                            experiment["experiment_id"], _propagate=False
                        )
                task_row = self.db.get("WFTask", task_row["wftask_id"])
                if task_row["state"] == TaskState.ACTIVE.value:
                    self._apply_task_event(task_row, Event.ABORT)
                # A cancelled sub-workflow task cancels its child too.
                if task_row["child_workflow_id"] is not None:
                    child = self.db.get(
                        "Workflow", task_row["child_workflow_id"]
                    )
                    if child is not None and child["status"] == "running":
                        self.cancel_workflow(child["workflow_id"], by=by)
            elif state == TaskState.ELIGIBLE.value:
                self._apply_task_event(task_row, Event.DENY)
        self.db.update(
            "WFAuthorization",
            AND(EQ("workflow_id", workflow_id), EQ("status", "pending")),
            {"status": "cancelled", "decided_by": by},
        )
        self.db.update(
            "Workflow", EQ("workflow_id", workflow_id), {"status": "aborted"}
        )
        self.events.emit(
            "workflow.cancelled", workflow_id=workflow_id, by=by
        )

    # -- backtracking --------------------------------------------------------

    @_synchronized
    def restart_task(
        self,
        workflow_id: int,
        task_name: str,
        cascade: bool = True,
        by: str = "",
    ) -> None:
        """Backtrack: re-run ``task_name`` (and, by default, everything
        downstream of it).

        "Restarting sends a task back to the eligible state, and the
        eligibility requirements are reevaluated" — here the task returns
        to ``created`` and the next :meth:`check_workflow` pass
        re-derives eligible/unreachable, which is the same observable
        semantics with one fewer transient state.
        """
        workflow, task_row, __ = self._resolve_task(workflow_id, task_name)
        pattern = self._pattern(workflow["pattern_id"])
        to_restart = [task_name]
        if cascade:
            seen = {task_name}
            frontier = [task_name]
            while frontier:
                current = frontier.pop()
                for downstream in pattern.control_targets(current):
                    if downstream not in seen:
                        seen.add(downstream)
                        frontier.append(downstream)
                        to_restart.append(downstream)
        task_rows = {
            self._task_name(row): row
            for row in self._task_rows(workflow_id)
        }
        for name in to_restart:
            self._restart_single(workflow, task_rows[name], name)
        self.events.emit(
            "task.restarted",
            workflow_id=workflow_id,
            task=task_name,
            by=by,
            cascade=[n for n in to_restart if n != task_name],
        )
        self.check_workflow(workflow_id)

    def _restart_single(
        self, workflow: dict[str, Any], task_row: dict[str, Any], name: str
    ) -> None:
        state = task_row["state"]
        if state == TaskState.CREATED.value:
            return  # nothing to reset
        if state == TaskState.ACTIVE.value:
            # Abort undecided instances before superseding them.
            for experiment in self._current_instances(task_row["wftask_id"]):
                if experiment["wf_state"] in (
                    InstanceState.CREATED.value,
                    InstanceState.DELEGATED.value,
                    InstanceState.ACTIVE.value,
                ):
                    self.abort_instance(
                        experiment["experiment_id"], _propagate=False
                    )
            task_row = self.db.get("WFTask", task_row["wftask_id"])
            if task_row["state"] == TaskState.ACTIVE.value:
                self._apply_task_event(task_row, Event.ABORT)
                task_row = self.db.get("WFTask", task_row["wftask_id"])
        # Supersede this activation's instances — kept as history.
        self.db.update(
            "Experiment",
            AND(
                EQ("wftask_id", task_row["wftask_id"]),
                EQ("wf_current", True),
            ),
            {"wf_current": False},
        )
        # Cancel stale authorization decisions: a fresh run needs fresh
        # approval.
        self.db.update(
            "WFAuthorization",
            AND(
                EQ("wftask_id", task_row["wftask_id"]),
                IN("status", ["pending", "granted", "denied"]),
            ),
            {"status": "cancelled"},
        )
        if task_row["state"] != TaskState.CREATED.value:
            self._apply_task_event(task_row, Event.RESTART)
        # Sub-workflow children of a restarted task are detached (and
        # cancelled if still running — they must not keep consuming
        # agents for a superseded activation); a new child is started on
        # re-activation.
        if task_row["child_workflow_id"] is not None:
            child = self.db.get("Workflow", task_row["child_workflow_id"])
            if child is not None and child["status"] == "running":
                self.cancel_workflow(child["workflow_id"], by="restart")
            self.db.update(
                "WFTask",
                EQ("wftask_id", task_row["wftask_id"]),
                {"child_workflow_id": None},
            )
        # A restart can re-open a finished workflow.
        if workflow["status"] != "running":
            self.db.update(
                "Workflow",
                EQ("workflow_id", workflow["workflow_id"]),
                {"status": "running"},
            )
            workflow["status"] = "running"

    # ------------------------------------------------------------------
    # Data flow: forwarding outputs, collecting inputs
    # ------------------------------------------------------------------

    @_synchronized
    def collect_available_inputs(
        self, workflow_id: int, task_name: str
    ) -> list[dict[str, Any]]:
        """Candidate input samples for instances of ``task_name``.

        Outputs of all successfully completed current instances of each
        data-transition source, plus free stock samples (samples no
        experiment produced) for required input types no transition
        covers — "tasks can have input objects not being produced by
        source tasks".
        """
        workflow, __, taskdef = self._resolve_task(workflow_id, task_name)
        pattern = self._pattern(workflow["pattern_id"])
        task_rows = {
            self._task_name(row): row for row in self._task_rows(workflow_id)
        }
        inputs: list[dict[str, Any]] = []
        covered_types: set[str] = set()
        for transition in pattern.incoming(task_name):
            if not transition.is_data:
                continue
            covered_types.add(transition.sample_type)
            source_row = task_rows[transition.source]
            source_def = pattern.task(transition.source)
            for experiment in self._successful_experiments(
                workflow, source_row, source_def
            ):
                inputs.extend(
                    self._output_samples(
                        experiment["experiment_id"], transition.sample_type
                    )
                )
        if taskdef.experiment_type is not None:
            for io_row in self.db.select(
                "ExperimentTypeIO",
                AND(
                    EQ("experiment_type", taskdef.experiment_type),
                    EQ("direction", "input"),
                ),
            ):
                sample_type = io_row["sample_type"]
                if sample_type in covered_types:
                    continue
                inputs.extend(self._stock_samples(sample_type))
        # Inputs reachable through the parent's sub-workflow task.
        if workflow["parent_workflow_id"] is not None and (
            task_name in pattern.initial_tasks()
        ):
            parent_task = self.db.get("WFTask", workflow["parent_wftask_id"])
            parent_workflow = self.db.get(
                "Workflow", workflow["parent_workflow_id"]
            )
            if parent_task is not None and parent_workflow is not None:
                parent_pattern = self._pattern(parent_workflow["pattern_id"])
                inputs.extend(
                    self.collect_available_inputs(
                        parent_workflow["workflow_id"],
                        self._task_name(parent_task),
                    )
                )
        deduplicated: dict[int, dict[str, Any]] = {}
        for sample in inputs:
            deduplicated[sample["sample_id"]] = sample
        return list(deduplicated.values())

    def _successful_experiments(
        self,
        workflow: dict[str, Any],
        source_row: dict[str, Any],
        source_def: TaskDef,
    ) -> list[dict[str, Any]]:
        """Successfully completed current instances of a source task.

        For sub-workflow tasks, the successful instances of the child
        workflow's final tasks stand in for the task's own instances.
        """
        if not source_def.is_subworkflow:
            return [
                row
                for row in self._current_instances(source_row["wftask_id"])
                if row["wf_state"] == InstanceState.COMPLETED.value
            ]
        child_id = source_row["child_workflow_id"]
        if child_id is None:
            return []
        child = self.db.get("Workflow", child_id)
        if child is None:
            return []
        child_pattern = self._pattern(child["pattern_id"])
        child_tasks = {
            self._task_name(row): row for row in self._task_rows(child_id)
        }
        experiments: list[dict[str, Any]] = []
        for final_name in child_pattern.final_tasks():
            final_def = child_pattern.task(final_name)
            experiments.extend(
                self._successful_experiments(
                    child, child_tasks[final_name], final_def
                )
            )
        return experiments

    def _output_samples(
        self, experiment_id: int, sample_type: str | None = None
    ) -> list[dict[str, Any]]:
        """Merged sample records produced by ``experiment_id``."""
        samples = []
        for io_row in self.db.select(
            "ExperimentIO", EQ("experiment_id", experiment_id)
        ):
            etio = self.db.get("ExperimentTypeIO", io_row["etio_id"])
            if etio is None or etio["direction"] != "output":
                continue
            if sample_type is not None and etio["sample_type"] != sample_type:
                continue
            sample = self._merged_sample(io_row["sample_id"])
            if sample is not None:
                samples.append(sample)
        return samples

    def _stock_samples(self, sample_type: str) -> list[dict[str, Any]]:
        """Samples of ``sample_type`` that no experiment produced."""
        produced: set[int] = set()
        for io_row in self.db.select("ExperimentIO"):
            etio = self.db.get("ExperimentTypeIO", io_row["etio_id"])
            if etio is not None and etio["direction"] == "output":
                produced.add(io_row["sample_id"])
        stock = []
        for sample in self.db.select("Sample", EQ("type_name", sample_type)):
            if sample["sample_id"] not in produced:
                merged = self._merged_sample(sample["sample_id"])
                if merged is not None:
                    stock.append(merged)
        return stock

    def _create_output_sample(
        self, experiment: dict[str, Any], output: dict[str, Any]
    ) -> int:
        sample_type = output.get("sample_type")
        if not sample_type:
            raise InstanceError("output sample needs a sample_type")
        sample = self.db.insert(
            "Sample",
            {
                "type_name": sample_type,
                "name": output.get("name"),
                "quality": output.get("quality"),
                "description": output.get("description"),
            },
        )
        type_table = self._sample_type_table(sample_type)
        if type_table is not None:
            values = dict(output.get("values", {}))
            values["sample_id"] = sample["sample_id"]
            self.db.insert(type_table, values)
        return sample["sample_id"]

    def _link_io(
        self, experiment: dict[str, Any], sample_id: int, direction: str
    ) -> None:
        sample = self.db.get("Sample", sample_id)
        if sample is None:
            raise InstanceError(f"no sample with id {sample_id}")
        etio = self.db.select_one(
            "ExperimentTypeIO",
            AND(
                EQ("experiment_type", experiment["type_name"]),
                EQ("sample_type", sample["type_name"]),
                EQ("direction", direction),
            ),
        )
        if etio is None:
            raise InstanceError(
                f"experiment type {experiment['type_name']!r} does not "
                f"declare {sample['type_name']!r} as an {direction}"
            )
        self.db.insert(
            "ExperimentIO",
            {
                "experiment_id": experiment["experiment_id"],
                "sample_id": sample_id,
                "etio_id": etio["etio_id"],
            },
        )

    def _update_result_values(
        self, experiment: dict[str, Any], result_values: dict[str, Any]
    ) -> None:
        type_table = self._type_table(experiment["type_name"])
        experiment_schema = self.db.schema("Experiment")
        experiment_changes = {}
        child_changes = {}
        for name, value in result_values.items():
            if name in EXPERIMENT_EXTENSION_COLUMNS:
                raise InstanceError(
                    f"workflow column {name!r} cannot be set through results"
                )
            if type_table is not None and self.db.schema(type_table).has_column(
                name
            ):
                child_changes[name] = value
            elif experiment_schema.has_column(name):
                experiment_changes[name] = value
            else:
                raise InstanceError(
                    f"no column {name!r} on {experiment['type_name']!r} "
                    "experiments"
                )
        key = EQ("experiment_id", experiment["experiment_id"])
        if child_changes:
            self.db.update(type_table, key, child_changes)
        if experiment_changes:
            self.db.update("Experiment", key, experiment_changes)

    # ------------------------------------------------------------------
    # Condition contexts
    # ------------------------------------------------------------------

    def _condition_context(
        self,
        workflow: dict[str, Any],
        source_row: dict[str, Any],
        source_def: TaskDef,
    ) -> dict[str, Any]:
        """The namespace a transition condition sees.

        ``experiment.*`` — the merged row of the latest successful source
        instance; ``output.*`` — the merged attributes of that instance's
        output samples (later outputs win on clashes); ``task.*`` —
        instance counts of the source task.
        """
        experiments = self._successful_experiments(
            workflow, source_row, source_def
        )
        latest: dict[str, Any] = {}
        outputs: dict[str, Any] = {}
        if experiments:
            latest_row = max(experiments, key=lambda row: row["experiment_id"])
            latest = self._merged_experiment(latest_row["experiment_id"]) or {}
            for sample in self._output_samples(latest_row["experiment_id"]):
                outputs.update(sample)
        if source_def.is_subworkflow:
            instances = experiments
            completed = len(experiments)
            aborted = 0
        else:
            instances = self._current_instances(source_row["wftask_id"])
            completed = sum(
                1
                for row in instances
                if row["wf_state"] == InstanceState.COMPLETED.value
            )
            aborted = sum(
                1
                for row in instances
                if row["wf_state"] == InstanceState.ABORTED.value
            )
        return {
            "experiment": latest,
            "output": outputs,
            "task": {
                "completed_instances": completed,
                "aborted_instances": aborted,
                "total_instances": len(instances),
            },
        }

    # ------------------------------------------------------------------
    # Web-layer hooks (used by the WorkflowFilter)
    # ------------------------------------------------------------------

    @_synchronized
    def validate_user_action(
        self, table: str, action: str, payload: dict[str, Any]
    ) -> tuple[bool, str]:
        """Preprocessing verdict for a user request (Fig. 7a).

        Returns ``(allowed, reason)``.  Denied actions are those that
        would corrupt workflow state if they reached the original
        servlet: direct writes to the engine-owned workflow columns,
        or destruction of experiments belonging to a running workflow.
        """
        if action in ("update", "insert"):
            touched = set(payload) & set(EXPERIMENT_EXTENSION_COLUMNS)
            if touched and self._is_experiment_table(table):
                return (
                    False,
                    f"columns {sorted(touched)} are managed by the workflow "
                    "engine",
                )
        if action == "delete" and self._is_experiment_table(table):
            for experiment in self._experiments_matching(table, payload):
                if experiment.get("workflow_id") is not None:
                    workflow = self.db.get(
                        "Workflow", experiment["workflow_id"]
                    )
                    if workflow is not None and workflow["status"] == "running":
                        return (
                            False,
                            f"experiment {experiment['experiment_id']} belongs "
                            f"to running workflow {workflow['workflow_id']}",
                        )
        return True, ""

    @_synchronized
    def on_data_change(self, table: str, attributes: dict[str, Any]) -> list:
        """Postprocessing hook (Fig. 7c): react to a successful change.

        Re-checks every running workflow that could be affected and
        returns the events raised, which the filter renders as notices.
        """
        before = self.events.last_sequence
        for workflow in self.list_workflows(status="running"):
            self.check_workflow(workflow["workflow_id"])
        return self.events.since(before)

    def _is_experiment_table(self, table: str) -> bool:
        if table == "Experiment":
            return True
        return (
            self.db.select_one("ExperimentType", EQ("table_name", table))
            is not None
        )

    def _experiments_matching(
        self, table: str, criteria: dict[str, Any]
    ) -> list[dict[str, Any]]:
        candidates = (
            self.db.select_with_parent(table)
            if table != "Experiment"
            else self.db.select("Experiment")
        )
        if not criteria:
            return candidates
        return [
            row
            for row in candidates
            if all(row.get(column) == value for column, value in criteria.items())
        ]

    # ------------------------------------------------------------------
    # Workflow status
    # ------------------------------------------------------------------

    def _update_workflow_status(
        self, workflow_id: int, pattern: WorkflowPattern
    ) -> None:
        workflow = self.db.get("Workflow", workflow_id)
        if workflow is None or workflow["status"] != "running":
            return
        final_names = pattern.final_tasks()
        task_rows = {
            self._task_name(row): row for row in self._task_rows(workflow_id)
        }
        final_states = [task_rows[name]["state"] for name in final_names]
        decided = all(
            state
            in (
                TaskState.COMPLETED.value,
                TaskState.ABORTED.value,
                TaskState.UNREACHABLE.value,
            )
            for state in final_states
        )
        if not decided:
            return
        if any(state == TaskState.COMPLETED.value for state in final_states):
            new_status = "completed"
        else:
            new_status = "aborted"
        self.db.update(
            "Workflow", EQ("workflow_id", workflow_id), {"status": new_status}
        )
        self.events.emit(
            "workflow.finished", workflow_id=workflow_id, status=new_status
        )
        workflow = self.db.get("Workflow", workflow_id)
        self._notify_parent(workflow)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _pattern(self, pattern_id: int) -> WorkflowPattern:
        pattern = self.specs.pattern_by_id(pattern_id)
        if pattern is None:
            raise SpecificationError(f"no pattern with id {pattern_id}")
        return pattern

    def _task_rows(self, workflow_id: int) -> list[dict[str, Any]]:
        return self.db.select(
            "WFTask", EQ("workflow_id", workflow_id), order_by="wftask_id"
        )

    def _wfp_task(self, wfp_task_id: int) -> dict[str, Any]:
        row = self.specs.wfp_task(wfp_task_id)
        if row is None:
            raise SpecificationError(f"no WFPTask with id {wfp_task_id}")
        return row

    def _task_name(self, task_row: dict[str, Any]) -> str:
        return self._wfp_task(task_row["wfp_task_id"])["name"]

    def _resolve_task(
        self, workflow_id: int, task_name: str
    ) -> tuple[dict[str, Any], dict[str, Any], TaskDef]:
        workflow = self.db.get("Workflow", workflow_id)
        if workflow is None:
            raise InstanceError(f"no workflow with id {workflow_id}")
        pattern = self._pattern(workflow["pattern_id"])
        taskdef = pattern.task(task_name)
        for task_row in self._task_rows(workflow_id):
            if self._task_name(task_row) == task_name:
                return workflow, task_row, taskdef
        raise InstanceError(  # pragma: no cover - rows created with workflow
            f"workflow {workflow_id} has no task row for {task_name!r}"
        )

    def _current_instances(self, wftask_id: int) -> list[dict[str, Any]]:
        return self.db.select(
            "Experiment",
            AND(EQ("wftask_id", wftask_id), EQ("wf_current", True)),
            order_by="experiment_id",
        )

    def _count_instances(self, wftask_id: int, state: str) -> int:
        return sum(
            1
            for row in self._current_instances(wftask_id)
            if row["wf_state"] == state
        )

    def _require_instance(self, experiment_id: int) -> dict[str, Any]:
        experiment = self.db.get("Experiment", experiment_id)
        if experiment is None:
            raise InstanceError(f"no experiment with id {experiment_id}")
        if experiment["wftask_id"] is None:
            raise InstanceError(
                f"experiment {experiment_id} is not a workflow task instance"
            )
        if not experiment["wf_current"]:
            raise InstanceError(
                f"experiment {experiment_id} belongs to a superseded "
                "task activation"
            )
        return experiment

    def _apply_task_event(
        self, task_row: dict[str, Any], event: Event
    ) -> dict[str, Any]:
        machine = task_machine(task_row["state"])
        new_state = machine.apply(event)
        self.db.update(
            "WFTask",
            EQ("wftask_id", task_row["wftask_id"]),
            {"state": new_state.value if hasattr(new_state, "value") else new_state},
        )
        self.events.emit(
            "task.state",
            workflow_id=task_row["workflow_id"],
            wftask_id=task_row["wftask_id"],
            task=self._task_name(task_row),
            event=str(event.value),
            state=str(
                new_state.value if hasattr(new_state, "value") else new_state
            ),
        )
        return self.db.get("WFTask", task_row["wftask_id"])

    def _apply_instance_event(
        self, experiment: dict[str, Any], event: Event
    ) -> dict[str, Any]:
        machine = instance_machine(experiment["wf_state"])
        new_state = machine.apply(event)
        state_value = (
            new_state.value if hasattr(new_state, "value") else new_state
        )
        self.db.update(
            "Experiment",
            EQ("experiment_id", experiment["experiment_id"]),
            {"wf_state": state_value},
        )
        self.events.emit(
            "instance.state",
            experiment_id=experiment["experiment_id"],
            workflow_id=experiment["workflow_id"],
            wftask_id=experiment["wftask_id"],
            agent_id=experiment["agent_id"],
            event=str(event.value),
            state=str(state_value),
        )
        return self.db.get("Experiment", experiment["experiment_id"])

    def _type_table(self, experiment_type: str | None) -> str | None:
        if experiment_type is None:
            return None
        return self.specs.type_table(experiment_type)

    def _sample_type_table(self, sample_type: str) -> str | None:
        return self.specs.sample_type_table(sample_type)

    def _merged_experiment(self, experiment_id: int) -> dict[str, Any] | None:
        experiment = self.db.get("Experiment", experiment_id)
        if experiment is None:
            return None
        type_table = self._type_table(experiment["type_name"])
        if type_table is None:
            return experiment
        child = self.db.get(type_table, experiment_id)
        if child is None:
            return experiment
        merged = dict(experiment)
        merged.update(child)
        return merged

    def _merged_sample(self, sample_id: int) -> dict[str, Any] | None:
        sample = self.db.get("Sample", sample_id)
        if sample is None:
            return None
        type_table = self._sample_type_table(sample["type_name"])
        if type_table is None:
            return sample
        child = self.db.get(type_table, sample_id)
        if child is None:
            return sample
        merged = dict(sample)
        merged.update(child)
        return merged
