"""Storing and loading workflow specifications and agents.

Patterns live in the ``WorkflowPattern`` / ``WFPTask`` / ``WFPTransition``
tables; ``LegalTransition`` is derived from the pattern's control flow
("LegalTransition specifies the execution order of experiment types").
Agents live in ``Agent`` with their experiment-type authorizations in
``ExpType2Agent``.

Sub-workflow patterns must be saved before the patterns that embed them,
so their ``pattern_id`` can be referenced.

:class:`PatternStore` sits on top of these tables as the engine's
write-through-invalidated specification cache: starting a workflow
instance stops re-scanning the pattern tables on every request, while a
mutation of any pattern table immediately drops the affected entries (it
subscribes to the database's write-listener feed), so the next start
observes the new definition.
"""

from __future__ import annotations

from typing import Any

from repro.core.spec import AgentSpec, TaskDef, TransitionDef, WorkflowPattern
from repro.errors import SpecificationError, UnknownAgentError
from repro.minidb.engine import Database
from repro.minidb.predicates import AND, EQ


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def save_pattern(db: Database, pattern: WorkflowPattern) -> int:
    """Persist a pattern; returns its ``pattern_id``."""
    if db.select_one("WorkflowPattern", EQ("name", pattern.name)) is not None:
        raise SpecificationError(
            f"a pattern named {pattern.name!r} is already stored"
        )
    with db.transaction():
        pattern_row = db.insert(
            "WorkflowPattern",
            {"name": pattern.name, "description": pattern.description},
        )
        pattern_id = pattern_row["pattern_id"]
        task_ids: dict[str, int] = {}
        for task in pattern.tasks.values():
            subpattern_id = None
            if task.is_subworkflow:
                child = db.select_one(
                    "WorkflowPattern", EQ("name", task.subworkflow)
                )
                if child is None:
                    raise SpecificationError(
                        f"sub-workflow {task.subworkflow!r} must be saved "
                        f"before pattern {pattern.name!r}"
                    )
                subpattern_id = child["pattern_id"]
            task_row = db.insert(
                "WFPTask",
                {
                    "pattern_id": pattern_id,
                    "name": task.name,
                    "experiment_type": task.experiment_type,
                    "subpattern_id": subpattern_id,
                    "default_instances": task.default_instances,
                    "requires_authorization": task.requires_authorization,
                    "description": task.description,
                },
            )
            task_ids[task.name] = task_row["wfp_task_id"]
        for transition in pattern.transitions:
            db.insert(
                "WFPTransition",
                {
                    "pattern_id": pattern_id,
                    "source_task_id": task_ids[transition.source],
                    "target_task_id": task_ids[transition.target],
                    "condition": transition.condition,
                    "sample_type": transition.sample_type,
                    "is_data": transition.is_data,
                },
            )
        _record_legal_transitions(db, pattern)
    return pattern_id


def _record_legal_transitions(db: Database, pattern: WorkflowPattern) -> None:
    """Derive experiment-type ordering facts from the control flow."""
    seen: set[tuple[str, str]] = set()
    for transition in pattern.transitions:
        source_task = pattern.task(transition.source)
        target_task = pattern.task(transition.target)
        if source_task.is_subworkflow or target_task.is_subworkflow:
            continue
        pair = (source_task.experiment_type, target_task.experiment_type)
        if pair in seen:
            continue
        seen.add(pair)
        existing = db.select_one(
            "LegalTransition",
            AND(EQ("source_type", pair[0]), EQ("target_type", pair[1])),
        )
        if existing is None:
            db.insert(
                "LegalTransition",
                {"source_type": pair[0], "target_type": pair[1]},
            )


def load_pattern(db: Database, name: str) -> WorkflowPattern:
    """Reconstruct a pattern from the database by name."""
    pattern_row = db.select_one("WorkflowPattern", EQ("name", name))
    if pattern_row is None:
        raise SpecificationError(f"no stored pattern named {name!r}")
    return _load_pattern_row(db, pattern_row)


def _load_pattern_row(db: Database, pattern_row: dict) -> WorkflowPattern:
    pattern = WorkflowPattern(
        name=pattern_row["name"],
        description=pattern_row["description"] or "",
    )
    task_rows = db.select(
        "WFPTask", EQ("pattern_id", pattern_row["pattern_id"]),
        order_by="wfp_task_id",
    )
    names_by_id: dict[int, str] = {}
    for row in task_rows:
        subworkflow = None
        if row["subpattern_id"] is not None:
            child = db.get("WorkflowPattern", row["subpattern_id"])
            subworkflow = child["name"] if child else None
        pattern.add_task(
            TaskDef(
                name=row["name"],
                experiment_type=row["experiment_type"],
                subworkflow=subworkflow,
                default_instances=row["default_instances"],
                requires_authorization=bool(row["requires_authorization"]),
                description=row["description"] or "",
            )
        )
        names_by_id[row["wfp_task_id"]] = row["name"]
    for row in db.select(
        "WFPTransition", EQ("pattern_id", pattern_row["pattern_id"]),
        order_by="wfp_transition_id",
    ):
        pattern.add_transition(
            TransitionDef(
                source=names_by_id[row["source_task_id"]],
                target=names_by_id[row["target_task_id"]],
                condition=row["condition"],
                sample_type=row["sample_type"],
            )
        )
    return pattern


def pattern_registry(db: Database) -> dict[str, WorkflowPattern]:
    """Load every stored pattern, keyed by name."""
    registry: dict[str, WorkflowPattern] = {}
    for row in db.select("WorkflowPattern", order_by="pattern_id"):
        registry[row["name"]] = _load_pattern_row(db, row)
    return registry


# ---------------------------------------------------------------------------
# Specification cache
# ---------------------------------------------------------------------------

#: Tables whose writes drop the pattern side of a :class:`PatternStore`.
_PATTERN_TABLES = ("WorkflowPattern", "WFPTask", "WFPTransition")


class PatternStore:
    """Cached access to workflow specification data.

    The workflow engine resolves the same specification rows on every
    request: the ``WorkflowPattern`` row and ``WFPTask`` list when
    starting an instance, compiled :class:`WorkflowPattern` objects and
    individual task rows inside every ``check_workflow`` pass, and the
    ``ExperimentType`` / ``SampleType`` table mappings when creating
    instances.  All of that is definition data that changes only when
    someone edits a pattern — so it is cached here and invalidated
    through the database's write-listener feed: any write to a pattern
    table drops the pattern caches, writes to the type tables drop the
    type-mapping caches.  Spurious invalidation (e.g. a write that a
    rollback undoes) merely costs a re-read.

    ``enabled=False`` (or flipping :attr:`enabled` later) bypasses the
    cache entirely — every call goes to the database — which gives tests
    and benchmarks an audited cache-off path with identical semantics.
    Negative lookups are never cached, so a miss cannot mask data that
    appears later.  Returned rows are copies; mutating them does not
    corrupt the cache.
    """

    def __init__(self, db: Database, enabled: bool = True) -> None:
        self.db = db
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._pattern_rows: dict[str, dict[str, Any]] = {}
        self._patterns_by_id: dict[int, WorkflowPattern] = {}
        self._task_rows: dict[int, list[dict[str, Any]]] = {}
        self._tasks_by_id: dict[int, dict[str, Any]] = {}
        self._type_tables: dict[str, str] = {}
        self._sample_type_tables: dict[str, str] = {}
        db.add_write_listener(self._on_write)

    # -- invalidation -------------------------------------------------------

    def _on_write(self, table: str) -> None:
        if table in _PATTERN_TABLES:
            self._pattern_rows.clear()
            self._patterns_by_id.clear()
            self._task_rows.clear()
            self._tasks_by_id.clear()
        elif table == "ExperimentType":
            self._type_tables.clear()
        elif table == "SampleType":
            self._sample_type_tables.clear()

    def invalidate(self) -> None:
        """Drop everything (DDL changes, test isolation)."""
        self._pattern_rows.clear()
        self._patterns_by_id.clear()
        self._task_rows.clear()
        self._tasks_by_id.clear()
        self._type_tables.clear()
        self._sample_type_tables.clear()

    def info(self) -> dict[str, int | bool]:
        """Cache effectiveness counters (for health/bench reporting)."""
        return {
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
        }

    # -- pattern lookups ----------------------------------------------------

    def pattern_row(self, name: str) -> dict[str, Any] | None:
        """The ``WorkflowPattern`` row for ``name`` (or ``None``)."""
        if self.enabled:
            cached = self._pattern_rows.get(name)
            if cached is not None:
                self.hits += 1
                return dict(cached)
            self.misses += 1
        row = self.db.select_one("WorkflowPattern", EQ("name", name))
        if self.enabled and row is not None:
            self._pattern_rows[name] = dict(row)
        return row

    def pattern_by_id(self, pattern_id: int) -> WorkflowPattern | None:
        """The compiled pattern for ``pattern_id`` (or ``None``)."""
        if self.enabled:
            cached = self._patterns_by_id.get(pattern_id)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        row = self.db.get("WorkflowPattern", pattern_id)
        if row is None:
            return None
        pattern = _load_pattern_row(self.db, row)
        if self.enabled:
            self._patterns_by_id[pattern_id] = pattern
        return pattern

    def task_rows(self, pattern_id: int) -> list[dict[str, Any]]:
        """The pattern's ``WFPTask`` rows, ordered by ``wfp_task_id``."""
        if self.enabled:
            cached = self._task_rows.get(pattern_id)
            if cached is not None:
                self.hits += 1
                return [dict(row) for row in cached]
            self.misses += 1
        rows = self.db.select(
            "WFPTask", EQ("pattern_id", pattern_id), order_by="wfp_task_id"
        )
        if self.enabled:
            self._task_rows[pattern_id] = [dict(row) for row in rows]
        return rows

    def wfp_task(self, wfp_task_id: int) -> dict[str, Any] | None:
        """One ``WFPTask`` row by id (or ``None``)."""
        if self.enabled:
            cached = self._tasks_by_id.get(wfp_task_id)
            if cached is not None:
                self.hits += 1
                return dict(cached)
            self.misses += 1
        row = self.db.get("WFPTask", wfp_task_id)
        if self.enabled and row is not None:
            self._tasks_by_id[wfp_task_id] = dict(row)
        return row

    # -- type-table lookups -------------------------------------------------

    def type_table(self, experiment_type: str) -> str | None:
        """The storage table for ``experiment_type`` (or ``None``).

        Only positive resolutions (row present *and* table exists) are
        cached, so registering a type or creating its table later is
        picked up without an explicit invalidation.
        """
        if self.enabled:
            cached = self._type_tables.get(experiment_type)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        row = self.db.select_one(
            "ExperimentType", EQ("type_name", experiment_type)
        )
        if row is None or not self.db.has_table(row["table_name"]):
            return None
        if self.enabled:
            self._type_tables[experiment_type] = row["table_name"]
        return row["table_name"]

    def sample_type_table(self, sample_type: str) -> str | None:
        """The storage table for ``sample_type`` (or ``None``)."""
        if self.enabled:
            cached = self._sample_type_tables.get(sample_type)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        row = self.db.select_one("SampleType", EQ("type_name", sample_type))
        if row is None or not self.db.has_table(row["table_name"]):
            return None
        if self.enabled:
            self._sample_type_tables[sample_type] = row["table_name"]
        return row["table_name"]


# ---------------------------------------------------------------------------
# Legal transitions
# ---------------------------------------------------------------------------


def legal_targets(db: Database, experiment_type: str) -> list[str]:
    """Experiment types that may legally follow ``experiment_type``.

    Derived from every stored pattern's control flow ("LegalTransition
    specifies the execution order of experiment types"); used by
    experiment-entry pages to suggest what comes next.
    """
    rows = db.select(
        "LegalTransition",
        EQ("source_type", experiment_type),
        order_by="legal_transition_id",
    )
    seen: list[str] = []
    for row in rows:
        if row["target_type"] not in seen:
            seen.append(row["target_type"])
    return seen


def legal_sources(db: Database, experiment_type: str) -> list[str]:
    """Experiment types that may legally precede ``experiment_type``."""
    rows = db.select(
        "LegalTransition",
        EQ("target_type", experiment_type),
        order_by="legal_transition_id",
    )
    seen: list[str] = []
    for row in rows:
        if row["source_type"] not in seen:
            seen.append(row["source_type"])
    return seen


# ---------------------------------------------------------------------------
# Dict / JSON interchange (used by the web definition interface)
# ---------------------------------------------------------------------------


def pattern_to_dict(pattern: WorkflowPattern) -> dict:
    """A JSON-friendly description of a pattern (inverse of
    :func:`pattern_from_dict`)."""
    return {
        "name": pattern.name,
        "description": pattern.description,
        "tasks": [
            {
                "name": task.name,
                "experiment_type": task.experiment_type,
                "subworkflow": task.subworkflow,
                "default_instances": task.default_instances,
                "requires_authorization": task.requires_authorization,
                "description": task.description,
            }
            for task in pattern.tasks.values()
        ],
        "transitions": [
            {
                "source": transition.source,
                "target": transition.target,
                "condition": transition.condition,
                "sample_type": transition.sample_type,
            }
            for transition in pattern.transitions
        ],
    }


def pattern_from_dict(data: dict) -> WorkflowPattern:
    """Build a (not yet validated) pattern from its dict description.

    Raises :class:`SpecificationError` on structural problems; run
    :func:`repro.core.validation.validate_pattern` (or save through the
    web interface, which does) before executing it.
    """
    if not isinstance(data, dict) or not data.get("name"):
        raise SpecificationError("pattern description needs a name")
    pattern = WorkflowPattern(
        name=str(data["name"]),
        description=str(data.get("description", "")),
    )
    for task_data in data.get("tasks", ()):
        pattern.add_task(
            TaskDef(
                name=task_data.get("name", ""),
                experiment_type=task_data.get("experiment_type"),
                subworkflow=task_data.get("subworkflow"),
                default_instances=int(task_data.get("default_instances", 1)),
                requires_authorization=bool(
                    task_data.get("requires_authorization", False)
                ),
                description=str(task_data.get("description", "")),
            )
        )
    for transition_data in data.get("transitions", ()):
        pattern.add_transition(
            TransitionDef(
                source=transition_data.get("source", ""),
                target=transition_data.get("target", ""),
                condition=transition_data.get("condition"),
                sample_type=transition_data.get("sample_type"),
            )
        )
    return pattern


# ---------------------------------------------------------------------------
# Agents
# ---------------------------------------------------------------------------


def register_agent(db: Database, spec: AgentSpec) -> dict:
    """Store an agent; returns its ``Agent`` row."""
    existing = db.select_one("Agent", EQ("name", spec.name))
    if existing is not None:
        raise SpecificationError(f"agent {spec.name!r} is already registered")
    return db.insert(
        "Agent",
        {
            "name": spec.name,
            "kind": spec.kind,
            "contact": spec.contact,
            "queue": spec.queue,
        },
    )


def authorize_agent(db: Database, agent_name: str, experiment_type: str) -> dict:
    """Record that ``agent_name`` may perform ``experiment_type``."""
    agent = db.select_one("Agent", EQ("name", agent_name))
    if agent is None:
        raise UnknownAgentError(agent_name)
    return db.insert(
        "ExpType2Agent",
        {
            "experiment_type": experiment_type,
            "agent_id": agent["agent_id"],
        },
    )


def registered_agents(db: Database) -> list[dict]:
    """Every registered agent row, in registration order.

    The health endpoint uses this to enumerate agents the database
    knows about, independent of which ones have live processes wired
    into the observability hub.
    """
    return db.select("Agent", order_by="agent_id")


def agents_for_type(db: Database, experiment_type: str) -> list[dict]:
    """Agent rows authorized for ``experiment_type`` (stable order)."""
    links = db.select(
        "ExpType2Agent", EQ("experiment_type", experiment_type),
        order_by="eta_id",
    )
    agents = []
    for link in links:
        agent = db.get("Agent", link["agent_id"])
        if agent is not None:
            agents.append(agent)
    return agents
