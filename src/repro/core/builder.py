"""A fluent builder for workflow patterns.

The builder is the recommended way to define patterns: it applies the
§4.2 rule that final tasks require authorization automatically, and runs
full validation at :meth:`build` time::

    pattern = (
        PatternBuilder("protein_creation")
        .task("pcr", experiment_type="Pcr", default_instances=2)
        .task("digestion", experiment_type="Digestion")
        .task("ligation", experiment_type="Ligation")
        .flow("pcr", "ligation")
        .flow("digestion", "ligation")
        .data("pcr", "ligation", sample_type="PcrProduct")
        .build(db=db)
    )
"""

from __future__ import annotations

from typing import Mapping

from repro.core.spec import TaskDef, TransitionDef, WorkflowPattern
from repro.core.validation import validate_pattern
from repro.minidb.engine import Database


class PatternBuilder:
    """Accumulates tasks and transitions, then validates and builds."""

    def __init__(self, name: str, description: str = "") -> None:
        self._pattern = WorkflowPattern(name=name, description=description)

    def task(
        self,
        name: str,
        experiment_type: str | None = None,
        subworkflow: str | None = None,
        default_instances: int = 1,
        requires_authorization: bool = False,
        description: str = "",
    ) -> "PatternBuilder":
        """Add a task bound to an experiment type or a sub-workflow."""
        self._pattern.add_task(
            TaskDef(
                name=name,
                experiment_type=experiment_type,
                subworkflow=subworkflow,
                default_instances=default_instances,
                requires_authorization=requires_authorization,
                description=description,
            )
        )
        return self

    def flow(
        self, source: str, target: str, condition: str | None = None
    ) -> "PatternBuilder":
        """Add a control-flow transition (optionally conditional)."""
        self._pattern.add_transition(
            TransitionDef(source=source, target=target, condition=condition)
        )
        return self

    def data(
        self,
        source: str,
        target: str,
        sample_type: str,
        condition: str | None = None,
    ) -> "PatternBuilder":
        """Add a data transition carrying ``sample_type``."""
        self._pattern.add_transition(
            TransitionDef(
                source=source,
                target=target,
                condition=condition,
                sample_type=sample_type,
            )
        )
        return self

    def build(
        self,
        db: Database | None = None,
        registry: Mapping[str, WorkflowPattern] | None = None,
    ) -> WorkflowPattern:
        """Finalise: enforce final-task authorization, validate, return.

        §4.2: "the final task of a workflow now requires authorization to
        be performed" — the builder turns the flag on rather than making
        every caller remember to.
        """
        for name in self._pattern.final_tasks():
            self._pattern.task(name).requires_authorization = True
        validate_pattern(self._pattern, db=db, registry=registry)
        return self._pattern
