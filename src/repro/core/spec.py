"""The workflow specification model (§4.1, extended per §4.2).

A :class:`WorkflowPattern` consists of tasks and transitions:

* a **task** is a place-holder for an experiment to perform — bound to an
  experiment type, or to a sub-workflow pattern (Fig. 1's *protein
  production*).  The extended model adds a *default number of instances*
  ("the number of 'parallel' instances that will be automatically started
  when this task comes up for execution") and an authorization flag;
* a **transition** defines control flow between a source and a
  destination task; "each data object passed between two tasks must be
  represented by its own (additional) transition", so data transitions
  carry the sample type that flows.  Transitions may be labelled with a
  condition, evaluated when the destination task is considered.

Agents ("the people or robots to perform tasks") are described by
:class:`AgentSpec` and mapped to experiment types when registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.conditions import Condition
from repro.errors import SpecificationError


@dataclass
class TaskDef:
    """One task of a workflow pattern."""

    name: str
    experiment_type: str | None = None
    subworkflow: str | None = None
    default_instances: int = 1
    requires_authorization: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("task name may not be empty")
        if (self.experiment_type is None) == (self.subworkflow is None):
            raise SpecificationError(
                f"task {self.name!r} must reference exactly one of an "
                "experiment type or a sub-workflow"
            )
        if self.default_instances < 1:
            raise SpecificationError(
                f"task {self.name!r}: default_instances must be >= 1"
            )
        if self.subworkflow is not None and self.default_instances != 1:
            raise SpecificationError(
                f"task {self.name!r}: sub-workflow tasks run a single "
                "child workflow instance"
            )

    @property
    def is_subworkflow(self) -> bool:
        """Whether the task encapsulates a nested workflow."""
        return self.subworkflow is not None


@dataclass
class TransitionDef:
    """One control-flow or data-flow transition."""

    source: str
    target: str
    condition: str | None = None
    sample_type: str | None = None

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise SpecificationError(
                f"self-transition on {self.source!r}: repetition is modeled "
                "with multiple task instances, not self-loops (§4.2)"
            )
        self._parsed_condition: Condition | None = None
        if self.condition is not None:
            self._parsed_condition = Condition(self.condition)

    @property
    def is_data(self) -> bool:
        """Whether this transition carries a data object."""
        return self.sample_type is not None

    @property
    def parsed_condition(self) -> Condition | None:
        return self._parsed_condition


@dataclass
class AgentSpec:
    """An external system able to perform experiments.

    ``kind`` is one of ``"human"``, ``"robot"``, ``"program"``;
    ``contact`` is the email address (humans) or endpoint description;
    ``queue`` is the message queue the agent listens on.
    """

    name: str
    kind: str
    contact: str = ""
    queue: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("human", "robot", "program"):
            raise SpecificationError(
                f"agent {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.queue is None:
            self.queue = f"agent.{self.name}"


@dataclass
class WorkflowPattern:
    """A complete workflow specification."""

    name: str
    description: str = ""
    tasks: dict[str, TaskDef] = field(default_factory=dict)
    transitions: list[TransitionDef] = field(default_factory=list)

    def add_task(self, task: TaskDef) -> None:
        if task.name in self.tasks:
            raise SpecificationError(
                f"pattern {self.name!r} already has a task {task.name!r}"
            )
        self.tasks[task.name] = task

    def add_transition(self, transition: TransitionDef) -> None:
        for endpoint in (transition.source, transition.target):
            if endpoint not in self.tasks:
                raise SpecificationError(
                    f"pattern {self.name!r}: transition references unknown "
                    f"task {endpoint!r}"
                )
        self.transitions.append(transition)

    # ------------------------------------------------------------------
    # Structure queries (used by validation and the engine)
    # ------------------------------------------------------------------

    def task(self, name: str) -> TaskDef:
        try:
            return self.tasks[name]
        except KeyError:
            raise SpecificationError(
                f"pattern {self.name!r} has no task {name!r}"
            ) from None

    def incoming(self, task: str) -> list[TransitionDef]:
        """All transitions whose target is ``task``."""
        return [t for t in self.transitions if t.target == task]

    def outgoing(self, task: str) -> list[TransitionDef]:
        """All transitions whose source is ``task``."""
        return [t for t in self.transitions if t.source == task]

    def control_sources(self, task: str) -> list[str]:
        """Distinct source tasks with any transition into ``task``."""
        seen: list[str] = []
        for transition in self.incoming(task):
            if transition.source not in seen:
                seen.append(transition.source)
        return seen

    def control_targets(self, task: str) -> list[str]:
        """Distinct target tasks reachable from ``task`` in one step."""
        seen: list[str] = []
        for transition in self.outgoing(task):
            if transition.target not in seen:
                seen.append(transition.target)
        return seen

    def initial_tasks(self) -> list[str]:
        """Tasks with no incoming transitions (workflow entry points)."""
        targets = {t.target for t in self.transitions}
        return [name for name in self.tasks if name not in targets]

    def final_tasks(self) -> list[str]:
        """Tasks with no outgoing transitions (workflow exits)."""
        sources = {t.source for t in self.transitions}
        return [name for name in self.tasks if name not in sources]

    def can_reach(self, origin: str, destination: str) -> bool:
        """Whether ``destination`` is reachable from ``origin`` along
        control flow."""
        if origin == destination:
            return True
        seen = {origin}
        frontier = [origin]
        while frontier:
            current = frontier.pop()
            for target in self.control_targets(current):
                if target == destination:
                    return True
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return False

    def depth_map(self) -> dict[str, int]:
        """Shortest control-flow distance of each task from any initial
        task (unreachable tasks get a large sentinel — validation rejects
        them anyway)."""
        depths = {name: len(self.tasks) + 1 for name in self.tasks}
        frontier = [(name, 0) for name in self.initial_tasks()]
        for name, __ in frontier:
            depths[name] = 0
        while frontier:
            current, depth = frontier.pop(0)
            for target in self.control_targets(current):
                if depth + 1 < depths[target]:
                    depths[target] = depth + 1
                    frontier.append((target, depth + 1))
        return depths

    def is_back_edge(self, source: str, target: str) -> bool:
        """Whether the transition ``source``→``target`` closes a loop.

        An edge is a *back-edge* when it participates in a cycle and its
        source lies at the same or greater BFS depth than its target —
        i.e. the edge points "upstream".  Back-edges model iterative
        loops (§4.1) and must enable, never block, their target's
        eligibility."""
        if not self.can_reach(target, source):
            return False
        depths = self.depth_map()
        return depths[source] >= depths[target]

    def data_transitions_between(
        self, source: str, target: str
    ) -> list[TransitionDef]:
        """Data transitions from ``source`` to ``target``."""
        return [
            t
            for t in self.transitions
            if t.source == source and t.target == target and t.is_data
        ]
