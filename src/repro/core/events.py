"""The workflow engine's observable event stream.

Every state change, dispatch and authorization decision the engine makes
is emitted as an :class:`Event`.  The stream serves four consumers:

* the **web layer** — the WorkflowFilter turns events raised during a
  request into user-visible notices appended to the response ("the
  workflow manager may modify the response sent back to the user with
  details about its own actions");
* the **test suite** — assertions about engine behaviour read like
  ``log.of_kind("task.state") == [...]``;
* the **benchmark harness** — event counts feed the cost model;
* the **observability layer** (``repro.obs``) — a subscriber mirrors
  every event into the metrics registry and the active trace.

Sequence-number contract: sequences are monotonically increasing for
the lifetime of the log and are **never reused**.  :meth:`EventLog.clear`
drops recorded events but keeps the counter advancing (so ``since()``
markers taken before a clear stay valid); :meth:`EventLog.reset` is the
explicit full rewind that also zeroes the counter.

Long-running servers can bound memory with ``capacity``: the log then
behaves as a ring buffer, silently discarding its oldest events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """One engine occurrence."""

    kind: str
    payload: dict[str, Any]
    sequence: int

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


@dataclass
class EventLog:
    """Append-only event log with subscriber callbacks.

    ``capacity=None`` (the default) keeps every event; a positive
    capacity turns the log into a ring buffer of the most recent events
    (``dropped`` counts the discards).  Subscriber callbacks run
    synchronously during :meth:`emit`; an exception from one propagates
    to the emitter and skips the remaining subscribers — observability
    subscribers are expected to catch their own errors.
    """

    events: list[Event] = field(default_factory=list)
    _subscribers: list[Callable[[Event], None]] = field(default_factory=list)
    _next_sequence: int = 1
    capacity: int | None = None
    dropped: int = 0

    def emit(self, kind: str, **payload: Any) -> Event:
        """Record an event and notify subscribers."""
        event = Event(kind=kind, payload=payload, sequence=self._next_sequence)
        self._next_sequence += 1
        self.events.append(event)
        if self.capacity is not None and self.capacity >= 0:
            overflow = len(self.events) - self.capacity
            if overflow > 0:
                del self.events[:overflow]
                self.dropped += overflow
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a callback invoked for every future event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Remove a previously registered callback (idempotent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def of_kind(self, kind: str) -> list[Event]:
        """All retained events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def since(self, sequence: int) -> list[Event]:
        """Retained events emitted after ``sequence`` (exclusive)."""
        return [event for event in self.events if event.sequence > sequence]

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recent *emitted* event.

        Stays accurate across :meth:`clear` and ring-buffer eviction —
        it reflects what was emitted, not what is retained; 0 only when
        nothing was ever emitted (or after :meth:`reset`).
        """
        return self._next_sequence - 1

    def clear(self) -> None:
        """Drop recorded events; sequence numbering continues.

        Subscribers stay registered.  Use :meth:`reset` to also rewind
        the sequence counter.
        """
        self.events.clear()

    def reset(self) -> None:
        """Full rewind: drop events, zero the sequence counter and the
        drop count (subscribers stay registered)."""
        self.events.clear()
        self._next_sequence = 1
        self.dropped = 0
