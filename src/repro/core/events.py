"""The workflow engine's observable event stream.

Every state change, dispatch and authorization decision the engine makes
is emitted as an :class:`Event`.  The stream serves three consumers:

* the **web layer** — the WorkflowFilter turns events raised during a
  request into user-visible notices appended to the response ("the
  workflow manager may modify the response sent back to the user with
  details about its own actions");
* the **test suite** — assertions about engine behaviour read like
  ``log.of_kind("task.state") == [...]``;
* the **benchmark harness** — event counts feed the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """One engine occurrence."""

    kind: str
    payload: dict[str, Any]
    sequence: int

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


@dataclass
class EventLog:
    """Append-only event log with subscriber callbacks."""

    events: list[Event] = field(default_factory=list)
    _subscribers: list[Callable[[Event], None]] = field(default_factory=list)
    _next_sequence: int = 1

    def emit(self, kind: str, **payload: Any) -> Event:
        """Record an event and notify subscribers."""
        event = Event(kind=kind, payload=payload, sequence=self._next_sequence)
        self._next_sequence += 1
        self.events.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a callback invoked for every future event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Remove a previously registered callback (idempotent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def of_kind(self, kind: str) -> list[Event]:
        """All events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def since(self, sequence: int) -> list[Event]:
        """Events emitted after ``sequence`` (exclusive)."""
        return [event for event in self.events if event.sequence > sequence]

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recent event (0 when empty)."""
        return self.events[-1].sequence if self.events else 0

    def clear(self) -> None:
        """Drop recorded events (subscribers stay registered)."""
        self.events.clear()
