"""The transition condition language.

Transitions "may be labeled with conditions which allows the modeling of
iterative loops or branching.  A condition will be evaluated once the
destination task is considered for execution."  Conditions are small
boolean expressions over the source task's results, e.g.::

    output.colonies > 10 and experiment.status == 'ok'
    not (output.concentration < 0.8) or task.completed_instances >= 3

Grammar (precedence low→high: ``or``, ``and``, ``not``, comparison,
additive, multiplicative, unary minus)::

    expr     := or_expr
    or_expr  := and_expr ("or" and_expr)*
    and_expr := unary ("and" unary)*
    unary    := "not" unary | comparison
    compare  := additive (("=="|"!="|"<="|">="|"<"|">") additive)?
    additive := multiplicative (("+"|"-") multiplicative)*
    multi    := operand (("*"|"/") operand)*
    operand  := "-" operand | NUMBER | STRING | "true" | "false" | "null"
              | IDENT ("." IDENT)* | "(" expr ")"

Arithmetic is numeric-only; division by zero, NULL operands and type
mismatches raise :class:`ConditionError` — which the engine records and
treats as *condition not satisfied*, never silent misrouting.

Identifiers resolve against a nested dict context; a missing name or an
ill-typed comparison raises :class:`ConditionError` (the engine treats an
erroring condition as *not satisfied* and records the failure — errors
never pass silently into routing decisions).

:meth:`Condition.unparse` produces a canonical string that reparses to an
equivalent AST — the property the test suite verifies with hypothesis.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import ConditionError

_TOKEN_SPEC = [
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("OP", r"==|!=|<=|>=|<|>"),
    ("ARITH", r"[+\-*/]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*"),
    ("SKIP", r"[ \t\r\n]+"),
]
_TOKENIZER = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC)
)

_KEYWORDS = {"and", "or", "not", "true", "false", "null"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKENIZER.match(source, position)
        if match is None:
            raise ConditionError(
                f"unexpected character {source[position]!r} at {position} "
                f"in condition {source!r}"
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "IDENT" and text in _KEYWORDS:
            kind = text.upper()
        if kind != "SKIP":
            tokens.append(_Token(kind, text, position))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class _Node:
    def evaluate(self, context: dict[str, Any]) -> Any:
        raise NotImplementedError

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class _Literal(_Node):
    value: Any

    def evaluate(self, context: dict[str, Any]) -> Any:
        return self.value

    def unparse(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class _Lookup(_Node):
    path: tuple[str, ...]

    def evaluate(self, context: dict[str, Any]) -> Any:
        value: Any = context
        for part in self.path:
            if isinstance(value, dict) and part in value:
                value = value[part]
            else:
                raise ConditionError(
                    f"unknown name {'.'.join(self.path)!r} in condition context"
                )
        return value

    def unparse(self) -> str:
        return ".".join(self.path)


def _require_number(value: Any, operator: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConditionError(
            f"arithmetic {operator!r} needs numbers, got "
            f"{type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class _Arithmetic(_Node):
    operator: str  # + - * /
    left: _Node
    right: _Node

    def evaluate(self, context: dict[str, Any]) -> Any:
        left = _require_number(self.left.evaluate(context), self.operator)
        right = _require_number(self.right.evaluate(context), self.operator)
        if self.operator == "+":
            return left + right
        if self.operator == "-":
            return left - right
        if self.operator == "*":
            return left * right
        if right == 0:
            raise ConditionError("division by zero in condition")
        return left / right

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.operator} {self.right.unparse()})"


@dataclass(frozen=True)
class _Negate(_Node):
    operand: _Node

    def evaluate(self, context: dict[str, Any]) -> Any:
        return -_require_number(self.operand.evaluate(context), "-")

    def unparse(self) -> str:
        return f"(-{self.operand.unparse()})"


_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ORDERING_OPS = {"<", "<=", ">", ">="}


@dataclass(frozen=True)
class _Comparison(_Node):
    operator: str
    left: _Node
    right: _Node

    def evaluate(self, context: dict[str, Any]) -> bool:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if self.operator in _ORDERING_OPS:
            if left is None or right is None:
                raise ConditionError(
                    f"cannot order NULL with {self.operator!r}"
                )
            numeric = isinstance(left, (int, float)) and isinstance(
                right, (int, float)
            )
            same_type = type(left) is type(right)
            if not numeric and not same_type:
                raise ConditionError(
                    f"cannot compare {type(left).__name__} with "
                    f"{type(right).__name__} using {self.operator!r}"
                )
            if isinstance(left, bool) != isinstance(right, bool):
                raise ConditionError(
                    f"cannot order boolean against number with "
                    f"{self.operator!r}"
                )
        return _COMPARATORS[self.operator](left, right)

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.operator} {self.right.unparse()}"


@dataclass(frozen=True)
class _Not(_Node):
    operand: _Node

    def evaluate(self, context: dict[str, Any]) -> bool:
        return not _truthy(self.operand.evaluate(context), "not")

    def unparse(self) -> str:
        return f"not ({self.operand.unparse()})"


@dataclass(frozen=True)
class _BoolOp(_Node):
    operator: str  # "and" | "or"
    operands: tuple[_Node, ...]

    def evaluate(self, context: dict[str, Any]) -> bool:
        if self.operator == "and":
            return all(
                _truthy(op.evaluate(context), "and") for op in self.operands
            )
        return any(_truthy(op.evaluate(context), "or") for op in self.operands)

    def unparse(self) -> str:
        joined = f" {self.operator} ".join(
            f"({op.unparse()})" for op in self.operands
        )
        return joined


def _truthy(value: Any, operator: str) -> bool:
    """Boolean contexts accept booleans only — no silent coercion."""
    if isinstance(value, bool):
        return value
    raise ConditionError(
        f"{operator!r} needs a boolean operand, got {type(value).__name__}"
    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.position = 0

    def peek(self) -> _Token | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ConditionError(f"unexpected end of condition {self.source!r}")
        self.position += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise ConditionError(
                f"expected {kind} at position {token.position} in "
                f"condition {self.source!r}, got {token.text!r}"
            )
        return token

    def parse(self) -> _Node:
        node = self.parse_or()
        leftover = self.peek()
        if leftover is not None:
            raise ConditionError(
                f"unexpected {leftover.text!r} at position "
                f"{leftover.position} in condition {self.source!r}"
            )
        return node

    def parse_or(self) -> _Node:
        operands = [self.parse_and()]
        while self.peek() is not None and self.peek().kind == "OR":
            self.next()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return _BoolOp("or", tuple(operands))

    def parse_and(self) -> _Node:
        operands = [self.parse_unary()]
        while self.peek() is not None and self.peek().kind == "AND":
            self.next()
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return _BoolOp("and", tuple(operands))

    def parse_unary(self) -> _Node:
        token = self.peek()
        if token is not None and token.kind == "NOT":
            self.next()
            return _Not(self.parse_unary())
        return self.parse_comparison()

    def parse_comparison(self) -> _Node:
        left = self.parse_additive()
        token = self.peek()
        if token is not None and token.kind == "OP":
            self.next()
            right = self.parse_additive()
            return _Comparison(token.text, left, right)
        return left

    def parse_additive(self) -> _Node:
        node = self.parse_multiplicative()
        while (
            self.peek() is not None
            and self.peek().kind == "ARITH"
            and self.peek().text in "+-"
        ):
            operator = self.next().text
            node = _Arithmetic(operator, node, self.parse_multiplicative())
        return node

    def parse_multiplicative(self) -> _Node:
        node = self.parse_operand()
        while (
            self.peek() is not None
            and self.peek().kind == "ARITH"
            and self.peek().text in "*/"
        ):
            operator = self.next().text
            node = _Arithmetic(operator, node, self.parse_operand())
        return node

    def parse_operand(self) -> _Node:
        token = self.next()
        if token.kind == "ARITH" and token.text == "-":
            return _Negate(self.parse_operand())
        if token.kind == "NUMBER":
            if "." in token.text:
                return _Literal(float(token.text))
            return _Literal(int(token.text))
        if token.kind == "STRING":
            body = token.text[1:-1]
            unescaped = re.sub(r"\\(.)", r"\1", body)
            return _Literal(unescaped)
        if token.kind == "TRUE":
            return _Literal(True)
        if token.kind == "FALSE":
            return _Literal(False)
        if token.kind == "NULL":
            return _Literal(None)
        if token.kind == "IDENT":
            return _Lookup(tuple(token.text.split(".")))
        if token.kind == "LPAREN":
            node = self.parse_or()
            self.expect("RPAREN")
            return node
        raise ConditionError(
            f"unexpected {token.text!r} at position {token.position} in "
            f"condition {self.source!r}"
        )


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------


class Condition:
    """A parsed transition condition."""

    def __init__(self, source: str) -> None:
        if not source or not source.strip():
            raise ConditionError("empty condition")
        self.source = source
        self._ast = _Parser(_tokenize(source), source).parse()

    def evaluate(self, context: dict[str, Any]) -> bool:
        """Evaluate against ``context``; the result must be boolean."""
        result = self._ast.evaluate(context)
        if not isinstance(result, bool):
            raise ConditionError(
                f"condition {self.source!r} evaluated to "
                f"{type(result).__name__}, expected boolean"
            )
        return result

    def unparse(self) -> str:
        """A canonical rendering that reparses to an equivalent AST."""
        return self._ast.unparse()

    def names(self) -> set[str]:
        """All dotted names the condition references (for validation)."""
        names: set[str] = set()

        def walk(node: _Node) -> None:
            if isinstance(node, _Lookup):
                names.add(".".join(node.path))
            elif isinstance(node, (_Comparison, _Arithmetic)):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (_Not, _Negate)):
                walk(node.operand)
            elif isinstance(node, _BoolOp):
                for operand in node.operands:
                    walk(operand)

        walk(self._ast)
        return names

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and self._ast == other._ast

    def __hash__(self) -> int:
        return hash(self.unparse())

    def __repr__(self) -> str:
        return f"Condition({self.source!r})"
