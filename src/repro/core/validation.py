"""Static validation of workflow patterns (compat wrapper).

The analyses themselves live in :mod:`repro.analysis.wfcheck`, which
emits *all* findings as structured diagnostics instead of raising on the
first one.  This module preserves the historical contract every caller
and test relies on: ``validate_pattern`` raises
:class:`SpecificationError` carrying the message of the **first**
error-severity diagnostic — and the verifier emits the legacy checks
first, in their historical order, with byte-identical messages, so
pre-existing callers cannot tell the difference.

What the legacy checks cover (all error severity):

* structural sanity — at least one initial and one final task, every
  task reachable from some initial task;
* cycles are permitted **only** when every cycle contains at least one
  conditional transition (conditions are how "iterative loops" are
  modeled; an all-unconditional cycle could never terminate);
* data transitions must be accompanied by type-level I/O compatibility
  when a database is supplied: the source experiment type must *output*
  the carried sample type and the target must accept it as *input*
  (the ``ExperimentTypeIO`` agreement of §3.1);
* sub-workflow references must resolve against the supplied pattern
  registry, without reference cycles (a pattern may not, transitively,
  contain itself);
* final tasks must require authorization — §4.2: "In order to control
  workflow termination, the final task of a workflow now requires
  authorization to be performed."

On top of those, the verifier's join-soundness analysis can reject
patterns whose joins can *never* fire with all inputs (an AND-join over
mutually exclusive guards, diagnostic WF020) — a class of dead
specification the old validator silently accepted.  Warnings and infos
never raise; run ``python -m repro.analysis wfcheck`` to see them.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.spec import WorkflowPattern
from repro.errors import SpecificationError
from repro.minidb.engine import Database


def validate_pattern(
    pattern: WorkflowPattern,
    db: Database | None = None,
    registry: Mapping[str, WorkflowPattern] | None = None,
) -> None:
    """Raise :class:`SpecificationError` on the first violation found."""
    # Imported lazily: repro.analysis depends on repro.core, and this
    # module is imported during core package initialisation.
    from repro.analysis.wfcheck import check_pattern

    report = check_pattern(pattern, db=db, registry=registry)
    first = report.first_error()
    if first is not None:
        raise SpecificationError(first.message)
