"""Static validation of workflow patterns.

``validate_pattern`` checks everything that can be checked before a
single instance runs:

* structural sanity — at least one initial and one final task, every
  task reachable from some initial task;
* cycles are permitted **only** when every cycle contains at least one
  conditional transition (conditions are how "iterative loops" are
  modeled; an all-unconditional cycle could never terminate);
* data transitions must be accompanied by type-level I/O compatibility
  when a database is supplied: the source experiment type must *output*
  the carried sample type and the target must accept it as *input*
  (the ``ExperimentTypeIO`` agreement of §3.1);
* sub-workflow references must resolve against the supplied pattern
  registry, without reference cycles (a pattern may not, transitively,
  contain itself);
* final tasks must require authorization — §4.2: "In order to control
  workflow termination, the final task of a workflow now requires
  authorization to be performed."  ``validate_pattern`` *enforces* this
  by flagging unauthorized final tasks (the builder sets the flag
  automatically; hand-built patterns must do it themselves).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.spec import WorkflowPattern
from repro.errors import SpecificationError
from repro.minidb.engine import Database
from repro.minidb.predicates import AND, EQ


def validate_pattern(
    pattern: WorkflowPattern,
    db: Database | None = None,
    registry: Mapping[str, WorkflowPattern] | None = None,
) -> None:
    """Raise :class:`SpecificationError` on the first violation found."""
    if not pattern.tasks:
        raise SpecificationError(f"pattern {pattern.name!r} has no tasks")

    initial = pattern.initial_tasks()
    if not initial:
        raise SpecificationError(
            f"pattern {pattern.name!r} has no initial task (every task has "
            "incoming transitions)"
        )
    final = pattern.final_tasks()
    if not final:
        raise SpecificationError(
            f"pattern {pattern.name!r} has no final task (every task has "
            "outgoing transitions)"
        )

    _check_reachability(pattern, initial)
    _check_unconditional_cycles(pattern)
    _check_final_authorization(pattern, final)
    if registry is not None:
        _check_subworkflows(pattern, registry)
    if db is not None:
        _check_types(pattern, db, registry)


def _check_reachability(pattern: WorkflowPattern, initial: Iterable[str]) -> None:
    reached = set(initial)
    frontier = list(initial)
    while frontier:
        current = frontier.pop()
        for target in pattern.control_targets(current):
            if target not in reached:
                reached.add(target)
                frontier.append(target)
    unreachable = set(pattern.tasks) - reached
    if unreachable:
        raise SpecificationError(
            f"pattern {pattern.name!r}: tasks {sorted(unreachable)} are not "
            "reachable from any initial task"
        )


def _check_unconditional_cycles(pattern: WorkflowPattern) -> None:
    """Reject cycles made purely of unconditional transitions.

    Only unconditional control edges are considered; a conditional edge
    breaks the cycle because the condition can route execution out of
    the loop.
    """
    edges: dict[str, list[str]] = {name: [] for name in pattern.tasks}
    for transition in pattern.transitions:
        if transition.condition is None:
            edges[transition.source].append(transition.target)

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in pattern.tasks}

    def visit(node: str, stack: list[str]) -> None:
        colour[node] = GREY
        stack.append(node)
        for neighbour in edges[node]:
            if colour[neighbour] == GREY:
                start = stack.index(neighbour)
                cycle = stack[start:] + [neighbour]
                raise SpecificationError(
                    f"pattern {pattern.name!r}: unconditional cycle "
                    f"{' -> '.join(cycle)}; loops must contain a "
                    "conditional transition"
                )
            if colour[neighbour] == WHITE:
                visit(neighbour, stack)
        stack.pop()
        colour[node] = BLACK

    for name in pattern.tasks:
        if colour[name] == WHITE:
            visit(name, [])


def _check_final_authorization(
    pattern: WorkflowPattern, final: Iterable[str]
) -> None:
    unauthorized = [
        name for name in final if not pattern.task(name).requires_authorization
    ]
    if unauthorized:
        raise SpecificationError(
            f"pattern {pattern.name!r}: final tasks {sorted(unauthorized)} "
            "must require authorization to control workflow termination"
        )


def _check_subworkflows(
    pattern: WorkflowPattern,
    registry: Mapping[str, WorkflowPattern],
    seen: tuple[str, ...] = (),
) -> None:
    seen = seen + (pattern.name,)
    for task in pattern.tasks.values():
        if not task.is_subworkflow:
            continue
        child_name = task.subworkflow
        if child_name in seen:
            raise SpecificationError(
                f"sub-workflow cycle: {' -> '.join(seen + (child_name,))}"
            )
        child = registry.get(child_name)
        if child is None:
            raise SpecificationError(
                f"pattern {pattern.name!r}: task {task.name!r} references "
                f"unknown sub-workflow {child_name!r}"
            )
        _check_subworkflows(child, registry, seen)


def _check_types(
    pattern: WorkflowPattern,
    db: Database,
    registry: Mapping[str, WorkflowPattern] | None,
) -> None:
    for task in pattern.tasks.values():
        if task.is_subworkflow:
            continue
        known = db.select_one(
            "ExperimentType", EQ("type_name", task.experiment_type)
        )
        if known is None:
            raise SpecificationError(
                f"pattern {pattern.name!r}: task {task.name!r} references "
                f"unregistered experiment type {task.experiment_type!r}"
            )
    for transition in pattern.transitions:
        if not transition.is_data:
            continue
        source_task = pattern.task(transition.source)
        target_task = pattern.task(transition.target)
        source_type = _boundary_type(source_task, registry, output=True)
        target_type = _boundary_type(target_task, registry, output=False)
        if source_type is not None:
            _require_io(
                db, pattern, source_type, transition.sample_type, "output"
            )
        if target_type is not None:
            _require_io(
                db, pattern, target_type, transition.sample_type, "input"
            )


def _boundary_type(
    task,
    registry: Mapping[str, WorkflowPattern] | None,
    output: bool,
) -> str | None:
    """Experiment type at a data-transition endpoint.

    For sub-workflow tasks the data flows through the child's final (for
    outputs) or initial (for inputs) task; resolving that requires the
    registry, and multi-task boundaries are skipped (checked when the
    child pattern itself is validated).
    """
    if not task.is_subworkflow:
        return task.experiment_type
    if registry is None:
        return None
    child = registry.get(task.subworkflow)
    if child is None:
        return None
    boundary = child.final_tasks() if output else child.initial_tasks()
    if len(boundary) != 1:
        return None
    boundary_task = child.task(boundary[0])
    if boundary_task.is_subworkflow:
        return None
    return boundary_task.experiment_type


def _require_io(
    db: Database,
    pattern: WorkflowPattern,
    experiment_type: str,
    sample_type: str,
    direction: str,
) -> None:
    row = db.select_one(
        "ExperimentTypeIO",
        AND(
            EQ("experiment_type", experiment_type),
            EQ("sample_type", sample_type),
            EQ("direction", direction),
        ),
    )
    if row is None:
        raise SpecificationError(
            f"pattern {pattern.name!r}: experiment type {experiment_type!r} "
            f"does not declare {sample_type!r} as an {direction} "
            "(ExperimentTypeIO)"
        )
