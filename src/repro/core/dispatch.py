"""The engine↔agent dispatch boundary and message protocol.

The WorkflowBean never talks to the message broker directly; it calls a
:class:`Dispatcher`.  The production implementation is
``repro.agents.manager.AgentManager`` (persistent messaging + XML), but
the indirection lets the engine run — and be tested — without any
messaging infrastructure via :class:`NullDispatcher`.

Message protocol (header ``kind`` on every message):

================  =============  ==========================================
kind              direction      body / headers
================  =============  ==========================================
task.dispatch     engine→agent   XML task-input document; headers carry
                                 experiment id, workflow id, task name,
                                 experiment type
task.abort        engine→agent   headers carry experiment id
auth.request      engine→agent   headers carry auth id, workflow id, task
task.started      agent→engine   headers carry experiment id
task.result       agent→engine   XML result document (outputs, chosen
                                 inputs, result values); headers carry
                                 experiment id and success flag
auth.response     agent→engine   headers carry auth id, approve flag
================  =============  ==========================================

The engine's inbound queue is :data:`ENGINE_QUEUE`.
"""

from __future__ import annotations

from typing import Any, Protocol

#: Queue the workflow manager consumes.
ENGINE_QUEUE = "workflow.manager"

#: Message kinds (header values).
KIND_DISPATCH = "task.dispatch"
KIND_ABORT = "task.abort"
KIND_AUTH_REQUEST = "auth.request"
KIND_STARTED = "task.started"
KIND_RESULT = "task.result"
KIND_AUTH_RESPONSE = "auth.response"


class Dispatcher(Protocol):
    """What the engine needs from the agent layer."""

    def choose_agent(self, experiment_type: str) -> dict | None:
        """Pick an agent row authorized for ``experiment_type`` or None."""

    def dispatch_instance(
        self,
        agent: dict,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        available_inputs: list[dict[str, Any]],
    ) -> None:
        """Send a task instance to ``agent`` with its candidate inputs."""

    def send_abort(self, agent: dict, experiment_id: int) -> None:
        """Tell an agent to stop working on an instance."""

    def notify_authorization(
        self,
        agent: dict | None,
        auth_id: int,
        workflow: dict[str, Any],
        task_name: str,
        kind: str,
    ) -> None:
        """Ask an (human) agent to authorize a task start."""


class NullDispatcher:
    """A dispatcher that records calls but sends nothing.

    Used by engine-level tests and by installations where every task is
    performed by humans through the web interface (the paper's
    pre-automation deployment mode).
    """

    def __init__(self) -> None:
        self.dispatched: list[dict[str, Any]] = []
        self.aborts: list[int] = []
        self.authorization_requests: list[dict[str, Any]] = []

    def choose_agent(self, experiment_type: str) -> dict | None:
        return None

    def dispatch_instance(
        self,
        agent: dict,
        workflow: dict[str, Any],
        task_name: str,
        experiment: dict[str, Any],
        available_inputs: list[dict[str, Any]],
    ) -> None:  # pragma: no cover - never reached with choose_agent=None
        self.dispatched.append(
            {
                "agent": agent,
                "workflow_id": workflow["workflow_id"],
                "task": task_name,
                "experiment_id": experiment["experiment_id"],
                "inputs": available_inputs,
            }
        )

    def send_abort(self, agent: dict, experiment_id: int) -> None:
        self.aborts.append(experiment_id)

    def notify_authorization(
        self,
        agent: dict | None,
        auth_id: int,
        workflow: dict[str, Any],
        task_name: str,
        kind: str,
    ) -> None:
        self.authorization_requests.append(
            {
                "agent": agent,
                "auth_id": auth_id,
                "workflow_id": workflow["workflow_id"],
                "task": task_name,
                "kind": kind,
            }
        )
