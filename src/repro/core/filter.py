"""The servlet-filter integration (Fig. 6 and Fig. 7).

``install_workflow_support`` attaches Exp-WF to a built Exp-DB instance
through the deployment descriptor alone — no Exp-DB component is
touched:

* the :class:`WorkflowFilter` is registered on the UserRequestServlet's
  URL pattern.  For every request it picks one of the paper's three
  handling modes (Fig. 7):

  (a) **preprocess** — workflow-relevant writes are validated first; a
      request that would violate workflow/task state is *denied* and
      never reaches its original destination, otherwise it is forwarded
      unchanged;
  (b) **process** — requests carrying a ``workflow_action`` parameter
      are handled entirely by the :class:`WorkflowServlet`, bypassing
      the original destination ("the workflow manager could assume
      responsibility ... the original destination is bypassed
      entirely");
  (c) **postprocess** — responses to successful workflow-relevant writes
      are examined; the workflow manager reacts (eligibility checks,
      activations) and appends notices about its own actions to the
      user-visible response.  "Only successful user actions need to be
      post-processed, since failed operations do not change the state of
      the workflow."

* the :class:`WorkflowServlet` is additionally mapped at ``/workflow``
  for direct use by workflow-aware pages.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.datamodel import WORKFLOW_TABLES, install_workflow_datamodel
from repro.core.dispatch import Dispatcher
from repro.core.engine import WorkflowBean
from repro.errors import (
    BadRequestError,
    DatabaseError,
    FaultInjected,
    MessagingError,
    WorkflowError,
)
from repro.weblims.app import ExpDB
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Filter, FilterChain, Servlet
from repro.weblims.userservlet import UserRequestServlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.weblims.container import WebContainer

#: Failures of the workflow machinery itself (engine storage, broker,
#: injected crashes) — the LIMS must degrade, not 500, on these.
_DEGRADE_ERRORS = (DatabaseError, MessagingError, FaultInjected)

def _span(hub, name: str, **attributes: Any):
    """A tracer span when observability is installed, else a no-op."""
    if hub is None:
        return nullcontext()
    return hub.tracer.span(name, **attributes)


#: Events worth surfacing to the user as response notices.
_NOTICE_KINDS = {
    "task.state": lambda e: f"task {e['task']!r} is now {e['state']}",
    "instance.state": lambda e: (
        f"experiment {e['experiment_id']} is now {e['state']}"
    ),
    "workflow.finished": lambda e: (
        f"workflow {e['workflow_id']} {e['status']}"
    ),
    "authorization.requested": lambda e: (
        f"authorization requested for task {e['task']!r}"
    ),
}


@dataclass
class FilterStats:
    """Per-mode counters (drive the Fig. 7 benchmark)."""

    passed_through: int = 0
    preprocessed: int = 0
    denied: int = 0
    processed: int = 0
    postprocessed: int = 0
    degraded: int = 0

    def reset(self) -> None:
        self.passed_through = 0
        self.preprocessed = 0
        self.denied = 0
        self.processed = 0
        self.postprocessed = 0
        self.degraded = 0


@dataclass
class DegradationPolicy:
    """What the filter does when the workflow machinery is unavailable.

    ``reject`` answers workflow-relevant requests with 503 and a
    ``Retry-After`` header — nothing reaches the LIMS that the workflow
    manager could not vet.  ``passthrough`` instead forwards them to the
    bare LIMS unvalidated (the paper's non-intrusive stance taken to its
    limit: Exp-DB keeps working exactly as if Exp-WF were never
    installed).  Mode (b) requests have no original destination, so they
    are always rejected while degraded.
    """

    mode: str = "reject"
    retry_after_s: int = 5

    def __post_init__(self) -> None:
        if self.mode not in ("reject", "passthrough"):
            raise ValueError(
                f"degradation mode must be 'reject' or 'passthrough', "
                f"got {self.mode!r}"
            )


class WorkflowFilter(Filter):
    """Intercepts Exp-DB traffic and routes it per Fig. 7."""

    name = "WorkflowFilter"

    def __init__(
        self,
        engine: WorkflowBean,
        workflow_servlet: "WorkflowServlet",
        degradation: DegradationPolicy | None = None,
    ) -> None:
        self.engine = engine
        self.workflow_servlet = workflow_servlet
        self.stats = FilterStats()
        self.degradation = degradation or DegradationPolicy()
        #: Optional readiness probe returning ``(ready, reason)``; wired
        #: by ``install_observability`` to the engine/broker health
        #: checks.  ``None`` means "assume ready".
        self.readiness: Callable[[], tuple[bool, str]] | None = None
        #: Container injected at install time (needed to service mode-b
        #: requests through the WorkflowServlet).
        self.container: "WebContainer | None" = None

    def do_filter(
        self, request: HttpRequest, chain: FilterChain
    ) -> HttpResponse:
        hub = self._obs()
        # Mode (b): explicit workflow actions bypass the original target.
        if request.param("workflow_action") is not None:
            ready, cause = self._ready()
            if not ready:
                return self._degrade(hub, request, cause, chain=None)
            self.stats.processed += 1
            action_name = request.param("workflow_action")
            pattern = request.param("pattern")
            with _span(
                hub,
                "filter.process",
                workflow_action=action_name,
                pattern=pattern,
            ) as span:
                self._audit(
                    hub,
                    mode="process",
                    action=action_name,
                    path=request.path,
                )
                try:
                    response = self.workflow_servlet.service(
                        request, self.container
                    )
                except _DEGRADE_ERRORS as error:
                    response = self._degrade(
                        hub, request, str(error), chain=None
                    )
            return response

        action = request.param("action", "list")
        table = request.param("table")
        relevant = self._is_workflow_relevant(action, table)
        if not relevant:
            # "Non-workflow-related actions (e.g., read-only operations)
            # would be allowed to proceed normally."
            self.stats.passed_through += 1
            return chain.proceed(request)

        ready, cause = self._ready()
        if not ready:
            return self._degrade(hub, request, cause, chain=chain)

        # Mode (a): preprocess — validate before the original servlet.
        self.stats.preprocessed += 1
        with _span(hub, "filter.preprocess", table=table, action=action):
            try:
                payload = self._payload_for_validation(request, action, table)
                allowed, reason = self.engine.validate_user_action(
                    table, action, payload
                )
            except _DEGRADE_ERRORS as error:
                return self._degrade(hub, request, str(error), chain=chain)
        if not allowed:
            self.stats.denied += 1
            self.engine.events.emit(
                "request.denied", table=table, action=action, reason=reason
            )
            self._audit(
                hub,
                mode="deny",
                action=action,
                table=table,
                reason=reason,
                path=request.path,
            )
            return HttpResponse.denied(f"workflow manager denied request: {reason}")
        self._audit(
            hub, mode="preprocess", action=action, table=table, path=request.path
        )

        response = chain.proceed(request)

        # Mode (c): postprocess successful changes only.
        if response.ok:
            self.stats.postprocessed += 1
            try:
                with _span(hub, "filter.postprocess", table=table, action=action):
                    events = self.engine.on_data_change(
                        table, response.attributes
                    )
            except _DEGRADE_ERRORS as error:
                # The user's write already succeeded — never mask it
                # with an error now.  Note the gap and move on; the
                # engine re-evaluates on the next data change.
                self.stats.degraded += 1
                self._audit(
                    hub,
                    mode="degraded",
                    phase="postprocess",
                    table=table,
                    action=action,
                    reason=str(error),
                    path=request.path,
                )
                response.append_notice(
                    "workflow manager unavailable; workflow state will be "
                    "updated when it recovers"
                )
                return response
            for event in events:
                render = _NOTICE_KINDS.get(event.kind)
                if render is not None:
                    response.append_notice(render(event))
            response.attributes["workflow_events"] = events
        return response

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------

    def _ready(self) -> tuple[bool, str]:
        """Consult the readiness probe; a probe crash means *not* ready."""
        if self.readiness is None:
            return True, ""
        try:
            return self.readiness()
        except _DEGRADE_ERRORS as error:
            return False, f"readiness probe failed: {error}"

    def _degrade(
        self, hub, request: HttpRequest, reason: str, chain: FilterChain | None
    ) -> HttpResponse:
        """Answer a workflow-relevant request while the machinery is down.

        ``chain=None`` marks a mode-(b) request, which has no original
        destination and is always rejected.
        """
        self.stats.degraded += 1
        self.engine.events.emit(
            "request.degraded", path=request.path, reason=reason
        )
        self._audit(
            hub, mode="degraded", path=request.path, reason=reason
        )
        if self.degradation.mode == "passthrough" and chain is not None:
            return chain.proceed(request)
        response = HttpResponse.error(
            503, f"workflow support unavailable: {reason}"
        )
        response.headers["Retry-After"] = str(self.degradation.retry_after_s)
        return response

    # ------------------------------------------------------------------

    def _obs(self):
        """The observability hub, when one is installed on the container."""
        if self.container is None:
            return None
        return self.container.context.get("obs")

    @staticmethod
    def _audit(hub, mode: str, **fields) -> None:
        """Record a Fig. 7 routing decision in the durable audit trail.

        Pass-throughs are deliberately not audited — they are the
        workflow-irrelevant bulk of the traffic.
        """
        if hub is not None:
            hub.audit_record("filter.decision", mode=mode, **fields)

    def _is_workflow_relevant(self, action: str, table: str | None) -> bool:
        """Whether the request "might impact the state of a workflow".

        Update requests involving workflow definitions, experiment
        types, experiments, samples, experiment I/O and agents are
        relevant; reads and form generation are not.
        """
        if action not in ("insert", "update", "delete"):
            return False
        if table is None:
            return False
        if table in WORKFLOW_TABLES:
            return True
        if table in (
            "Experiment",
            "Sample",
            "ExperimentIO",
            "ExperimentTypeIO",
            "ExperimentType",
            "SampleType",
        ):
            return True
        # Dynamic discovery of type tables through the metadata tables —
        # new experiment types are covered without touching the filter.
        if self.engine._is_experiment_table(table):
            return True
        bean = self._bean()
        return bean is not None and bean.sample_type_of(table) is not None

    def _bean(self):
        if self.container is None:
            return None
        return self.container.context.get("table_bean")

    def _payload_for_validation(
        self, request: HttpRequest, action: str, table: str
    ) -> dict[str, Any]:
        # JSON-style clients (the /api web-service interface) carry
        # whole objects in 'values'/'criteria'; form-style clients use
        # v_/c_ prefixed fields.
        json_name = "criteria" if action == "delete" else "values"
        raw_json = request.param(json_name)
        if raw_json:
            try:
                decoded = json.loads(raw_json)
            except json.JSONDecodeError:
                return {}  # the servlet will produce the proper 400
            return decoded if isinstance(decoded, dict) else {}
        bean = self._bean()
        prefix = "c_" if action == "delete" else "v_"
        if bean is None:
            return request.params_with_prefix(prefix)
        try:
            return UserRequestServlet._typed_params(bean, table, request, prefix)
        except BadRequestError:
            # Let the original servlet produce the proper 400.
            return {}


class WorkflowServlet(Servlet):
    """The controller for explicit workflow operations (Fig. 6).

    Reachable directly at ``/workflow`` and via the filter's mode (b)
    when a request carries a ``workflow_action`` parameter.
    """

    name = "WorkflowServlet"

    def __init__(self, engine: WorkflowBean) -> None:
        self.engine = engine

    def service(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        templates = container.context["templates"]
        action = request.param("workflow_action") or request.param("action")
        if not action:
            return HttpResponse.error(400, "missing workflow_action")
        handler = getattr(self, f"_do_{action}", None)
        if handler is None:
            return HttpResponse.error(400, f"unknown workflow action {action!r}")
        hub = container.context.get("obs") if container is not None else None
        try:
            with _span(hub, f"engine.{action}"):
                return handler(request, templates)
        except WorkflowError as error:
            response = HttpResponse.error(409, str(error))
            response.attributes["error"] = str(error)
            return response
        except BadRequestError as error:
            response = HttpResponse.error(400, str(error))
            response.attributes["error"] = str(error)
            return response

    @staticmethod
    def _int_param(request: HttpRequest, name: str, required: bool = True) -> int | None:
        """A numeric parameter, as a proper 400 when malformed."""
        raw = request.require_param(name) if required else request.param(name)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise BadRequestError(
                f"parameter {name!r} must be an integer, got {raw!r}"
            ) from None

    # -- actions -----------------------------------------------------------

    def _do_start(self, request: HttpRequest, templates) -> HttpResponse:
        pattern = request.require_param("pattern")
        project_id = self._int_param(request, "project_id", required=False)
        workflow = self.engine.start_workflow(
            pattern,
            name=request.param("name"),
            project_id=project_id,
        )
        response = self._confirm(
            templates,
            f"workflow {workflow['workflow_id']} started from "
            f"pattern {pattern!r}",
        )
        response.attributes["workflow_id"] = workflow["workflow_id"]
        return response

    def _do_status(self, request: HttpRequest, templates) -> HttpResponse:
        workflow_id = self._int_param(request, "workflow_id")
        view = self.engine.workflow_view(workflow_id)
        tasks = [
            {
                "name": task.name,
                "state": task.state,
                "instances": len(task.instances),
                "completed": task.completed_instances,
                "aborted": task.aborted_instances,
            }
            for task in view.tasks.values()
        ]
        body = templates.render(
            "wf_status",
            {
                "workflow_id": view.workflow_id,
                "pattern": view.pattern_name,
                "status": view.status,
                "tasks": tasks,
            },
        )
        response = HttpResponse.html(body)
        response.attributes["view"] = view
        return response

    def _do_list(self, request: HttpRequest, templates) -> HttpResponse:
        workflows = self.engine.list_workflows(request.param("status"))
        body = templates.render("wf_list", {"workflows": workflows})
        response = HttpResponse.html(body)
        response.attributes["workflows"] = workflows
        return response

    def _do_authorize(self, request: HttpRequest, templates) -> HttpResponse:
        auth_id = self._int_param(request, "auth_id")
        approve = request.require_param("approve").lower() == "true"
        self.engine.respond_authorization(
            auth_id, approve, decided_by=request.param("by", "")
        )
        verdict = "granted" if approve else "denied"
        return self._confirm(templates, f"authorization {auth_id} {verdict}")

    def _do_authorizations(
        self, request: HttpRequest, templates
    ) -> HttpResponse:
        workflow_id = request.param("workflow_id")
        pending = self.engine.pending_authorizations(
            int(workflow_id) if workflow_id else None
        )
        body = templates.render("wf_auths", {"authorizations": pending})
        response = HttpResponse.html(body)
        response.attributes["authorizations"] = pending
        return response

    def _do_complete_instance(
        self, request: HttpRequest, templates
    ) -> HttpResponse:
        experiment_id = self._int_param(request, "experiment_id")
        success = request.require_param("success").lower() == "true"
        outputs_json = request.param("outputs", "[]")
        chosen = request.param("chosen_inputs", "")
        try:
            outputs = json.loads(outputs_json)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"bad outputs JSON: {error}") from None
        chosen_ids = [int(part) for part in chosen.split(",") if part.strip()]
        result_values = {
            name: value
            for name, value in request.params_with_prefix("r_").items()
        }
        self.engine.complete_instance(
            experiment_id,
            success=success,
            outputs=outputs,
            chosen_input_ids=chosen_ids,
            result_values=_typed_result_values(self.engine, experiment_id, result_values)
            if result_values
            else None,
        )
        return self._confirm(
            templates,
            f"instance {experiment_id} recorded as "
            f"{'successful' if success else 'failed'}",
        )

    def _do_spawn(self, request: HttpRequest, templates) -> HttpResponse:
        workflow_id = self._int_param(request, "workflow_id")
        task = request.require_param("task")
        experiment = self.engine.spawn_instance(workflow_id, task)
        response = self._confirm(
            templates,
            f"spawned instance {experiment['experiment_id']} for task {task!r}",
        )
        response.attributes["experiment_id"] = experiment["experiment_id"]
        return response

    def _do_restart(self, request: HttpRequest, templates) -> HttpResponse:
        workflow_id = self._int_param(request, "workflow_id")
        task = request.require_param("task")
        cascade = request.param("cascade", "true").lower() == "true"
        self.engine.restart_task(workflow_id, task, cascade=cascade)
        return self._confirm(templates, f"task {task!r} restarted")

    def _do_cancel(self, request: HttpRequest, templates) -> HttpResponse:
        workflow_id = self._int_param(request, "workflow_id")
        self.engine.cancel_workflow(
            workflow_id, by=request.param("by", "")
        )
        return self._confirm(templates, f"workflow {workflow_id} cancelled")

    def _do_events(self, request: HttpRequest, templates) -> HttpResponse:
        """The engine's event stream — the workflow monitoring page.

        Optional filters: ``workflow_id`` (events touching one
        workflow), ``since`` (events after a sequence number, for
        incremental polling), ``kind``.
        """
        events = self.engine.events.events
        since = self._int_param(request, "since", required=False)
        if since is not None:
            events = self.engine.events.since(since)
        kind = request.param("kind")
        if kind:
            events = [event for event in events if event.kind == kind]
        target = self._int_param(request, "workflow_id", required=False)
        if target is not None:
            events = [
                event
                for event in events
                if event.get("workflow_id") == target
            ]
        rendered = [
            {
                "sequence": event.sequence,
                "kind": event.kind,
                "details": ", ".join(
                    f"{key}={value}" for key, value in event.payload.items()
                ),
            }
            for event in events
        ]
        body = templates.render("wf_events", {"events": rendered})
        response = HttpResponse.html(body)
        response.attributes["events"] = events
        response.attributes["last_sequence"] = (
            events[-1].sequence if events else (since or 0)
        )
        return response

    def _do_define(self, request: HttpRequest, templates) -> HttpResponse:
        """Define and store a new workflow pattern from JSON.

        "Scientists describe the execution order of experiments as a
        workflow model" — this is that step, over the web interface.
        The description is validated against the live schema (and the
        already-stored patterns, for sub-workflow references) before it
        is saved; final tasks get the mandatory authorization flag.
        """
        from repro.core.persistence import (
            pattern_from_dict,
            pattern_registry,
            save_pattern,
        )
        from repro.core.validation import validate_pattern

        raw = request.require_param("pattern_json")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"bad pattern JSON: {error}") from None
        pattern = pattern_from_dict(data)
        for name in pattern.final_tasks():
            pattern.task(name).requires_authorization = True
        registry = pattern_registry(self.engine.db)
        validate_pattern(pattern, db=self.engine.db, registry=registry)
        pattern_id = save_pattern(self.engine.db, pattern)
        self.engine.events.emit(
            "pattern.defined", pattern=pattern.name, pattern_id=pattern_id
        )
        response = self._confirm(
            templates,
            f"pattern {pattern.name!r} stored with "
            f"{len(pattern.tasks)} task(s)",
        )
        response.attributes["pattern_id"] = pattern_id
        return response

    def _do_patterns(self, request: HttpRequest, templates) -> HttpResponse:
        """List stored patterns; ``name`` exports one as JSON."""
        from repro.core.persistence import load_pattern, pattern_to_dict

        name = request.param("name")
        if name:
            pattern = load_pattern(self.engine.db, name)
            response = HttpResponse(
                status=200,
                body=json.dumps(pattern_to_dict(pattern)),
                content_type="application/json",
            )
            response.attributes["pattern"] = pattern
            return response
        rows = self.engine.db.select("WorkflowPattern", order_by="pattern_id")
        response = self._confirm(
            templates, f"{len(rows)} stored pattern(s)"
        )
        response.attributes["patterns"] = rows
        return response

    def _do_abort_instance(
        self, request: HttpRequest, templates
    ) -> HttpResponse:
        experiment_id = self._int_param(request, "experiment_id")
        self.engine.abort_instance(experiment_id)
        return self._confirm(templates, f"instance {experiment_id} aborted")

    def _do_inputs(self, request: HttpRequest, templates) -> HttpResponse:
        workflow_id = self._int_param(request, "workflow_id")
        task = request.require_param("task")
        inputs = self.engine.collect_available_inputs(workflow_id, task)
        response = self._confirm(
            templates, f"{len(inputs)} candidate input(s) for task {task!r}"
        )
        response.attributes["inputs"] = inputs
        return response

    @staticmethod
    def _confirm(templates, message: str) -> HttpResponse:
        body = templates.render("wf_confirm", {"message": message})
        response = HttpResponse.html(body)
        response.attributes["message"] = message
        return response


def _typed_result_values(
    engine: WorkflowBean, experiment_id: int, raw: dict[str, str]
) -> dict[str, Any]:
    """Coerce web-form result values against the experiment's schemas."""
    from repro.minidb.types import coerce

    experiment = engine.db.get("Experiment", experiment_id)
    if experiment is None:
        raise BadRequestError(f"no experiment {experiment_id}")
    type_table = engine._type_table(experiment["type_name"])
    experiment_schema = engine.db.schema("Experiment")
    child_schema = engine.db.schema(type_table) if type_table else None
    typed: dict[str, Any] = {}
    for name, value in raw.items():
        if child_schema is not None and child_schema.has_column(name):
            column = child_schema.column(name)
        elif experiment_schema.has_column(name):
            column = experiment_schema.column(name)
        else:
            raise BadRequestError(
                f"no column {name!r} for experiment {experiment_id}"
            )
        typed[name] = None if value == "" else coerce(
            value, column.type, f"result.{name}"
        )
    return typed


#: Workflow-specific "JSP pages" added alongside Exp-DB's defaults.
WORKFLOW_TEMPLATES = {
    "wf_status": (
        "<html><body><h1>Workflow {{ workflow_id }} ({{ pattern }})</h1>"
        "<p>status: {{ status }}</p><table>"
        "<tr><th>task</th><th>state</th><th>instances</th>"
        "<th>completed</th><th>aborted</th></tr>"
        "{% for t in tasks %}<tr><td>{{ t.name }}</td><td>{{ t.state }}</td>"
        "<td>{{ t.instances }}</td><td>{{ t.completed }}</td>"
        "<td>{{ t.aborted }}</td></tr>{% endfor %}"
        "</table></body></html>"
    ),
    "wf_list": (
        "<html><body><h1>Workflows</h1><ul>"
        "{% for w in workflows %}<li>#{{ w.workflow_id }} {{ w.name }} — "
        "{{ w.status }}</li>{% endfor %}</ul></body></html>"
    ),
    "wf_auths": (
        "<html><body><h1>Pending authorizations</h1><ul>"
        "{% for a in authorizations %}<li>#{{ a.auth_id }} workflow "
        "{{ a.workflow_id }} ({{ a.kind }})</li>{% endfor %}"
        "</ul></body></html>"
    ),
    "wf_confirm": (
        "<html><body><p class=\"workflow\">{{ message }}</p></body></html>"
    ),
    "wf_events": (
        "<html><body><h1>Workflow events</h1><table>"
        "<tr><th>#</th><th>event</th><th>details</th></tr>"
        "{% for e in events %}<tr><td>{{ e.sequence }}</td>"
        "<td>{{ e.kind }}</td><td>{{ e.details }}</td></tr>{% endfor %}"
        "</table></body></html>"
    ),
}


def install_workflow_support(
    expdb: ExpDB,
    dispatcher: Dispatcher | None = None,
    install_datamodel: bool = True,
    degradation: DegradationPolicy | None = None,
) -> WorkflowBean:
    """Attach Exp-WF to a running Exp-DB — the paper's integration step.

    Everything happens through public extension points: the workflow
    tables are created (extending only ``Experiment``), the workflow
    templates are registered, and the WorkflowServlet / WorkflowFilter
    are declared in the deployment descriptor.  No existing component is
    modified.  Returns the :class:`WorkflowBean`.
    """
    if install_datamodel:
        install_workflow_datamodel(expdb.db)
    engine = WorkflowBean(expdb.db, dispatcher=dispatcher)
    servlet = WorkflowServlet(engine)
    filter_ = WorkflowFilter(engine, servlet, degradation=degradation)
    filter_.container = expdb.container

    for name, source in WORKFLOW_TEMPLATES.items():
        expdb.templates.register(name, source)
    expdb.container.descriptor.add_servlet(servlet, "/workflow", "/workflow/*")
    expdb.container.descriptor.add_filter(filter_, "/user", "/user/*")
    expdb.container.context["workflow_bean"] = engine
    expdb.container.context["workflow_filter"] = filter_
    return engine
