"""Codebase invariant linter (stdlib ``ast``).

Enforces the handful of repo-wide invariants a generic style linter
cannot express:

========  ===========================================================
code      invariant
========  ===========================================================
CL001     no bare ``except:`` — always name the exception type
CL002     no mutable default arguments (list/dict/set literals or
          constructor calls)
CL003     :class:`~repro.core.states.StateMachine` is the **sole**
          state-mutation path: no ``<obj>.state = ...`` assignment
          outside ``core/states.py``
CL004     lock discipline: a class that creates a ``threading.Lock`` /
          ``RLock`` / ``Condition`` must write its shared ``self._*``
          attributes only inside ``with self.<lock>:`` (or from a
          method wrapped by a ``*synchronized*`` decorator); private
          methods and ``__init__`` are exempt — they run before the
          object escapes or are documented to be called under the lock
CL005     no dead code: statements after ``return``/``raise``/
          ``break``/``continue`` in the same block, or bodies guarded
          by a literal ``False``
========  ===========================================================

All findings are error severity: ``python -m repro.analysis codelint``
exits non-zero until the tree is clean.  The lock rule is deliberately
lightweight — it reasons lexically, not across calls — which keeps it
fast and predictable; its known blind spots (helpers called under a
caller's lock) are covered by the private-method exemption.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Report, Severity

#: Files allowed to assign ``.state`` (the StateMachine itself).
STATE_MUTATION_ALLOWLIST = ("core/states.py",)

#: Constructor names that create a lock object (threading.X or bare X).
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Decorator names that mark a method as lock-wrapped.
_SYNCHRONIZED_DECORATORS = {"_synchronized", "synchronized"}


def _is_lock_factory_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        # threading.Lock() / threading.Condition() — require the module
        # qualifier so the workflow condition language's ``Condition``
        # class is not mistaken for a lock.
        return (
            isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in _LOCK_FACTORIES
        )
    if isinstance(func, ast.Name):
        return func.id in {"Lock", "RLock"}
    return False


def _is_self_attribute(node: ast.expr, name: str | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (name is None or node.attr == name)
    )


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    return ""


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"}
    return False


_TERMINAL_STATEMENTS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class _FileLinter:
    def __init__(self, path: Path, display: str, report: Report) -> None:
        self.path = path
        self.display = display
        self.report = report

    def add(self, code: str, line: int, message: str, hint: str | None = None) -> None:
        self.report.add(
            code,
            Severity.ERROR,
            message,
            file=self.display,
            line=line,
            hint=hint,
        )

    # -- entry ---------------------------------------------------------

    def run(self) -> None:
        try:
            tree = ast.parse(
                self.path.read_text(encoding="utf-8"), filename=str(self.path)
            )
        except SyntaxError as exc:
            self.add("CL000", exc.lineno or 0, f"syntax error: {exc.msg}")
            return
        allow_state = any(
            self.display.endswith(suffix)
            for suffix in STATE_MUTATION_ALLOWLIST
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                self.add(
                    "CL001",
                    node.lineno,
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt",
                    hint="catch Exception (or something narrower)",
                )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_defaults(node)
            if not allow_state and isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "state"
                    ):
                        self.add(
                            "CL003",
                            node.lineno,
                            "direct '.state = ...' assignment bypasses the "
                            "StateMachine transition tables",
                            hint="route the change through "
                            "StateMachine.apply() (core/states.py)",
                        )
            if isinstance(node, ast.ClassDef):
                self._check_lock_discipline(node)
            self._check_dead_code(node)

    # -- CL002 ---------------------------------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.add(
                    "CL002",
                    default.lineno,
                    f"mutable default argument in {node.name}()",
                    hint="default to None and create the object inside "
                    "the function",
                )

    # -- CL004 ---------------------------------------------------------

    def _check_lock_discipline(self, node: ast.ClassDef) -> None:
        lock_attrs = self._lock_attributes(node)
        if not lock_attrs:
            return
        for method in node.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name.startswith("_"):
                continue  # includes __init__; see module docstring
            if any(
                _decorator_name(decorator) in _SYNCHRONIZED_DECORATORS
                for decorator in method.decorator_list
            ):
                continue
            self._check_method_writes(node.name, method, lock_attrs)

    def _lock_attributes(self, node: ast.ClassDef) -> set[str]:
        locks: set[str] = set()
        for statement in ast.walk(node):
            if isinstance(statement, ast.Assign) and _is_lock_factory_call(
                statement.value
            ):
                for target in statement.targets:
                    if _is_self_attribute(target):
                        locks.add(target.attr)  # type: ignore[union-attr]
        return locks

    def _check_method_writes(
        self,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> None:
        def guarded_by_lock(with_node: ast.With) -> bool:
            return any(
                _is_self_attribute(item.context_expr)
                and item.context_expr.attr in lock_attrs  # type: ignore[attr-defined]
                for item in with_node.items
            )

        def written_attr(statement: ast.stmt) -> tuple[str, int] | None:
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, ast.AugAssign):
                targets = [statement.target]
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                targets = [statement.target]
            for target in targets:
                # Unwrap item/slice writes: self._queue[k] = v
                while isinstance(target, ast.Subscript):
                    target = target.value
                if (
                    _is_self_attribute(target)
                    and target.attr.startswith("_")  # type: ignore[union-attr]
                    and target.attr not in lock_attrs  # type: ignore[union-attr]
                ):
                    return target.attr, statement.lineno  # type: ignore[union-attr]
            return None

        def scan(statements: Iterable[ast.stmt], locked: bool) -> None:
            for statement in statements:
                if isinstance(statement, ast.With):
                    scan(
                        statement.body,
                        locked or guarded_by_lock(statement),
                    )
                    continue
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # nested defs run later, not here
                write = None if locked else written_attr(statement)
                if write is not None:
                    attr, line = write
                    self.add(
                        "CL004",
                        line,
                        f"{class_name}.{method.name}() writes shared "
                        f"attribute 'self.{attr}' outside 'with "
                        f"self.{sorted(lock_attrs)[0]}:'",
                        hint="take the instance lock around shared-state "
                        "writes, or mark the method with a "
                        "*synchronized* decorator",
                    )
                # Recurse into nested blocks (if/for/while/try bodies).
                for field in ("body", "orelse", "finalbody", "handlers"):
                    block = getattr(statement, field, None)
                    if not block:
                        continue
                    if field == "handlers":
                        for handler in block:
                            scan(handler.body, locked)
                    else:
                        scan(block, locked)

        scan(method.body, locked=False)

    # -- CL005 ---------------------------------------------------------

    def _check_dead_code(self, node: ast.AST) -> None:
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if not isinstance(block, list) or not block:
                continue
            for index, statement in enumerate(block[:-1]):
                if isinstance(statement, _TERMINAL_STATEMENTS):
                    unreachable = block[index + 1]
                    self.add(
                        "CL005",
                        unreachable.lineno,
                        "unreachable code after "
                        f"'{type(statement).__name__.lower()}'",
                        hint="delete it or restructure the control flow",
                    )
                    break
        test = getattr(node, "test", None)
        if (
            isinstance(node, (ast.If, ast.While))
            and isinstance(test, ast.Constant)
            and test.value is False
        ):
            self.add(
                "CL005",
                node.lineno,
                "block guarded by a literal False never runs",
                hint="delete the block",
            )


def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[str | Path], root: str | Path | None = None
) -> Report:
    """Lint every ``.py`` file under ``paths``; returns one report."""
    base = Path(root) if root is not None else Path.cwd()
    report = Report()
    files = _python_files([Path(p) for p in paths])
    report.stats["files"] = len(files)
    for path in files:
        try:
            display = str(path.resolve().relative_to(base.resolve()))
        except ValueError:
            display = str(path)
        _FileLinter(path, display, report).run()
    return report
