"""Structured diagnostics shared by the workflow verifier and codelint.

A :class:`Diagnostic` is one finding: a stable code (``WF0xx`` for
workflow-specification findings, ``CL0xx`` for codebase-invariant
findings), a severity, a human-readable message, an optional location
(pattern/task/transition for workflow findings, file/line for code
findings) and an optional fix hint.

A :class:`Report` is an ordered collection of diagnostics with the small
amount of logic every consumer needs: severity filtering, exit-code
semantics (errors fail, warnings do not) and rendering as plain text or
JSON-ready dicts.  Analyzers *never* raise on findings — raising is the
business of the :mod:`repro.core.validation` compat wrapper alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make ``validate_pattern`` raise and the CLI exit
    non-zero; ``WARNING`` findings flag likely specification smells that
    remain executable; ``INFO`` findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Rank for sorting (errors first) without relying on enum order.
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    pattern: str | None = None
    task: str | None = None
    transition: str | None = None  # "source -> target" rendering
    file: str | None = None
    line: int | None = None
    hint: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def location(self) -> str:
        """Human-readable location prefix (may be empty)."""
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line else self.file
        parts = []
        if self.pattern is not None:
            parts.append(f"pattern {self.pattern!r}")
        if self.task is not None:
            parts.append(f"task {self.task!r}")
        if self.transition is not None:
            parts.append(f"transition {self.transition}")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict with ``None`` fields dropped."""
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        for key in ("pattern", "task", "transition", "file", "line", "hint"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    def render(self) -> str:
        location = self.location()
        prefix = f"{location}: " if location else ""
        text = f"{prefix}{self.severity.value} {self.code}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Report:
    """An ordered collection of diagnostics."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Free-form analyzer statistics (e.g. marking-exploration counters).
    stats: dict[str, Any] = field(default_factory=dict)

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        **location: Any,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, severity, message, **location)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)
        for key, value in other.stats.items():
            if isinstance(value, (int, float)) and key in self.stats:
                self.stats[key] = self.stats[key] + value
            else:
                self.stats[key] = value

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Whether the report carries no error-severity findings."""
        return not self.errors()

    def first_error(self) -> Diagnostic | None:
        for diagnostic in self.diagnostics:
            if diagnostic.is_error:
                return diagnostic
        return None

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered by severity (stable within a severity)."""
        return sorted(
            self.diagnostics, key=lambda d: _SEVERITY_RANK[d.severity]
        )

    def filtered(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> "Report":
        """A new report keeping only matching diagnostic codes.

        ``select`` and ``ignore`` are code prefixes (``CC``, ``CC00``,
        ``CC003``), matched case-insensitively the way ruff matches
        ``--select``: a diagnostic survives when it matches at least
        one selected prefix (all, if ``select`` is empty/None) and no
        ignored one.  ``ignore`` wins over ``select``.  Stats carry
        over unchanged plus a ``filtered_out`` count, so exit-code
        semantics (:attr:`ok`) reflect only what survived.
        """
        selected = [s.strip().upper() for s in (select or []) if s.strip()]
        ignored = [i.strip().upper() for i in (ignore or []) if i.strip()]

        def keep(diagnostic: Diagnostic) -> bool:
            code = diagnostic.code.upper()
            if ignored and any(code.startswith(i) for i in ignored):
                return False
            if selected:
                return any(code.startswith(s) for s in selected)
            return True

        report = Report(
            diagnostics=[d for d in self.diagnostics if keep(d)],
            stats=dict(self.stats),
        )
        dropped = len(self.diagnostics) - len(report.diagnostics)
        if dropped:
            report.stats["filtered_out"] = dropped
        return report

    def to_dicts(self) -> list[dict[str, Any]]:
        return [d.to_dict() for d in self.diagnostics]

    def render_text(self) -> str:
        if not self.diagnostics:
            return "no findings"
        lines = [d.render() for d in self.diagnostics]
        counts = ", ".join(
            f"{len(group)} {label}"
            for label, group in (
                ("error(s)", self.errors()),
                ("warning(s)", self.warnings()),
                (
                    "info",
                    [
                        d
                        for d in self.diagnostics
                        if d.severity is Severity.INFO
                    ],
                ),
            )
            if group
        )
        lines.append(counts)
        return "\n".join(lines)


def merge_reports(reports: Iterable[Report]) -> Report:
    """Fold several reports into one (used by registry-wide checks)."""
    merged = Report()
    for report in reports:
        merged.extend(report)
    return merged
