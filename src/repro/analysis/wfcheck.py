"""The workflow-pattern soundness verifier.

``check_pattern`` runs every static analysis we know over one
:class:`~repro.core.spec.WorkflowPattern` and returns a
:class:`~repro.analysis.diagnostics.Report` — it never raises on a
finding.  The legacy checks of :mod:`repro.core.validation` are
reproduced *first and in their historical order with byte-identical
messages*, so the compat wrapper can raise the first error-severity
diagnostic and remain indistinguishable from the old raise-on-first
validator.

Diagnostic codes
----------------

========  ========  ===========================================================
code      severity  meaning
========  ========  ===========================================================
WF001     error     pattern has no tasks
WF002     error     no initial task (every task has incoming transitions)
WF003     error     no final task (every task has outgoing transitions)
WF004     error     tasks unreachable from any initial task
WF005     error     cycle made purely of unconditional transitions
WF006     error     final task does not require authorization (§4.2)
WF007     error     sub-workflow reference cycle
WF008     error     unknown sub-workflow reference
WF009     error     unregistered experiment type (db-gated)
WF010     error     data transition without ExperimentTypeIO agreement
WF020     error     join can never fire with all inputs (AND-join deadlock)
WF021     warning   no forward path from a task to any final task
WF022     warning   some guard assignment leaves every final task dead
WF023     info      marking exploration skipped (too many distinct guards)
WF024     warning   task can never complete under any guard assignment
WF030     warning   contradictory condition — the transition is dead
WF031     warning   tautological condition — always true, never branches
WF032     warning   cycle conditional only through always-true conditions
WF033     info      condition name outside the engine's context roots
WF040     warning   unusually high default instance count
WF041     warning   multi-instance task with no declared outputs (db-gated)
WF042     info      sub-workflow boundary type flow not statically checkable
WF050     info      non-final task requires authorization
========  ========  ===========================================================

The join-soundness analysis (WF020/WF022/WF024) enumerates truth
assignments over the distinct guards of the pattern — a guard being one
``(source task, condition)`` pair, since the engine evaluates every
transition condition against its *source* task's results.  Assignments
that are infeasible under interval reasoning (``colonies >= 20`` and
``colonies < 20`` cannot both hold for the same experiment) are pruned,
and each surviving assignment is propagated through the forward
(non-back-edge) transition DAG with the engine's dead-path-elimination
semantics: a task completes when all incoming legs are decided and at
least one is live, and becomes dead when every leg is dead.  The
exploration is bounded by :data:`MAX_GUARDS`; larger patterns get a
WF023 info instead of an unsound answer.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.guards import (
    Atom,
    ConditionAnalysis,
    analyse,
    assignment_feasible,
    complementary,
)
from repro.core.conditions import Condition
from repro.core.spec import TaskDef, WorkflowPattern
from repro.minidb.predicates import AND, EQ

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.engine import Database

#: Exploration bound: patterns with more distinct guards than this skip
#: the marking analysis (2**MAX_GUARDS assignments is the hard ceiling).
MAX_GUARDS = 12

#: Default-instance counts above this draw a WF040 warning.
MAX_REASONABLE_INSTANCES = 100

#: Name roots the engine actually binds when evaluating conditions
#: (see ``WorkflowBean._condition_context``).
CONDITION_CONTEXT_ROOTS = frozenset({"experiment", "output", "task"})


# ---------------------------------------------------------------------------
# Graph scaffolding
# ---------------------------------------------------------------------------


class _Graph:
    """Precomputed adjacency so analyses stay O(V+E) on large patterns.

    The per-edge helpers on :class:`WorkflowPattern` rescan the whole
    transition list; at benchmark scale (5000 tasks) that quadratic cost
    dominates, so everything graph-shaped is derived once here.
    """

    def __init__(self, pattern: WorkflowPattern) -> None:
        self.pattern = pattern
        self.tasks = list(pattern.tasks)
        #: Distinct (source, target) pairs in first-seen order, with the
        #: parsed conditions of *every* transition between the pair (the
        #: engine requires all of them to hold for the leg to be live).
        self.pairs: dict[tuple[str, str], list[Condition]] = {}
        self.succ: dict[str, list[str]] = {name: [] for name in self.tasks}
        self.pred: dict[str, list[str]] = {name: [] for name in self.tasks}
        for transition in pattern.transitions:
            pair = (transition.source, transition.target)
            if pair not in self.pairs:
                self.pairs[pair] = []
                self.succ[transition.source].append(transition.target)
                self.pred[transition.target].append(transition.source)
            if transition.parsed_condition is not None:
                self.pairs[pair].append(transition.parsed_condition)
        self.initial = [
            name for name in self.tasks if not self.pred[name]
        ]
        self.final = [
            name for name in self.tasks if not self.succ[name]
        ]
        self._depths: dict[str, int] | None = None
        self._scc: dict[str, int] | None = None
        self._forward: dict[tuple[str, str], bool] | None = None

    # -- depths, SCCs, back-edges --------------------------------------

    def depths(self) -> dict[str, int]:
        if self._depths is None:
            sentinel = len(self.tasks) + 1
            depths = {name: sentinel for name in self.tasks}
            frontier = deque(self.initial)
            for name in self.initial:
                depths[name] = 0
            while frontier:
                current = frontier.popleft()
                for target in self.succ[current]:
                    if depths[current] + 1 < depths[target]:
                        depths[target] = depths[current] + 1
                        frontier.append(target)
            self._depths = depths
        return self._depths

    def scc_ids(self) -> dict[str, int]:
        """Tarjan strongly-connected components, iteratively."""
        if self._scc is not None:
            return self._scc
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        component: dict[str, int] = {}
        counter = 0
        components = 0
        for root in self.tasks:
            if root in index:
                continue
            work = [(root, iter(self.succ[root]))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for target in successors:
                    if target not in index:
                        index[target] = low[target] = counter
                        counter += 1
                        stack.append(target)
                        on_stack.add(target)
                        work.append((target, iter(self.succ[target])))
                        advanced = True
                        break
                    if target in on_stack:
                        low[node] = min(low[node], index[target])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component[member] = components
                        if member == node:
                            break
                    components += 1
        self._scc = component
        return component

    def is_back_edge(self, source: str, target: str) -> bool:
        """Same verdict as ``WorkflowPattern.is_back_edge``: the edge
        closes a cycle (endpoints share an SCC) and points upstream."""
        if self._forward is None:
            self._forward = {}
        cached = self._forward.get((source, target))
        if cached is not None:
            return cached
        scc = self.scc_ids()
        depths = self.depths()
        verdict = (
            scc[source] == scc[target] and depths[source] >= depths[target]
        )
        self._forward[(source, target)] = verdict
        return verdict

    def forward_pairs(self) -> list[tuple[str, str]]:
        return [
            pair for pair in self.pairs if not self.is_back_edge(*pair)
        ]

    def forward_topo_order(self) -> list[str]:
        """Topological order of the forward-edge DAG (always acyclic:
        any cycle in the full graph contains at least one back-edge)."""
        forward = self.forward_pairs()
        indegree = {name: 0 for name in self.tasks}
        succ: dict[str, list[str]] = {name: [] for name in self.tasks}
        for source, target in forward:
            indegree[target] += 1
            succ[source].append(target)
        ready = deque(
            name for name in self.tasks if indegree[name] == 0
        )
        order: list[str] = []
        while ready:
            current = ready.popleft()
            order.append(current)
            for target in succ[current]:
                indegree[target] -= 1
                if indegree[target] == 0:
                    ready.append(target)
        return order


# ---------------------------------------------------------------------------
# Legacy checks (byte-identical messages, historical order)
# ---------------------------------------------------------------------------


def _legacy_structure(
    pattern: WorkflowPattern, graph: _Graph, report: Report
) -> None:
    if not graph.initial:
        report.add(
            "WF002",
            Severity.ERROR,
            f"pattern {pattern.name!r} has no initial task (every task has "
            "incoming transitions)",
            pattern=pattern.name,
        )
    if not graph.final:
        report.add(
            "WF003",
            Severity.ERROR,
            f"pattern {pattern.name!r} has no final task (every task has "
            "outgoing transitions)",
            pattern=pattern.name,
        )
    reached = set(graph.initial)
    frontier = list(graph.initial)
    while frontier:
        current = frontier.pop()
        for target in graph.succ[current]:
            if target not in reached:
                reached.add(target)
                frontier.append(target)
    unreachable = set(pattern.tasks) - reached
    if unreachable:
        report.add(
            "WF004",
            Severity.ERROR,
            f"pattern {pattern.name!r}: tasks {sorted(unreachable)} are not "
            "reachable from any initial task",
            pattern=pattern.name,
        )


def _find_cycle(
    pattern: WorkflowPattern, edges: dict[str, list[str]]
) -> list[str] | None:
    """First cycle in ``edges`` under the historical DFS order.

    Iterative so benchmark-scale patterns (thousands of tasks) do not
    hit the interpreter recursion limit; visits nodes and neighbours in
    exactly the order the original recursive validator did, so the
    reported cycle (and hence the raised message) is identical.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in pattern.tasks}
    for root in pattern.tasks:
        if colour[root] != WHITE:
            continue
        colour[root] = GREY
        stack = [root]
        work = [(root, iter(edges[root]))]
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if colour[neighbour] == GREY:
                    start = stack.index(neighbour)
                    return stack[start:] + [neighbour]
                if colour[neighbour] == WHITE:
                    colour[neighbour] = GREY
                    stack.append(neighbour)
                    work.append((neighbour, iter(edges[neighbour])))
                    advanced = True
                    break
            if not advanced:
                work.pop()
                stack.pop()
                colour[node] = BLACK
    return None


def _legacy_unconditional_cycle(
    pattern: WorkflowPattern, report: Report
) -> None:
    edges: dict[str, list[str]] = {name: [] for name in pattern.tasks}
    for transition in pattern.transitions:
        if transition.condition is None:
            edges[transition.source].append(transition.target)
    cycle = _find_cycle(pattern, edges)
    if cycle is not None:
        report.add(
            "WF005",
            Severity.ERROR,
            f"pattern {pattern.name!r}: unconditional cycle "
            f"{' -> '.join(cycle)}; loops must contain a "
            "conditional transition",
            pattern=pattern.name,
            hint="label at least one transition of the loop with a condition",
        )


def _legacy_final_authorization(
    pattern: WorkflowPattern, graph: _Graph, report: Report
) -> None:
    unauthorized = [
        name
        for name in graph.final
        if not pattern.task(name).requires_authorization
    ]
    if unauthorized:
        report.add(
            "WF006",
            Severity.ERROR,
            f"pattern {pattern.name!r}: final tasks {sorted(unauthorized)} "
            "must require authorization to control workflow termination",
            pattern=pattern.name,
            hint="set requires_authorization=True (the builder does this "
            "automatically)",
        )


def _legacy_subworkflows(
    pattern: WorkflowPattern,
    registry: Mapping[str, WorkflowPattern],
    report: Report,
    seen: tuple[str, ...] = (),
) -> None:
    seen = seen + (pattern.name,)
    for task in pattern.tasks.values():
        if not task.is_subworkflow:
            continue
        child_name = task.subworkflow
        if child_name in seen:
            report.add(
                "WF007",
                Severity.ERROR,
                f"sub-workflow cycle: {' -> '.join(seen + (child_name,))}",
                pattern=pattern.name,
                task=task.name,
            )
            continue
        child = registry.get(child_name)
        if child is None:
            report.add(
                "WF008",
                Severity.ERROR,
                f"pattern {pattern.name!r}: task {task.name!r} references "
                f"unknown sub-workflow {child_name!r}",
                pattern=pattern.name,
                task=task.name,
            )
            continue
        _legacy_subworkflows(child, registry, report, seen)


def _boundary_type(
    task: TaskDef,
    registry: Mapping[str, WorkflowPattern] | None,
    output: bool,
) -> str | None:
    """Experiment type at a data-transition endpoint (see the historical
    ``core.validation._boundary_type`` for the resolution rules)."""
    if not task.is_subworkflow:
        return task.experiment_type
    if registry is None:
        return None
    child = registry.get(task.subworkflow or "")
    if child is None:
        return None
    boundary = child.final_tasks() if output else child.initial_tasks()
    if len(boundary) != 1:
        return None
    boundary_task = child.task(boundary[0])
    if boundary_task.is_subworkflow:
        return None
    return boundary_task.experiment_type


def _legacy_types(
    pattern: WorkflowPattern,
    db: "Database",
    registry: Mapping[str, WorkflowPattern] | None,
    report: Report,
) -> None:
    for task in pattern.tasks.values():
        if task.is_subworkflow:
            continue
        known = db.select_one(
            "ExperimentType", EQ("type_name", task.experiment_type)
        )
        if known is None:
            report.add(
                "WF009",
                Severity.ERROR,
                f"pattern {pattern.name!r}: task {task.name!r} references "
                f"unregistered experiment type {task.experiment_type!r}",
                pattern=pattern.name,
                task=task.name,
            )
    for transition in pattern.transitions:
        if not transition.is_data:
            continue
        source_task = pattern.task(transition.source)
        target_task = pattern.task(transition.target)
        for task, direction, output in (
            (source_task, "output", True),
            (target_task, "input", False),
        ):
            experiment_type = _boundary_type(task, registry, output=output)
            if experiment_type is None:
                continue
            row = db.select_one(
                "ExperimentTypeIO",
                AND(
                    EQ("experiment_type", experiment_type),
                    EQ("sample_type", transition.sample_type),
                    EQ("direction", direction),
                ),
            )
            if row is None:
                report.add(
                    "WF010",
                    Severity.ERROR,
                    f"pattern {pattern.name!r}: experiment type "
                    f"{experiment_type!r} does not declare "
                    f"{transition.sample_type!r} as an {direction} "
                    "(ExperimentTypeIO)",
                    pattern=pattern.name,
                    transition=f"{transition.source} -> {transition.target}",
                )


# ---------------------------------------------------------------------------
# Condition analyses (WF030/031/032/033)
# ---------------------------------------------------------------------------


def _check_conditions(
    pattern: WorkflowPattern, graph: _Graph, report: Report
) -> dict[str, ConditionAnalysis]:
    """Per-condition satisfiability; returns the analyses keyed by
    canonical unparse for reuse by the cycle refinement."""
    analyses: dict[str, ConditionAnalysis] = {}
    seen: set[tuple[str, str, str]] = set()
    for transition in pattern.transitions:
        condition = transition.parsed_condition
        if condition is None:
            continue
        key = condition.unparse()
        if key not in analyses:
            analyses[key] = analyse(condition)
        analysis = analyses[key]
        where = (transition.source, transition.target, key)
        if where in seen:
            continue  # one finding per (edge, condition), not per lane
        seen.add(where)
        location = {
            "pattern": pattern.name,
            "transition": f"{transition.source} -> {transition.target}",
        }
        if analysis.satisfiable() is False:
            report.add(
                "WF030",
                Severity.WARNING,
                f"condition {condition.source!r} can never be true; "
                "the transition is dead",
                hint="the comparisons are mutually exclusive — fix the "
                "guard or remove the transition",
                **location,
            )
        elif analysis.tautological() is True:
            report.add(
                "WF031",
                Severity.WARNING,
                f"condition {condition.source!r} is always true; it never "
                "branches",
                hint="drop the condition or make it discriminate",
                **location,
            )
        unknown = {
            name
            for name in condition.names()
            if name.split(".", 1)[0] not in CONDITION_CONTEXT_ROOTS
        }
        if unknown:
            report.add(
                "WF033",
                Severity.INFO,
                f"condition {condition.source!r} references "
                f"{sorted(unknown)} outside the engine's context roots "
                "(experiment.*, output.*, task.*); it will evaluate as "
                "not-satisfied at runtime",
                **location,
            )
    return analyses


def _check_effectively_unconditional_cycles(
    pattern: WorkflowPattern,
    analyses: dict[str, ConditionAnalysis],
    report: Report,
) -> None:
    """WF005 refinement: a cycle whose only conditions are tautologies
    is unconditional in practice (WF032)."""
    edges: dict[str, list[str]] = {name: [] for name in pattern.tasks}
    for transition in pattern.transitions:
        condition = transition.parsed_condition
        if condition is None:
            effectively_unconditional = True
        else:
            analysis = analyses.get(condition.unparse())
            effectively_unconditional = (
                analysis is not None and analysis.tautological() is True
            )
        if effectively_unconditional:
            edges[transition.source].append(transition.target)
    cycle = _find_cycle(pattern, edges)
    if cycle is not None:
        report.add(
            "WF032",
            Severity.WARNING,
            f"cycle {' -> '.join(cycle)} is conditional only through "
            "always-true conditions; it can never exit",
            pattern=pattern.name,
            hint="make the loop's exit condition falsifiable",
        )


# ---------------------------------------------------------------------------
# Marking exploration (WF020/021/022/023/024)
# ---------------------------------------------------------------------------


class _GuardVar:
    """One distinct (source task, condition) guard variable."""

    __slots__ = ("source", "key", "condition", "atom", "never_true", "always_true")

    def __init__(self, source: str, condition: Condition) -> None:
        self.source = source
        self.key = (source, condition.unparse())
        self.condition = condition
        analysis = ConditionAnalysis(condition)
        self.atom: Atom | None = analysis.single_interval()
        self.never_true = analysis.satisfiable() is False
        self.always_true = analysis.tautological() is True


def _guard_variables(graph: _Graph) -> dict[tuple[str, str], _GuardVar]:
    variables: dict[tuple[str, str], _GuardVar] = {}
    for (source, __), conditions in graph.pairs.items():
        for condition in conditions:
            key = (source, condition.unparse())
            if key not in variables:
                variables[key] = _GuardVar(source, condition)
    return variables


def _feasible_assignment(
    variables: list[_GuardVar], assignment: dict[tuple[str, str], bool]
) -> bool:
    """Joint feasibility: guards of the *same source task* constrain the
    same experiment results, so their intervals must be consistent;
    guards of different sources see different experiments and never
    conflict."""
    by_source: dict[str, list[tuple[Atom, bool]]] = {}
    for variable in variables:
        value = assignment[variable.key]
        if (value and variable.never_true) or (
            not value and variable.always_true
        ):
            return False
        if variable.atom is None:
            continue
        by_source.setdefault(variable.source, []).append(
            (variable.atom, value)
        )
    return all(
        assignment_feasible(valued) for valued in by_source.values()
    )


def _simulate(
    graph: _Graph,
    order: list[str],
    forward_pred: dict[str, list[str]],
    assignment: dict[tuple[str, str], bool],
) -> tuple[set[str], set[str]]:
    """Propagate one guard assignment through the forward DAG.

    Engine semantics with dead-path elimination, assuming instances
    succeed: a leg is live when its source completed and every guard on
    it is assigned true; a task completes when at least one leg is live
    and dies when all legs are dead.
    """
    completed: set[str] = set()
    dead: set[str] = set()
    for task in order:
        sources = forward_pred[task]
        if not sources:
            completed.add(task)
            continue
        live = 0
        for source in sources:
            if source in dead:
                continue
            conditions = graph.pairs[(source, task)]
            if all(
                assignment[(source, condition.unparse())]
                for condition in conditions
            ):
                live += 1
        if live:
            completed.add(task)
        else:
            dead.add(task)
    return completed, dead


def _render_assignment(
    assignment: dict[tuple[str, str], bool]
) -> str:
    return ", ".join(
        f"{source}:{text}={'true' if value else 'false'}"
        for (source, text), value in sorted(assignment.items())
    )


def _check_markings(
    pattern: WorkflowPattern, graph: _Graph, report: Report
) -> None:
    variables = _guard_variables(graph)
    if len(variables) > MAX_GUARDS:
        report.add(
            "WF023",
            Severity.INFO,
            f"pattern has {len(variables)} distinct guards; marking "
            f"exploration is bounded at {MAX_GUARDS} and was skipped",
            pattern=pattern.name,
        )
        report.stats["guards"] = len(variables)
        report.stats["assignments_explored"] = 0
        report.stats["states_visited"] = 0
        return

    order = graph.forward_topo_order()
    forward_pred: dict[str, list[str]] = {name: [] for name in graph.tasks}
    for source, target in graph.forward_pairs():
        forward_pred[target].append(source)
    joins = {
        task: sources
        for task, sources in forward_pred.items()
        if len(sources) >= 2
    }

    variable_list = list(variables.values())
    keys = [variable.key for variable in variable_list]
    ever_completed: set[str] = set()
    join_fully_live: set[str] = set()
    all_finals_dead_witness: dict[tuple[str, str], bool] | None = None
    explored = 0
    states = 0

    for mask in range(1 << len(keys)):
        assignment = {
            key: bool(mask >> index & 1)
            for index, key in enumerate(keys)
        }
        if not _feasible_assignment(variable_list, assignment):
            continue
        explored += 1
        completed, dead = _simulate(graph, order, forward_pred, assignment)
        states += len(graph.tasks)
        ever_completed |= completed
        for join, sources in joins.items():
            if join in join_fully_live:
                continue
            # Fully live: every source done AND every leg's guards taken.
            if all(source in completed for source in sources) and all(
                assignment[(source, condition.unparse())]
                for source in sources
                for condition in graph.pairs[(source, join)]
            ):
                join_fully_live.add(join)
        if (
            all_finals_dead_witness is None
            and graph.final
            and all(name in dead for name in graph.final)
        ):
            all_finals_dead_witness = assignment

    report.stats["guards"] = len(variables)
    report.stats["assignments_explored"] = explored
    report.stats["states_visited"] = states

    # WF020: a join that can never see all its inputs, unless the
    # infeasibility is the signature of an intentional exclusive branch
    # (a proven-complementary guard pair upstream of the join).
    for join, sources in sorted(joins.items()):
        if join in join_fully_live:
            continue
        if _exclusive_branch_justified(graph, variable_list, join):
            continue
        report.add(
            "WF020",
            Severity.ERROR,
            f"pattern {pattern.name!r}: join task {join!r} can never "
            f"execute with all {len(sources)} incoming branches "
            f"({sorted(sources)}); no feasible guard assignment "
            "completes every branch",
            pattern=pattern.name,
            task=join,
            hint="make the branch guards complementary for an exclusive "
            "choice, or remove the impossible input",
        )

    # WF024: tasks that no feasible assignment completes.
    if explored:
        for task in graph.tasks:
            if task not in ever_completed:
                report.add(
                    "WF024",
                    Severity.WARNING,
                    f"task {task!r} can never complete under any feasible "
                    "guard assignment",
                    pattern=pattern.name,
                    task=task,
                )

    # WF022: some assignment kills every final task.
    if all_finals_dead_witness is not None:
        rendered = _render_assignment(all_finals_dead_witness)
        report.add(
            "WF022",
            Severity.WARNING,
            f"under guard assignment [{rendered}] every final task is "
            "dead; the workflow would never complete",
            pattern=pattern.name,
            hint="add an unconditional fallback path to a final task",
        )


def _exclusive_branch_justified(
    graph: _Graph, variables: list[_GuardVar], join: str
) -> bool:
    """Whether a never-fully-live join is explained by a complementary
    guard pair upstream of it (branch-and-rejoin, Fig. 1)."""
    ancestors = _forward_ancestors(graph, join)
    relevant = [
        variable
        for variable in variables
        if any(
            target == join or target in ancestors
            for (source, target) in graph.pairs
            if source == variable.source
            and variable.key[1]
            in [c.unparse() for c in graph.pairs[(source, target)]]
        )
    ]
    for index, first in enumerate(relevant):
        for second in relevant[index + 1 :]:
            if first.source != second.source:
                continue
            if complementary(first.condition, second.condition):
                return True
    return False


def _forward_ancestors(graph: _Graph, task: str) -> set[str]:
    forward_pred: dict[str, list[str]] = {name: [] for name in graph.tasks}
    for source, target in graph.forward_pairs():
        forward_pred[target].append(source)
    ancestors: set[str] = set()
    frontier = [task]
    while frontier:
        current = frontier.pop()
        for source in forward_pred[current]:
            if source not in ancestors:
                ancestors.add(source)
                frontier.append(source)
    return ancestors


def _check_orphans(
    pattern: WorkflowPattern, graph: _Graph, report: Report
) -> None:
    """WF021: a task whose forward paths never reach a final task keeps
    its tokens invisible to workflow-termination accounting."""
    reaches_final: set[str] = set(graph.final)
    forward_pred: dict[str, list[str]] = {name: [] for name in graph.tasks}
    for source, target in graph.forward_pairs():
        forward_pred[target].append(source)
    frontier = list(graph.final)
    while frontier:
        current = frontier.pop()
        for source in forward_pred[current]:
            if source not in reaches_final:
                reaches_final.add(source)
                frontier.append(source)
    for task in graph.tasks:
        if task not in reaches_final:
            report.add(
                "WF021",
                Severity.WARNING,
                f"task {task!r} has no forward path to any final task; "
                "its completion cannot contribute to workflow termination",
                pattern=pattern.name,
                task=task,
                hint="connect the task (directly or transitively) to a "
                "final task with forward transitions",
            )


# ---------------------------------------------------------------------------
# Instance / sub-workflow / authorization lint (WF040/041/042/050)
# ---------------------------------------------------------------------------


def _check_instances(
    pattern: WorkflowPattern,
    db: "Database | None",
    report: Report,
) -> None:
    for task in pattern.tasks.values():
        if task.default_instances > MAX_REASONABLE_INSTANCES:
            report.add(
                "WF040",
                Severity.WARNING,
                f"task {task.name!r} declares {task.default_instances} "
                f"default instances (> {MAX_REASONABLE_INSTANCES}); every "
                "eligibility pass creates and dispatches all of them",
                pattern=pattern.name,
                task=task.name,
            )
        if (
            db is not None
            and not task.is_subworkflow
            and task.default_instances > 1
        ):
            output = db.select_one(
                "ExperimentTypeIO",
                AND(
                    EQ("experiment_type", task.experiment_type),
                    EQ("direction", "output"),
                ),
            )
            if output is None:
                report.add(
                    "WF041",
                    Severity.WARNING,
                    f"task {task.name!r} runs {task.default_instances} "
                    "parallel instances but its experiment type "
                    f"{task.experiment_type!r} declares no outputs; the "
                    "instances produce nothing to merge downstream",
                    pattern=pattern.name,
                    task=task.name,
                )


def _check_subworkflow_boundaries(
    pattern: WorkflowPattern,
    registry: Mapping[str, WorkflowPattern],
    report: Report,
) -> None:
    for transition in pattern.transitions:
        if not transition.is_data:
            continue
        for endpoint, output in (
            (transition.source, True),
            (transition.target, False),
        ):
            task = pattern.task(endpoint)
            if not task.is_subworkflow:
                continue
            if registry.get(task.subworkflow or "") is None:
                continue  # already a WF008 error
            if _boundary_type(task, registry, output=output) is None:
                report.add(
                    "WF042",
                    Severity.INFO,
                    f"data transition carries {transition.sample_type!r} "
                    f"across sub-workflow task {endpoint!r} whose "
                    "boundary has several tasks; the type flow is checked "
                    "when the child pattern is validated, not here",
                    pattern=pattern.name,
                    transition=f"{transition.source} -> {transition.target}",
                )


def _check_authorization_gates(
    pattern: WorkflowPattern, graph: _Graph, report: Report
) -> None:
    final = set(graph.final)
    for task in pattern.tasks.values():
        if task.requires_authorization and task.name not in final:
            report.add(
                "WF050",
                Severity.INFO,
                f"task {task.name!r} requires authorization but is not a "
                "final task; §4.2 only mandates gating workflow "
                "termination — confirm the extra gate is intentional",
                pattern=pattern.name,
                task=task.name,
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_pattern(
    pattern: WorkflowPattern,
    db: "Database | None" = None,
    registry: Mapping[str, WorkflowPattern] | None = None,
) -> Report:
    """Run every analysis over ``pattern``; never raises on findings."""
    report = Report()
    report.stats["tasks"] = len(pattern.tasks)
    report.stats["transitions"] = len(pattern.transitions)
    if not pattern.tasks:
        report.add(
            "WF001",
            Severity.ERROR,
            f"pattern {pattern.name!r} has no tasks",
            pattern=pattern.name,
        )
        return report

    graph = _Graph(pattern)
    _legacy_structure(pattern, graph, report)
    _legacy_unconditional_cycle(pattern, report)
    _legacy_final_authorization(pattern, graph, report)
    if registry is not None:
        _legacy_subworkflows(pattern, registry, report)
    if db is not None:
        _legacy_types(pattern, db, registry, report)

    analyses = _check_conditions(pattern, graph, report)
    _check_effectively_unconditional_cycles(pattern, analyses, report)

    structurally_sound = not any(
        diagnostic.code in ("WF002", "WF003", "WF004", "WF005")
        for diagnostic in report.errors()
    )
    if structurally_sound:
        _check_markings(pattern, graph, report)
        _check_orphans(pattern, graph, report)

    _check_instances(pattern, db, report)
    if registry is not None:
        _check_subworkflow_boundaries(pattern, registry, report)
    _check_authorization_gates(pattern, graph, report)
    return report


def check_registry(
    registry: Mapping[str, WorkflowPattern],
    db: "Database | None" = None,
) -> dict[str, Report]:
    """Check every pattern of a registry (each sees the full registry
    for sub-workflow resolution)."""
    return {
        name: check_pattern(registry[name], db=db, registry=registry)
        for name in sorted(registry)
    }


def check_patterns(
    patterns: Iterable[WorkflowPattern],
    db: "Database | None" = None,
) -> dict[str, Report]:
    """Check a collection of patterns, using the collection itself as
    the sub-workflow registry."""
    registry = {pattern.name: pattern for pattern in patterns}
    return check_registry(registry, db=db)


def first_error(
    report: Report,
) -> Diagnostic | None:
    """Convenience passthrough used by the validation compat wrapper."""
    return report.first_error()
