"""Whole-program concurrency analysis ("conlint", stdlib ``ast``).

Where :mod:`repro.analysis.codelint`'s CL004 reasons about one class at
a time, this pass reasons about the *lock graph of the whole tree*: it
extracts every lock object (``threading.Lock``/``RLock``/``Condition``
and :class:`~repro.obs.prof.locks.ProfiledLock`, including locks that
are re-wrapped through the ``broker.install_lock_profiler`` /
``Database.wrap_mutex`` seams), resolves ``with self._lock:`` regions
through direct call edges (annotation-based local type inference makes
``state.cond`` resolve to ``_QueueState.cond``), and checks the
resulting interprocedural acquisition graph:

========  ===========================================================
code      invariant
========  ===========================================================
CC001     the lock-acquisition graph is acyclic — a cycle is a
          potential lock-order inversion (deadlock) between threads
CC002     locks defined in a module annotated ``# conlint:
          never-nested`` are never held together (e.g. the broker's
          registry lock vs. its per-queue conditions)
CC003     no blocking call — ``time.sleep``, ``os.fsync``, socket
          I/O, broker ``receive``, a condition wait on *another*
          object's condition — runs while a lock is held, directly or
          through any resolvable call chain.  Every CC003 site is also
          a future ``await``-under-lock hazard (async readiness).
CC004     no ``Condition.wait()`` without a timeout — an unbounded
          wait can never be cancelled, drained or made async
CC005     shared mutable state is guarded: module-level containers in
          threading-aware modules are only mutated under a lock, and a
          class whose method runs as a ``threading.Thread`` target
          owns a lock before writing shared ``self._*`` attributes
========  ===========================================================

Annotation syntax (comments read from the source, reasons mandatory)::

    # conlint: never-nested
        module directive: all locks *defined* in this module form a
        group that must never nest (in either order)
    # conlint: allow=CC003 -- <why this site is safe>
        suppress the listed codes for findings reported on this line
    # conlint: module-allow=CC003 -- <why>
        suppress the listed codes for the whole module
    def f(...):  # conlint: blocking -- <why>
        treat ``f`` as a blocking primitive (used where the blocking
        call hides behind an uninspectable callable, e.g. the
        ``GroupCommitter`` fsync barrier)

An ``allow``/``module-allow``/``blocking`` directive without a
``-- reason`` is itself a finding (CC000) — justifications are part of
the contract, the gate stays honest.

The analysis is deliberately *resolution-based*: a ``with`` item or a
call that cannot be resolved to a known lock or analyzed function is
skipped, never guessed, so the pass produces no speculative edges (a
false cycle would poison the CC001 gate).  Its blind spots — locks
passed through untyped parameters, dynamic dispatch — are exactly the
seams the runtime :class:`~repro.obs.prof.witness.LockOrderWitness`
cross-validates under the chaos suite.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.diagnostics import Report, Severity

__all__ = [
    "ConcurrencyAnalysis",
    "RUNTIME_LOCK_NAMES",
    "StaticOrder",
    "analyze_paths",
    "lint_concurrency",
    "static_lock_order",
]

#: Constructor names that create a lock-like object.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "ProfiledLock"}

#: Constructors whose result is a *condition* (waitable) lock.
_CONDITION_FACTORIES = {"Condition"}

#: Decorators that wrap a method body in ``with self.<lock>:``.
_SYNCHRONIZED_DECORATORS = {"_synchronized", "synchronized"}

#: Mutating container methods for the CC005 shared-state check.
_MUTATOR_METHODS = {
    "append", "appendleft", "add", "update", "setdefault", "insert",
    "extend", "remove", "discard", "pop", "popleft", "popitem", "clear",
}

#: ``module.attr`` calls that block the calling thread.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep",
    ("os", "fsync"): "os.fsync",
    ("os", "fdatasync"): "os.fdatasync",
    ("select", "select"): "select.select",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "check_call"): "subprocess.check_call",
    ("subprocess", "check_output"): "subprocess.check_output",
}

#: Method calls that block when the receiver resolves to these classes.
_BLOCKING_RECEIVER_METHODS = {
    ("MessageBroker", "receive"): "broker receive",
    ("Consumer", "receive"): "consumer receive",
}

#: Static lock node → the name the runtime witness sees for it (the
#: names the ``install_lock_profiler`` / ``wrap_mutex`` seams assign).
#: ``*`` is a per-instance wildcard (one node per queue at runtime).
RUNTIME_LOCK_NAMES = {
    "repro.messaging.broker.MessageBroker._lock": "broker.registry",
    "repro.messaging.broker._QueueState.cond": "broker.queue.*",
    "repro.minidb.engine.Database._mutex": "minidb.mutex",
    "repro.minidb.mvcc.SnapshotManager._lock": "minidb.version",
}

_DIRECTIVE_RE = re.compile(r"#\s*conlint:\s*(?P<body>[^#]*?)\s*$")
_CODE_LIST_RE = re.compile(r"^[A-Z]{2}\d{3}(,[A-Z]{2}\d{3})*$")


# ----------------------------------------------------------------------
# Collected program model
# ----------------------------------------------------------------------


@dataclass
class _Directives:
    """Per-module ``# conlint:`` directives parsed from comments."""

    never_nested: bool = False
    module_allow: set[str] = field(default_factory=set)
    #: line → set of allowed codes.
    line_allow: dict[int, set[str]] = field(default_factory=dict)
    #: def lines carrying a blocking-primitive directive.
    blocking_defs: set[int] = field(default_factory=set)
    #: (line, message) of malformed directives (missing reason …).
    malformed: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class _Acquisition:
    lock: str
    line: int
    held: tuple[str, ...]


@dataclass
class _CallSite:
    callees: tuple[str, ...]
    line: int
    held: tuple[str, ...]


@dataclass
class _BlockingOp:
    kind: str
    line: int
    held: tuple[str, ...]


@dataclass
class _GlobalWrite:
    var: str
    line: int


@dataclass
class _FunctionInfo:
    qualname: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    acquires: list[_Acquisition] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    blocking: list[_BlockingOp] = field(default_factory=list)
    global_writes: list[_GlobalWrite] = field(default_factory=list)
    #: Marked as a blocking primitive by a directive.
    is_blocking_primitive: bool = False

    @property
    def short(self) -> str:
        return self.qualname.rsplit(".", 2)[-1] if self.cls is None else (
            ".".join(self.qualname.rsplit(".", 2)[-2:])
        )


@dataclass
class _ClassInfo:
    qualname: str
    module: str
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    condition_attrs: set[str] = field(default_factory=set)
    #: attribute → class qualname (from ``__init__`` and annotations).
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, _FunctionInfo] = field(default_factory=dict)
    #: Methods used as ``threading.Thread(target=self.m)`` targets.
    thread_targets: set[str] = field(default_factory=set)


@dataclass
class _ModuleInfo:
    name: str
    path: Path
    display: str
    tree: ast.Module
    directives: _Directives
    #: import alias → dotted target ("threading", "repro.durable.X" …).
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level lock variable → lock node id.
    module_locks: dict[str, str] = field(default_factory=dict)
    #: module-level mutable container variables → definition line.
    mutable_globals: dict[str, int] = field(default_factory=dict)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)
    functions: dict[str, _FunctionInfo] = field(default_factory=dict)
    #: Whether the module creates locks/threads at all (CC005 scope).
    threading_aware: bool = False


@dataclass
class ConcurrencyAnalysis:
    """Everything the pass learned: findings plus the lock graph."""

    report: Report
    #: Directed acquisition edges (lock A held while acquiring lock B).
    edges: set[tuple[str, str]] = field(default_factory=set)
    #: edge → example sites ("file:line [via f]").
    edge_sites: dict[tuple[str, str], list[str]] = field(
        default_factory=dict
    )
    #: never-nested groups: module name → lock node ids defined there.
    never_nested: dict[str, set[str]] = field(default_factory=dict)
    #: every lock node discovered.
    locks: set[str] = field(default_factory=set)


@dataclass
class StaticOrder:
    """The static order projected onto runtime witness lock names."""

    edges: set[tuple[str, str]]
    groups: list[set[str]]


# ----------------------------------------------------------------------
# Parsing helpers
# ----------------------------------------------------------------------


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _iter_comments(source: str) -> Iterable[tuple[int, str]]:
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than regexing raw lines) keeps directives inside
    string literals — docstring examples, generated text — inert.
    """
    import io
    import tokenize

    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def _anchor_line(lines: list[str], lineno: int) -> int:
    """The code line a standalone-comment directive applies to.

    A directive sharing its line with code anchors there; a directive on
    its own comment line (possibly followed by more comment lines
    continuing the justification) anchors to the next non-blank,
    non-comment line — the statement it annotates.
    """
    text = lines[lineno - 1].strip() if lineno <= len(lines) else ""
    if not text.startswith("#"):
        return lineno
    for offset in range(lineno, len(lines)):
        candidate = lines[offset].strip()
        if candidate and not candidate.startswith("#"):
            return offset + 1
    return lineno


def _parse_directives(source: str) -> _Directives:
    directives = _Directives()
    source_lines = source.splitlines()
    for lineno, line in _iter_comments(source):
        match = _DIRECTIVE_RE.search(line)
        if match is None:
            continue
        body = match.group("body").strip()
        if body == "never-nested":
            directives.never_nested = True
            continue
        head, sep, reason = body.partition("--")
        head = head.strip()
        reason = reason.strip()
        if head == "blocking":
            if not sep or not reason:
                directives.malformed.append(
                    (lineno, "'blocking' directive needs a '-- reason'")
                )
                continue
            directives.blocking_defs.add(_anchor_line(source_lines, lineno))
            continue
        for prefix, sink in (
            ("allow=", "line"),
            ("module-allow=", "module"),
        ):
            if head.startswith(prefix):
                codes = head[len(prefix):].strip()
                if not _CODE_LIST_RE.match(codes):
                    directives.malformed.append(
                        (lineno, f"unparseable code list {codes!r}")
                    )
                elif not sep or not reason:
                    directives.malformed.append(
                        (lineno, f"{head!r} needs a '-- justification'")
                    )
                elif sink == "line":
                    anchor = _anchor_line(source_lines, lineno)
                    directives.line_allow.setdefault(anchor, set()).update(
                        codes.split(",")
                    )
                else:
                    directives.module_allow.update(codes.split(","))
                break
        else:
            directives.malformed.append(
                (lineno, f"unknown conlint directive {body!r}")
            )
    return directives


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_lock_factory(node: ast.expr) -> tuple[bool, bool]:
    """(is a lock constructor, is a condition constructor)."""
    if not isinstance(node, ast.Call):
        return False, False
    func = node.func
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in _LOCK_FACTORIES
        ):
            return True, func.attr in _CONDITION_FACTORIES
        return False, False
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        # Bare Condition() is ambiguous with the workflow condition
        # language — require the threading qualifier for conditions,
        # accept bare Lock/RLock/ProfiledLock.
        if func.id in _CONDITION_FACTORIES:
            return False, False
        return True, False
    return False, False


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in {"dict", "list", "set", "deque", "defaultdict",
                        "OrderedDict", "Counter", "bytearray"}
    return False


def _annotation_class(node: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    else:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - malformed annotation
            return None
    text = text.strip().strip("'\"")
    # "X | None" / "Optional[X]" → X; generics → their head.
    parts = [p.strip() for p in text.split("|")]
    candidates = [p for p in parts if p and p != "None"]
    if len(candidates) != 1:
        return None
    name = candidates[0]
    if name.startswith("Optional[") and name.endswith("]"):
        name = name[len("Optional["):-1].strip()
    if "[" in name:
        name = name.split("[", 1)[0]
    return name or None


# ----------------------------------------------------------------------
# Pass 1: collect the program model
# ----------------------------------------------------------------------


class _Collector:
    def __init__(self, module: _ModuleInfo) -> None:
        self.module = module

    def run(self) -> None:
        module = self.module
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, ast.Assign):
                self._module_assign(node)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and isinstance(
                    node.target, ast.Name
                ):
                    self._module_assign_one(node.target, node.value)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _FunctionInfo(
                    qualname=f"{module.name}.{node.name}",
                    module=module.name,
                    cls=None,
                    node=node,
                )
                module.functions[node.name] = info
        if module.module_locks:
            module.threading_aware = True
        for source in ast.walk(module.tree):
            if isinstance(source, ast.Call) and _call_name(source.func) in (
                "Thread",
            ):
                module.threading_aware = True

    def _module_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._module_assign_one(target, node.value)

    def _module_assign_one(self, target: ast.Name, value: ast.expr) -> None:
        module = self.module
        is_lock, __ = _is_lock_factory(value)
        if is_lock:
            module.module_locks[target.id] = f"{module.name}.{target.id}"
        elif _is_mutable_literal(value):
            module.mutable_globals[target.id] = target.lineno

    def _collect_class(self, node: ast.ClassDef) -> None:
        module = self.module
        info = _ClassInfo(
            qualname=f"{module.name}.{node.name}",
            module=module.name,
            node=node,
        )
        module.classes[node.name] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = _FunctionInfo(
                    qualname=f"{info.qualname}.{item.name}",
                    module=module.name,
                    cls=info.qualname,
                    node=item,
                )
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                cls_name = _annotation_class(item.annotation)
                if cls_name:
                    info.attr_types[item.target.id] = cls_name
        # Attribute discovery: lock creations, attribute types, thread
        # targets — anywhere in the class body (``__init__`` mostly).
        for statement in ast.walk(node):
            if isinstance(statement, ast.Assign):
                self._class_assign(info, statement)
            elif isinstance(statement, ast.AnnAssign):
                self._class_ann_assign(info, statement)
            elif isinstance(statement, ast.Call):
                self._maybe_thread_target(info, statement)
        # ``self.x = param`` where the parameter is annotated: the
        # dominant way collaborators arrive (``db: Database`` into the
        # workflow bean, locks into ProfiledLock, …).
        for method in info.methods.values():
            arguments = method.node.args
            param_types = {}
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            ):
                cls_name = _annotation_class(arg.annotation)
                if cls_name is not None:
                    param_types[arg.arg] = cls_name
            if not param_types:
                continue
            for statement in ast.walk(method.node):
                if not (
                    isinstance(statement, ast.Assign)
                    and isinstance(statement.value, ast.Name)
                    and statement.value.id in param_types
                ):
                    continue
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types.setdefault(
                            target.attr, param_types[statement.value.id]
                        )
        if info.lock_attrs:
            module.threading_aware = True

    def _class_assign(self, info: _ClassInfo, node: ast.Assign) -> None:
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            is_lock, is_cond = _is_lock_factory(node.value)
            if is_lock:
                info.lock_attrs.add(target.attr)
                if is_cond:
                    info.condition_attrs.add(target.attr)
                continue
            # Re-wrap seam: ``self.X = wrap(..., self.X, ...)`` keeps
            # the lock's identity (install_lock_profiler, wrap_mutex).
            if isinstance(node.value, ast.Call) and any(
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
                and arg.attr == target.attr
                for arg in node.value.args
            ):
                continue
            if isinstance(node.value, ast.Call):
                cls_name = _call_name(node.value.func)
                if cls_name and cls_name[0].isupper():
                    info.attr_types.setdefault(target.attr, cls_name)

    def _class_ann_assign(self, info: _ClassInfo, node: ast.AnnAssign) -> None:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            cls_name = _annotation_class(node.annotation)
            if cls_name:
                info.attr_types.setdefault(target.attr, cls_name)
            if node.value is not None:
                is_lock, is_cond = _is_lock_factory(node.value)
                if is_lock:
                    info.lock_attrs.add(target.attr)
                    if is_cond:
                        info.condition_attrs.add(target.attr)

    @staticmethod
    def _maybe_thread_target(info: _ClassInfo, node: ast.Call) -> None:
        if _call_name(node.func) != "Thread":
            return
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            value = keyword.value
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                info.thread_targets.add(value.attr)


# ----------------------------------------------------------------------
# Name / type resolution
# ----------------------------------------------------------------------


class _Program:
    """The whole-program index pass 2 resolves against."""

    def __init__(self, modules: list[_ModuleInfo]) -> None:
        self.modules = {m.name: m for m in modules}
        self.classes: dict[str, _ClassInfo] = {}
        self.functions: dict[str, _FunctionInfo] = {}
        for module in modules:
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
            for function in module.functions.values():
                self.functions[function.qualname] = function

    def resolve_class(self, name: str, module: _ModuleInfo) -> _ClassInfo | None:
        """Resolve a bare class name in ``module``'s namespace."""
        if name in module.classes:
            return module.classes[name]
        target = module.imports.get(name)
        if target is not None and target in self.classes:
            return self.classes[target]
        if target is not None:
            # ``from x import y`` where x re-exports: try x.y's tail in
            # every module (unique-match only, no guessing).
            tail = target.rsplit(".", 1)[-1]
            matches = [
                c for q, c in self.classes.items()
                if q.rsplit(".", 1)[-1] == tail
            ]
            if len(matches) == 1:
                return matches[0]
        return None

    def resolve_function(
        self, name: str, module: _ModuleInfo
    ) -> _FunctionInfo | None:
        if name in module.functions:
            return module.functions[name]
        target = module.imports.get(name)
        if target is None:
            return None
        if target in self.functions:
            return self.functions[target]
        tail = target.rsplit(".", 1)[-1]
        matches = [
            f for q, f in self.functions.items()
            if f.cls is None and q.rsplit(".", 1)[-1] == tail
        ]
        if len(matches) == 1:
            return matches[0]
        return None


class _Scope:
    """Types visible inside one function: params, locals, ``self``."""

    def __init__(
        self,
        program: _Program,
        module: _ModuleInfo,
        cls: _ClassInfo | None,
        func: _FunctionInfo,
    ) -> None:
        self.program = program
        self.module = module
        self.cls = cls
        self.func = func
        self.local_types: dict[str, str] = {}
        node = func.node
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            cls_name = _annotation_class(arg.annotation)
            if cls_name is not None:
                resolved = program.resolve_class(cls_name, module)
                if resolved is not None:
                    self.local_types[arg.arg] = resolved.qualname
        if cls is not None and args and args[0].arg == "self":
            self.local_types["self"] = cls.qualname
        # Two settle passes: assignments may chain through call results.
        for __ in range(2):
            for statement in ast.walk(node):
                if isinstance(statement, ast.Assign):
                    value_type = self.type_of(statement.value)
                    if value_type is None:
                        continue
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            self.local_types[target.id] = value_type
                elif isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    cls_name = _annotation_class(statement.annotation)
                    if cls_name is not None:
                        resolved = program.resolve_class(cls_name, module)
                        if resolved is not None:
                            self.local_types[statement.target.id] = (
                                resolved.qualname
                            )

    # -- type queries --------------------------------------------------

    def type_of(self, node: ast.expr) -> str | None:
        """Class qualname of an expression, or ``None``."""
        if isinstance(node, ast.Name):
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value)
            if base is None:
                return None
            cls = self.program.classes.get(base)
            if cls is None:
                return None
            attr_cls = cls.attr_types.get(node.attr)
            if attr_cls is None:
                return None
            owner = self.program.modules.get(cls.module)
            if owner is None:
                return None
            resolved = self.program.resolve_class(attr_cls, owner)
            return resolved.qualname if resolved is not None else None
        if isinstance(node, ast.Call):
            callee = self.resolve_callees(node.func)
            if len(callee) == 1:
                target = self.program.functions[callee[0]]
                cls_name = _annotation_class(target.node.returns)
                if cls_name is not None:
                    owner = self.program.modules.get(target.module)
                    if owner is not None:
                        resolved = self.program.resolve_class(
                            cls_name, owner
                        )
                        if resolved is not None:
                            return resolved.qualname
            # Constructor call?
            name = _call_name(node.func)
            if name and name[0].isupper():
                resolved = self.program.resolve_class(name, self.module)
                if resolved is not None:
                    return resolved.qualname
        return None

    # -- lock / call resolution ---------------------------------------

    def resolve_lock(self, node: ast.expr) -> str | None:
        """Lock node id of an expression, or ``None`` when unknown."""
        if isinstance(node, ast.Name):
            return self.module.module_locks.get(node.id)
        if isinstance(node, ast.Attribute):
            base_type: str | None = None
            if isinstance(node.value, ast.Name):
                base_type = self.local_types.get(node.value.id)
            else:
                base_type = self.type_of(node.value)
            if base_type is not None:
                cls = self.program.classes.get(base_type)
                if cls is not None and node.attr in cls.lock_attrs:
                    return f"{cls.qualname}.{node.attr}"
        return None

    def lock_is_condition(self, lock_id: str) -> bool:
        cls_qualname, __, attr = lock_id.rpartition(".")
        cls = self.program.classes.get(cls_qualname)
        return cls is not None and attr in cls.condition_attrs

    def resolve_callees(self, func: ast.expr) -> tuple[str, ...]:
        """Qualnames of analyzed functions a call may dispatch to."""
        if isinstance(func, ast.Name):
            target = self.program.resolve_function(func.id, self.module)
            return (target.qualname,) if target is not None else ()
        if isinstance(func, ast.Attribute):
            base_type = self.type_of(func.value)
            if base_type is not None:
                cls = self.program.classes.get(base_type)
                if cls is not None and func.attr in cls.methods:
                    return (cls.methods[func.attr].qualname,)
        return ()


# ----------------------------------------------------------------------
# Pass 2: per-function scan (acquisitions, calls, blocking ops)
# ----------------------------------------------------------------------


class _FunctionScanner(ast.NodeVisitor):
    def __init__(
        self,
        scope: _Scope,
        report_cc004,
    ) -> None:
        self.scope = scope
        self.func = scope.func
        self.held: list[str] = []
        self.report_cc004 = report_cc004
        node = self.func.node
        if self.scope.cls is not None and any(
            self._decorator_name(d) in _SYNCHRONIZED_DECORATORS
            for d in node.decorator_list
        ):
            lock_attrs = sorted(self.scope.cls.lock_attrs)
            preferred = "_lock" if "_lock" in lock_attrs else (
                lock_attrs[0] if lock_attrs else None
            )
            if preferred is not None:
                lock_id = f"{self.scope.cls.qualname}.{preferred}"
                self.func.acquires.append(
                    _Acquisition(lock_id, node.lineno, ())
                )
                self.held.append(lock_id)

    def _allowed(self, code: str, line: int) -> bool:
        """Detection-time suppression: an ``allow`` on a blocking site
        removes it from the interprocedural summary too, so transitive
        callers are not asked to re-justify an already-justified site."""
        directives = self.scope.module.directives
        return code in directives.module_allow or code in (
            directives.line_allow.get(line, ())
        )

    @staticmethod
    def _decorator_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Call):
            return _FunctionScanner._decorator_name(node.func)
        return ""

    def run(self) -> None:
        for statement in self.func.node.body:
            self.visit(statement)

    # -- structure -----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs run later, under whoever calls them

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            lock = self.scope.resolve_lock(item.context_expr)
            if lock is not None:
                self.func.acquires.append(
                    _Acquisition(lock, node.lineno, tuple(self.held))
                )
                self.held.append(lock)
                acquired.append(lock)
        for statement in node.body:
            self.visit(statement)
        for lock in reversed(acquired):
            self.held.remove(lock)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._classify_call(node)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call) -> None:
        func = node.func
        held = tuple(self.held)
        # module-level blocking primitives: time.sleep, os.fsync, …
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            target_module = self.scope.module.imports.get(base, base)
            kind = _BLOCKING_MODULE_CALLS.get((target_module, func.attr))
            if kind is not None:
                if not self._allowed("CC003", node.lineno):
                    self.func.blocking.append(
                        _BlockingOp(kind, node.lineno, held)
                    )
                return
        # Condition waits.
        if isinstance(func, ast.Attribute) and func.attr == "wait":
            lock = self.scope.resolve_lock(func.value)
            if lock is not None:
                has_timeout = bool(node.args) or any(
                    k.arg == "timeout"
                    and not (
                        isinstance(k.value, ast.Constant)
                        and k.value.value is None
                    )
                    for k in node.keywords
                )
                if not has_timeout:
                    self.report_cc004(lock, node.lineno)
                others = tuple(h for h in held if h != lock)
                if others and not self._allowed("CC003", node.lineno):
                    self.func.blocking.append(
                        _BlockingOp(
                            f"wait on {lock.rsplit('.', 2)[-2]}."
                            f"{lock.rsplit('.', 1)[-1]} "
                            "(releases only its own lock)",
                            node.lineno,
                            others,
                        )
                    )
                return
        # Receiver-typed blocking methods (broker/consumer receive).
        if isinstance(func, ast.Attribute):
            base_type = self.scope.type_of(func.value)
            if base_type is not None:
                key = (base_type.rsplit(".", 1)[-1], func.attr)
                kind = _BLOCKING_RECEIVER_METHODS.get(key)
                if kind is not None:
                    if not self._allowed("CC003", node.lineno):
                        self.func.blocking.append(
                            _BlockingOp(kind, node.lineno, held)
                        )
                    return
        # Mutating method on a module-level container (CC005).
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.scope.module.mutable_globals
            and not self.held
            and not self._allowed("CC005", node.lineno)
        ):
            self.func.global_writes.append(
                _GlobalWrite(func.value.id, node.lineno)
            )
        # Plain call edges into analyzed functions.
        callees = self.scope.resolve_callees(func)
        if callees:
            self.func.calls.append(_CallSite(callees, node.lineno, held))

    # -- shared-state writes (CC005) ------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._global_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._global_target(node.target, node.lineno)
        self.generic_visit(node)

    def _global_target(self, target: ast.expr, line: int) -> None:
        if self.held:
            return
        # ``GLOBAL[key] = value`` / ``GLOBAL[key] += value``.
        while isinstance(target, ast.Subscript):
            target = target.value
            if (
                isinstance(target, ast.Name)
                and target.id in self.scope.module.mutable_globals
                and not self._allowed("CC005", line)
            ):
                self.func.global_writes.append(
                    _GlobalWrite(target.id, line)
                )
                return


# ----------------------------------------------------------------------
# The analysis driver
# ----------------------------------------------------------------------


def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


class _Analyzer:
    def __init__(self, modules: list[_ModuleInfo]) -> None:
        self.modules = modules
        self.program = _Program(modules)
        self.report = Report()
        self.suppressed = 0
        self.analysis = ConcurrencyAnalysis(report=self.report)
        self._display: dict[str, tuple[str, _Directives]] = {
            m.name: (m.display, m.directives) for m in modules
        }

    # -- finding emission with suppression ----------------------------

    def add(
        self,
        code: str,
        module: str,
        line: int,
        message: str,
        hint: str | None = None,
    ) -> None:
        display, directives = self._display.get(module, (module, None))
        if directives is not None:
            if code in directives.module_allow or code in (
                directives.line_allow.get(line, ())
            ):
                self.suppressed += 1
                return
        self.report.add(
            code,
            Severity.ERROR,
            message,
            file=display,
            line=line,
            hint=hint,
        )

    # -- run ----------------------------------------------------------

    def run(self) -> ConcurrencyAnalysis:
        for module in self.modules:
            for lineno, message in module.directives.malformed:
                self.add(
                    "CC000",
                    module.name,
                    lineno,
                    f"malformed conlint directive: {message}",
                    hint="directives need a '-- justification'",
                )
        self._scan_functions()
        self._propagate()
        self._edges_and_cc002()
        self._cc001_cycles()
        self._cc003_blocking()
        self._cc005_shared_state()
        analysis = self.analysis
        for module in self.modules:
            analysis.locks.update(module.module_locks.values())
            for cls in module.classes.values():
                analysis.locks.update(
                    f"{cls.qualname}.{attr}" for attr in cls.lock_attrs
                )
            if module.directives.never_nested:
                group = set(module.module_locks.values())
                for cls in module.classes.values():
                    group.update(
                        f"{cls.qualname}.{attr}" for attr in cls.lock_attrs
                    )
                if group:
                    analysis.never_nested[module.name] = group
        self.report.stats.update(
            {
                "files": len(self.modules),
                "locks": len(analysis.locks),
                "functions": len(self.program.functions),
                "edges": len(analysis.edges),
                "suppressed": self.suppressed,
            }
        )
        return analysis

    def _scan_functions(self) -> None:
        for module in self.modules:
            for function in self._all_functions(module):
                cls = (
                    self.program.classes.get(function.cls)
                    if function.cls is not None
                    else None
                )
                scope = _Scope(self.program, module, cls, function)
                if function.node.lineno in module.directives.blocking_defs:
                    function.is_blocking_primitive = True

                def report_cc004(
                    lock: str,
                    line: int,
                    _module: str = module.name,
                ) -> None:
                    self.add(
                        "CC004",
                        _module,
                        line,
                        f"unbounded wait on condition '{lock}' "
                        "(no timeout)",
                        hint="pass a timeout so the wait can observe "
                        "shutdown, injected clocks and (future) "
                        "cancellation",
                    )

                _FunctionScanner(scope, report_cc004).run()

    def _all_functions(self, module: _ModuleInfo) -> list[_FunctionInfo]:
        functions = list(module.functions.values())
        for cls in module.classes.values():
            functions.extend(cls.methods.values())
        return functions

    # -- interprocedural summaries ------------------------------------

    def _propagate(self) -> None:
        functions = self.program.functions
        self.summary_locks: dict[str, set[str]] = {
            q: {a.lock for a in f.acquires} for q, f in functions.items()
        }
        self.summary_block: dict[str, dict[str, str]] = {}
        for qualname, function in functions.items():
            block: dict[str, str] = {}
            for op in function.blocking:
                block.setdefault(op.kind, f"{op.kind}@{function.short}")
            if function.is_blocking_primitive:
                block.setdefault(
                    "annotated-blocking",
                    f"{function.short} (annotated blocking)",
                )
            self.summary_block[qualname] = block
        changed = True
        while changed:
            changed = False
            for qualname, function in functions.items():
                locks = self.summary_locks[qualname]
                block = self.summary_block[qualname]
                for call in function.calls:
                    for callee in call.callees:
                        if callee == qualname:
                            continue
                        callee_locks = self.summary_locks.get(callee, set())
                        if not callee_locks <= locks:
                            locks |= callee_locks
                            changed = True
                        for kind, chain in self.summary_block.get(
                            callee, {}
                        ).items():
                            if kind not in block:
                                tail = chain.split(" -> ", 1)[-1]
                                block[kind] = (
                                    f"{functions[callee].short} -> {tail}"
                                    if "->" in chain or "@" in chain
                                    else chain
                                )
                                changed = True

    # -- CC001 / CC002 -------------------------------------------------

    def _edges_and_cc002(self) -> None:
        analysis = self.analysis
        never_nested_locks: dict[str, str] = {}
        for module in self.modules:
            if not module.directives.never_nested:
                continue
            for name, lock in module.module_locks.items():
                never_nested_locks[lock] = module.name
            for cls in module.classes.values():
                for attr in cls.lock_attrs:
                    never_nested_locks[f"{cls.qualname}.{attr}"] = (
                        module.name
                    )

        def add_edge(
            held: str, acquired: str, module: str, line: int, via: str | None
        ) -> None:
            if held == acquired:
                return  # re-entrant RLock holds are legal
            edge = (held, acquired)
            site = f"{self._display[module][0]}:{line}" + (
                f" [via {via}]" if via else ""
            )
            sites = analysis.edge_sites.setdefault(edge, [])
            if len(sites) < 4:
                sites.append(site)
            if edge in analysis.edges:
                return
            analysis.edges.add(edge)
            owner = never_nested_locks.get(held)
            if owner is not None and never_nested_locks.get(acquired) == owner:
                self.add(
                    "CC002",
                    module,
                    line,
                    f"locks '{held}' and '{acquired}' are declared "
                    f"never-nested (module {owner}) but are held "
                    "together here"
                    + (f" via {via}" if via else ""),
                    hint="settle the first lock's work and release it "
                    "before touching the second",
                )

        for module in self.modules:
            for function in self._all_functions(module):
                for acquisition in function.acquires:
                    for held in acquisition.held:
                        add_edge(
                            held,
                            acquisition.lock,
                            module.name,
                            acquisition.line,
                            None,
                        )
                for call in function.calls:
                    if not call.held:
                        continue
                    for callee in call.callees:
                        for lock in self.summary_locks.get(callee, ()):
                            for held in call.held:
                                add_edge(
                                    held,
                                    lock,
                                    module.name,
                                    call.line,
                                    self.program.functions[callee].short,
                                )

    def _cc001_cycles(self) -> None:
        edges = self.analysis.edges
        adjacency: dict[str, set[str]] = {}
        for held, acquired in edges:
            adjacency.setdefault(held, set()).add(acquired)
            adjacency.setdefault(acquired, set())
        # Tarjan's SCC, iterative.
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(adjacency[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, neighbours = work[-1]
                advanced = False
                for neighbour in neighbours:
                    if neighbour not in index:
                        index[neighbour] = low[neighbour] = counter[0]
                        counter[0] += 1
                        stack.append(neighbour)
                        on_stack.add(neighbour)
                        work.append(
                            (neighbour, iter(sorted(adjacency[neighbour])))
                        )
                        advanced = True
                        break
                    if neighbour in on_stack:
                        low[node] = min(low[node], index[neighbour])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)

        for component in sccs:
            members = set(component)
            witnesses = [
                f"{held} -> {acquired} at {sites[0]}"
                for (held, acquired), sites in sorted(
                    self.analysis.edge_sites.items()
                )
                if held in members and acquired in members
            ]
            first = witnesses[0] if witnesses else ""
            module, line = self._site_location(first)
            self.add(
                "CC001",
                module,
                line,
                "lock-order cycle (potential deadlock): "
                + " / ".join(witnesses[:6]),
                hint="impose one global acquisition order (or merge "
                "the locks) so no two threads can wait on each other",
            )

    def _site_location(self, witness: str) -> tuple[str, int]:
        """(module, line) back out of an edge witness string."""
        match = re.search(r"at ([^\s]+):(\d+)", witness)
        if match is None:
            return (self.modules[0].name if self.modules else "?", 0)
        display, line = match.group(1), int(match.group(2))
        for module in self.modules:
            if module.display == display:
                return module.name, line
        return (self.modules[0].name if self.modules else "?", 0)

    # -- CC003 ---------------------------------------------------------

    def _cc003_blocking(self) -> None:
        for module in self.modules:
            for function in self._all_functions(module):
                for op in function.blocking:
                    if not op.held:
                        continue
                    self.add(
                        "CC003",
                        module.name,
                        op.line,
                        f"blocking call ({op.kind}) while holding "
                        f"{', '.join(repr(h) for h in op.held)}",
                        hint="move the blocking work outside the lock "
                        "(settle state, release, then block) — any "
                        "lock held here also blocks the future async "
                        "hot path",
                    )
                for call in function.calls:
                    if not call.held:
                        continue
                    for callee in call.callees:
                        block = self.summary_block.get(callee, {})
                        if not block:
                            continue
                        kind, chain = sorted(block.items())[0]
                        self.add(
                            "CC003",
                            module.name,
                            call.line,
                            "call chain blocks "
                            f"({chain}) while holding "
                            f"{', '.join(repr(h) for h in call.held)}",
                            hint="hoist the blocking step out of the "
                            "locked region or make the callee "
                            "non-blocking",
                        )
                        break  # one finding per call site is enough

    # -- CC005 ---------------------------------------------------------

    def _cc005_shared_state(self) -> None:
        for module in self.modules:
            if module.threading_aware:
                for function in self._all_functions(module):
                    for write in function.global_writes:
                        self.add(
                            "CC005",
                            module.name,
                            write.line,
                            f"module-level mutable '{write.var}' is "
                            "written without a guarding lock in a "
                            "threading-aware module",
                            hint="guard the write with a lock (or "
                            "justify GIL-atomicity with an allow "
                            "annotation)",
                        )
            for cls in module.classes.values():
                if not cls.thread_targets or cls.lock_attrs:
                    continue
                for name, method in cls.methods.items():
                    if name == "__init__":
                        continue
                    relevant = (
                        name in cls.thread_targets
                        or not name.startswith("_")
                    )
                    if not relevant:
                        continue
                    for statement in ast.walk(method.node):
                        targets: list[ast.expr] = []
                        if isinstance(statement, ast.Assign):
                            targets = list(statement.targets)
                        elif isinstance(statement, ast.AugAssign):
                            targets = [statement.target]
                        for target in targets:
                            while isinstance(target, ast.Subscript):
                                target = target.value
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and target.attr.startswith("_")
                            ):
                                self.add(
                                    "CC005",
                                    module.name,
                                    statement.lineno,
                                    f"{cls.qualname.rsplit('.', 1)[-1]}."
                                    f"{name}() writes 'self."
                                    f"{target.attr}' but the class runs "
                                    "a thread target "
                                    f"({', '.join(sorted(cls.thread_targets))}) "
                                    "and owns no lock",
                                    hint="add an instance lock and take "
                                    "it around shared-state writes",
                                )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def analyze_paths(
    paths: Iterable[str | Path], root: str | Path | None = None
) -> ConcurrencyAnalysis:
    """Run the concurrency analysis over every ``.py`` under ``paths``."""
    base = Path(root) if root is not None else Path.cwd()
    modules: list[_ModuleInfo] = []
    parse_failures = Report()
    for path in _python_files([Path(p) for p in paths]):
        try:
            display = str(path.resolve().relative_to(base.resolve()))
        except ValueError:
            display = str(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            parse_failures.add(
                "CC000",
                Severity.ERROR,
                f"syntax error: {exc.msg}",
                file=display,
                line=exc.lineno or 0,
            )
            continue
        module = _ModuleInfo(
            name=_module_name(path),
            path=path,
            display=display,
            tree=tree,
            directives=_parse_directives(source),
        )
        _Collector(module).run()
        modules.append(module)
    analyzer = _Analyzer(modules)
    analysis = analyzer.run()
    analysis.report.diagnostics[:0] = parse_failures.diagnostics
    return analysis


def lint_concurrency(
    paths: Iterable[str | Path], root: str | Path | None = None
) -> Report:
    """The findings alone (CLI/servlet entry point)."""
    return analyze_paths(paths, root=root).report


def _default_src_paths() -> list[Path]:
    import repro

    return [Path(repro.__file__).resolve().parent]


def static_lock_order(
    paths: Iterable[str | Path] | None = None,
) -> StaticOrder:
    """The static acquisition order among *witnessable* locks.

    Projects the interprocedural lock graph onto the runtime lock names
    the profiling seams assign (:data:`RUNTIME_LOCK_NAMES`), for the
    :class:`~repro.obs.prof.witness.LockOrderWitness` to assert observed
    acquisition orders against.
    """
    analysis = analyze_paths(
        paths if paths is not None else _default_src_paths()
    )
    edges = {
        (RUNTIME_LOCK_NAMES[a], RUNTIME_LOCK_NAMES[b])
        for a, b in analysis.edges
        if a in RUNTIME_LOCK_NAMES and b in RUNTIME_LOCK_NAMES
    }
    groups = []
    for lock_ids in analysis.never_nested.values():
        group = {
            RUNTIME_LOCK_NAMES[lock_id]
            for lock_id in lock_ids
            if lock_id in RUNTIME_LOCK_NAMES
        }
        if len(group) > 1:
            groups.append(group)
    return StaticOrder(edges=edges, groups=groups)
