"""Decision support over transition conditions (satisfiability lite).

The verifier needs three judgements about the little boolean language of
:mod:`repro.core.conditions`:

* is a single condition **contradictory** (never true — its transition is
  dead) or **tautological** (always true — sibling branches starve)?
* are two conditions **complements** of each other (``colonies >= 20``
  vs. ``colonies < 20``) — the signature of an intentional exclusive
  branch that rejoins downstream?
* is a joint truth **assignment** over several guards feasible at all
  (``x > 1`` and ``x < 0`` can never both hold for the same reading)?

All three reduce to interval reasoning over *atoms*: comparisons of one
dotted name against a numeric literal.  Anything richer (arithmetic,
string equality, bare boolean lookups) is treated as a free boolean —
the analysis stays sound for the judgements above because free atoms
never rule an assignment out; it merely becomes less precise.

This module walks the private ``_Node`` AST of ``core.conditions``
directly; both live in this repository and evolve together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.conditions import (
    Condition,
    _BoolOp,
    _Comparison,
    _Literal,
    _Lookup,
    _Node,
    _Not,
)

#: Enumeration cap: conditions with more distinct atoms than this are not
#: analysed (the verifier reports the truncation; see WF023).
MAX_ATOMS = 10

# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------

#: One interval: (lo, lo_strict, hi, hi_strict); strict == open endpoint.
_Interval = tuple[float, bool, float, bool]

_FULL: _Interval = (-math.inf, True, math.inf, True)


def _interval_empty(interval: _Interval) -> bool:
    lo, lo_strict, hi, hi_strict = interval
    if lo > hi:
        return True
    return lo == hi and (lo_strict or hi_strict)


def _interval_intersect(a: _Interval, b: _Interval) -> _Interval:
    alo, alos, ahi, ahis = a
    blo, blos, bhi, bhis = b
    if alo > blo or (alo == blo and alos):
        lo, los = alo, alos
    else:
        lo, los = blo, blos
    if ahi < bhi or (ahi == bhi and ahis):
        hi, his = ahi, ahis
    else:
        hi, his = bhi, bhis
    return (lo, los, hi, his)


@dataclass(frozen=True)
class IntervalSet:
    """A union of disjoint intervals over the reals."""

    intervals: tuple[_Interval, ...]

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls((_FULL,))

    @classmethod
    def from_comparison(cls, operator: str, value: float) -> "IntervalSet":
        if operator == "<":
            return cls(((-math.inf, True, value, True),))
        if operator == "<=":
            return cls(((-math.inf, True, value, False),))
        if operator == ">":
            return cls(((value, True, math.inf, True),))
        if operator == ">=":
            return cls(((value, False, math.inf, True),))
        if operator == "==":
            return cls(((value, False, value, False),))
        if operator == "!=":
            return cls(
                (
                    (-math.inf, True, value, True),
                    (value, True, math.inf, True),
                )
            )
        raise ValueError(f"unknown comparison operator {operator!r}")

    def normalized(self) -> "IntervalSet":
        kept = [i for i in self.intervals if not _interval_empty(i)]
        kept.sort()
        return IntervalSet(tuple(kept))

    @property
    def empty(self) -> bool:
        return not self.normalized().intervals

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = [
            _interval_intersect(a, b)
            for a in self.intervals
            for b in other.intervals
        ]
        return IntervalSet(tuple(pieces)).normalized()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.normalized().intervals == other.normalized().intervals

    def __hash__(self) -> int:
        return hash(self.normalized().intervals)


_COMPLEMENT_OP = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}

_FLIPPED_OP = {
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
    "==": "==",
    "!=": "!=",
}


# ---------------------------------------------------------------------------
# Atoms and formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A boolean leaf of a condition formula.

    ``path``/``true_set`` are populated only for interval-analysable
    atoms (``name op number``); free atoms carry just their key.
    """

    key: str
    path: str | None = None
    true_set: IntervalSet | None = None

    @property
    def false_set(self) -> IntervalSet | None:
        if self.true_set is None or self.path is None:
            return None
        # Complement within the reals: rebuild from the stored key is
        # fragile, so complement structurally by subtracting from FULL.
        pieces: list[_Interval] = []
        boundary = -math.inf
        boundary_open = True
        for lo, lo_strict, hi, hi_strict in sorted(self.true_set.intervals):
            pieces.append((boundary, boundary_open, lo, not lo_strict))
            boundary, boundary_open = hi, not hi_strict
        pieces.append((boundary, boundary_open, math.inf, True))
        return IntervalSet(tuple(pieces)).normalized()


#: Formula nodes: ("const", bool) | ("atom", key) | ("not", f)
#: | ("and", (f, ...)) | ("or", (f, ...))
Formula = tuple


def _numeric(node: _Node) -> float | None:
    if isinstance(node, _Literal) and not isinstance(node.value, bool):
        if isinstance(node.value, (int, float)):
            return float(node.value)
    return None


def _atom_for_comparison(node: _Comparison) -> Atom:
    left_path = (
        ".".join(node.left.path) if isinstance(node.left, _Lookup) else None
    )
    right_path = (
        ".".join(node.right.path) if isinstance(node.right, _Lookup) else None
    )
    left_num = _numeric(node.left)
    right_num = _numeric(node.right)
    if left_path is not None and right_num is not None:
        operator, path, value = node.operator, left_path, right_num
    elif right_path is not None and left_num is not None:
        operator, path, value = _FLIPPED_OP[node.operator], right_path, left_num
    else:
        return Atom(key=node.unparse())
    canonical = f"{path} {operator} {value!r}"
    return Atom(
        key=canonical,
        path=path,
        true_set=IntervalSet.from_comparison(operator, value),
    )


class ConditionAnalysis:
    """A condition lifted into a boolean formula over atoms."""

    def __init__(self, condition: Condition) -> None:
        self.condition = condition
        self.atoms: dict[str, Atom] = {}
        self.formula: Formula = self._lift(condition._ast)

    # -- formula construction ------------------------------------------

    def _register(self, atom: Atom) -> Formula:
        self.atoms.setdefault(atom.key, atom)
        return ("atom", atom.key)

    def _lift(self, node: _Node) -> Formula:
        if isinstance(node, _Literal):
            if isinstance(node.value, bool):
                return ("const", node.value)
            return self._register(Atom(key=node.unparse()))
        if isinstance(node, _Comparison):
            return self._register(_atom_for_comparison(node))
        if isinstance(node, _Not):
            return ("not", self._lift(node.operand))
        if isinstance(node, _BoolOp):
            return (
                node.operator,
                tuple(self._lift(op) for op in node.operands),
            )
        # Bare lookups and arithmetic in boolean position: free atoms.
        return self._register(Atom(key=node.unparse()))

    # -- evaluation ----------------------------------------------------

    def _evaluate(self, formula: Formula, assignment: dict[str, bool]) -> bool:
        kind = formula[0]
        if kind == "const":
            return formula[1]
        if kind == "atom":
            return assignment[formula[1]]
        if kind == "not":
            return not self._evaluate(formula[1], assignment)
        if kind == "and":
            return all(self._evaluate(f, assignment) for f in formula[1])
        return any(self._evaluate(f, assignment) for f in formula[1])

    def _assignments(self):
        keys = sorted(self.atoms)
        for mask in range(1 << len(keys)):
            yield {
                key: bool(mask >> index & 1)
                for index, key in enumerate(keys)
            }

    def _feasible(self, assignment: dict[str, bool]) -> bool:
        return assignment_feasible(
            (self.atoms[key], value) for key, value in assignment.items()
        )

    # -- public judgements ---------------------------------------------

    def satisfiable(self) -> bool | None:
        """Can the condition ever be true?  ``None`` when too large."""
        if len(self.atoms) > MAX_ATOMS:
            return None
        return any(
            self._evaluate(self.formula, assignment)
            for assignment in self._assignments()
            if self._feasible(assignment)
        )

    def tautological(self) -> bool | None:
        """Is the condition true under every feasible assignment?"""
        if len(self.atoms) > MAX_ATOMS:
            return None
        return all(
            self._evaluate(self.formula, assignment)
            for assignment in self._assignments()
            if self._feasible(assignment)
        )

    def single_interval(self) -> Atom | None:
        """The sole interval atom when the formula is exactly one atom
        (or its negation — returned with true/false sets swapped)."""
        formula = self.formula
        negated = False
        while formula[0] == "not":
            negated = not negated
            formula = formula[1]
        if formula[0] != "atom":
            return None
        atom = self.atoms[formula[1]]
        if atom.true_set is None or atom.path is None:
            return None
        if not negated:
            return atom
        false_set = atom.false_set
        assert false_set is not None
        return Atom(
            key=f"not ({atom.key})", path=atom.path, true_set=false_set
        )


def assignment_feasible(
    valued_atoms: Any,
) -> bool:
    """Whether a truth assignment over interval atoms is consistent.

    ``valued_atoms`` yields ``(Atom, bool)`` pairs; atoms sharing a
    ``path`` constrain the same quantity, so their chosen interval sets
    must intersect.  Free atoms impose nothing.
    """
    by_path: dict[str, IntervalSet] = {}
    for atom, value in valued_atoms:
        if atom.path is None or atom.true_set is None:
            continue
        chosen = atom.true_set if value else atom.false_set
        assert chosen is not None
        current = by_path.get(atom.path, IntervalSet.full())
        current = current.intersect(chosen)
        if current.empty:
            return False
        by_path[atom.path] = current
    return True


def analyse(condition: Condition) -> ConditionAnalysis:
    return ConditionAnalysis(condition)


def complementary(a: Condition, b: Condition) -> bool:
    """Whether ``a`` and ``b`` are provable complements (a ≡ ¬b).

    Only the single-comparison case is proven (``x >= c`` vs ``x < c``)
    — exactly the shape of intentional exclusive branches.  Anything
    more complex conservatively returns False.
    """
    atom_a = ConditionAnalysis(a).single_interval()
    atom_b = ConditionAnalysis(b).single_interval()
    if atom_a is None or atom_b is None:
        return False
    if atom_a.path != atom_b.path:
        return False
    false_a = atom_a.false_set
    return false_a is not None and false_a == atom_b.true_set
