"""Static analysis for Exp-WF (DESIGN.md §9).

Two prongs:

* :mod:`repro.analysis.wfcheck` — the workflow-pattern soundness
  verifier (multi-diagnostic, non-throwing; ``validate_pattern`` is a
  thin raising wrapper over it);
* :mod:`repro.analysis.codelint` — the codebase invariant linter
  (state-machine discipline, lock discipline, bare excepts, mutable
  defaults, dead code).

Run both from the command line via ``python -m repro.analysis``.
"""

from repro.analysis.codelint import lint_paths
from repro.analysis.diagnostics import (
    Diagnostic,
    Report,
    Severity,
    merge_reports,
)
from repro.analysis.wfcheck import (
    MAX_GUARDS,
    check_pattern,
    check_patterns,
    check_registry,
)

__all__ = [
    "Diagnostic",
    "MAX_GUARDS",
    "Report",
    "Severity",
    "check_pattern",
    "check_patterns",
    "check_registry",
    "lint_paths",
    "merge_reports",
]
