"""Static analysis for Exp-WF (DESIGN.md §9 and §14).

Three prongs:

* :mod:`repro.analysis.wfcheck` — the workflow-pattern soundness
  verifier (multi-diagnostic, non-throwing; ``validate_pattern`` is a
  thin raising wrapper over it);
* :mod:`repro.analysis.codelint` — the codebase invariant linter
  (state-machine discipline, lock discipline, bare excepts, mutable
  defaults, dead code);
* :mod:`repro.analysis.concurrency` — the whole-program concurrency
  analyzer ("conlint"): interprocedural lock-acquisition graph with
  cycle/never-nested checks, blocking-calls-under-lock and unguarded
  shared-state lints, plus the static lock order the runtime
  :class:`~repro.obs.prof.witness.LockOrderWitness` asserts against.

Run them from the command line via ``python -m repro.analysis``.
"""

from repro.analysis.codelint import lint_paths
from repro.analysis.concurrency import (
    ConcurrencyAnalysis,
    StaticOrder,
    analyze_paths,
    lint_concurrency,
    static_lock_order,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Report,
    Severity,
    merge_reports,
)
from repro.analysis.wfcheck import (
    MAX_GUARDS,
    check_pattern,
    check_patterns,
    check_registry,
)

__all__ = [
    "ConcurrencyAnalysis",
    "Diagnostic",
    "MAX_GUARDS",
    "Report",
    "Severity",
    "StaticOrder",
    "analyze_paths",
    "check_pattern",
    "check_patterns",
    "check_registry",
    "lint_concurrency",
    "lint_paths",
    "merge_reports",
    "static_lock_order",
]
