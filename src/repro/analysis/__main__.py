"""Command-line front end: ``python -m repro.analysis``.

Subcommands::

    python -m repro.analysis wfcheck protein         # built-in lab
    python -m repro.analysis wfcheck some.module     # scan a module
    python -m repro.analysis codelint src            # invariant linter
    python -m repro.analysis conlint src/repro       # concurrency lints

``wfcheck`` accepts either the name of a built-in workload (``protein``,
``synthetic``) or a dotted module path; the module is imported and
scanned for module-level :class:`WorkflowPattern` objects, dicts of
patterns, and zero-argument ``*_patterns()`` factories.  Every
subcommand supports ``--json``, exits non-zero when any error-severity
diagnostic survives filtering, and honours ``--select``/``--ignore``
diagnostic-code prefixes (ruff-style: ``--select CC`` keeps only
concurrency findings, ``--ignore CC005`` gates a new code out while the
tree is being brought clean) so CI can adopt new codes incrementally.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from typing import Any, Mapping

from repro.analysis.codelint import lint_paths
from repro.analysis.concurrency import lint_concurrency
from repro.analysis.diagnostics import Report
from repro.analysis.wfcheck import check_registry
from repro.core.spec import WorkflowPattern


def _builtin_protein() -> tuple[Mapping[str, WorkflowPattern], Any]:
    """The Fig. 1 protein lab: registry + database for type checks."""
    from repro.core.datamodel import install_workflow_datamodel
    from repro.core.persistence import pattern_registry
    from repro.weblims import build_expdb
    from repro.workloads.protein import (
        build_protein_patterns,
        install_protein_schema,
    )

    app = build_expdb()
    install_workflow_datamodel(app.db)
    install_protein_schema(app)
    build_protein_patterns(app)
    return pattern_registry(app.db), app.db


def _builtin_synthetic() -> tuple[Mapping[str, WorkflowPattern], Any]:
    """Pattern-only synthetic shapes (no database)."""
    from repro.workloads.generator import synthetic_patterns

    patterns = synthetic_patterns()
    return {pattern.name: pattern for pattern in patterns}, None


_BUILTIN_TARGETS = {
    "protein": _builtin_protein,
    "synthetic": _builtin_synthetic,
}


def _scan_module(
    target: str,
) -> tuple[Mapping[str, WorkflowPattern], Any]:
    module = importlib.import_module(target)
    registry: dict[str, WorkflowPattern] = {}
    for name in dir(module):
        if name.startswith("_"):
            continue
        value = getattr(module, name)
        if isinstance(value, WorkflowPattern):
            registry[value.name] = value
        elif isinstance(value, dict) and all(
            isinstance(item, WorkflowPattern) for item in value.values()
        ) and value:
            for item in value.values():
                registry[item.name] = item
        elif callable(value) and name.endswith("_patterns"):
            try:
                produced = value()
            except TypeError:
                continue  # needs arguments — not a zero-arg factory
            if isinstance(produced, WorkflowPattern):
                registry[produced.name] = produced
            elif isinstance(produced, (list, tuple)):
                for item in produced:
                    if isinstance(item, WorkflowPattern):
                        registry[item.name] = item
            elif isinstance(produced, dict):
                for item in produced.values():
                    if isinstance(item, WorkflowPattern):
                        registry[item.name] = item
    return registry, None


def resolve_target(
    target: str,
) -> tuple[Mapping[str, WorkflowPattern], Any]:
    """Resolve a ``wfcheck`` target to (registry, optional db)."""
    builtin = _BUILTIN_TARGETS.get(target)
    if builtin is not None:
        return builtin()
    return _scan_module(target)


def run_wfcheck(
    target: str,
    as_json: bool,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> int:
    try:
        registry, db = resolve_target(target)
    except ImportError as exc:
        print(f"wfcheck: cannot import {target!r}: {exc}", file=sys.stderr)
        return 2
    if not registry:
        print(f"wfcheck: no workflow patterns found in {target!r}",
              file=sys.stderr)
        return 2
    reports = {
        name: report.filtered(select, ignore)
        for name, report in check_registry(registry, db=db).items()
    }
    errors = 0
    if as_json:
        payload = {
            name: {
                "diagnostics": report.to_dicts(),
                "stats": report.stats,
            }
            for name, report in reports.items()
        }
        print(json.dumps(payload, indent=2, default=str))
        errors = sum(len(report.errors()) for report in reports.values())
    else:
        for name, report in reports.items():
            print(f"== pattern {name!r} ==")
            print(report.render_text())
            errors += len(report.errors())
    return 1 if errors else 0


def _emit(report: Report, as_json: bool) -> int:
    """Shared tail of the path-based linters: print, then exit code."""
    if as_json:
        print(
            json.dumps(
                {"diagnostics": report.to_dicts(), "stats": report.stats},
                indent=2,
                default=str,
            )
        )
    else:
        print(report.render_text())
    return 1 if report.errors() else 0


def run_codelint(
    paths: list[str],
    as_json: bool,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> int:
    return _emit(lint_paths(paths).filtered(select, ignore), as_json)


def run_conlint(
    paths: list[str],
    as_json: bool,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> int:
    return _emit(lint_concurrency(paths).filtered(select, ignore), as_json)


def _add_filter_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--json", action="store_true", dest="as_json")
    sub.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODE",
        help="only report diagnostics whose code starts with CODE "
        "(repeatable; comma-separated values accepted)",
    )
    sub.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODE",
        help="drop diagnostics whose code starts with CODE "
        "(repeatable; wins over --select)",
    )


def _split_codes(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [code for value in values for code in value.split(",") if code]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for Exp-WF workflow patterns and "
        "the repro codebase.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    wf = sub.add_parser(
        "wfcheck", help="verify workflow patterns (soundness diagnostics)"
    )
    wf.add_argument(
        "target",
        help="built-in lab name (protein, synthetic) or a dotted module "
        "path to scan for WorkflowPattern objects",
    )
    _add_filter_args(wf)
    cl = sub.add_parser(
        "codelint", help="lint the codebase for repo invariants"
    )
    cl.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    _add_filter_args(cl)
    cc = sub.add_parser(
        "conlint",
        help="whole-program concurrency analysis (lock order, blocking "
        "calls under locks, unguarded shared state)",
    )
    cc.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories (default: src/repro)",
    )
    _add_filter_args(cc)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    if args.command == "wfcheck":
        return run_wfcheck(args.target, args.as_json, select, ignore)
    if args.command == "conlint":
        return run_conlint(
            args.paths or ["src/repro"], args.as_json, select, ignore
        )
    return run_codelint(args.paths or ["src"], args.as_json, select, ignore)


if __name__ == "__main__":
    sys.exit(main())
