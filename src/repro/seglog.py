"""Segmented, checksummed durable-log substrate (durability v2).

Both durable logs in the system — the minidb write-ahead log and the
broker journal — share the same on-disk layout, implemented once here
and composed by :class:`repro.minidb.wal.WriteAheadLog` and
:class:`repro.messaging.journal.BrokerJournal`:

``{base}.manifest``
    One checksummed frame holding ``{"version": 2, "segments": [...],
    "checkpoint": {...} | null, "next_seq": n}``.  The manifest is the
    *only* source of truth for which files belong to the log; it is
    replaced atomically (tmp file → fsync → ``os.replace`` → fsync of
    the parent directory) so a crash anywhere leaves either the old or
    the new manifest — never a torn mixture.
``{base}.00000007.seg``
    Append-only record segments with monotonically increasing ids.  The
    highest-id segment is the *active* tail; the rest are sealed (they
    were fsync'd when rotation retired them).
``{base}.00000007.ckpt``
    A checkpoint: the full state as of the rotation *watermark* in its
    name.  Replay = checkpoint frames + every segment newer than the
    watermark, which is what keeps recovery time flat as history grows.
``{base}.....quarantined``
    Corrupt suffixes set aside by the opt-in salvage mode.

Record framing is ``"{crc32:08x} {seq} {json}\\n"`` where the CRC32
covers ``"{seq} {json}"``.  A torn final line in the *active* segment is
tolerated (the write never committed) and truncated away before the next
append; a bad checksum, broken framing, or a sequence regression
anywhere else raises the owner's error class with structured diagnostics
(segment, byte offset, expected/actual checksum, machine-readable
``reason``).  With ``salvage=True`` the corrupt suffix — and every later
segment — is quarantined instead, and replay stops at the last good
record rather than refusing to start.

Locking: every mutation of the active handle and append counters is
serialised by the *owner's* write lock; rotation and manifest/checkpoint
installation additionally take the internal ``_state_lock`` because a
checkpoint installs its manifest outside the owner's append path.  The
rare fsyncs under these locks (rotation seals, manifest swaps) carry
``conlint: allow=CC003`` justifications; the per-record fsync discipline
stays in the owners, outside all locks.  Group-commit safety across a
rotation holds because the outgoing segment is fsync'd *before* the
handle switches: any record a barrier claims durable is either in a
sealed (already-fsync'd) segment or in the segment whose handle the
barrier leader fsyncs.
"""

from __future__ import annotations

import json
import os
import re
import threading
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.resilience.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.faults import FaultPlan

__all__ = ["DEFAULT_SEGMENT_BYTES", "SegmentedLog"]

#: Rotation threshold: a comfortable default for laboratory workloads —
#: small enough that the tail replayed after a checkpoint stays short,
#: large enough that rotation fsyncs are rare.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SUFFIX_RE = re.compile(r"\.(\d{8})\.(seg|ckpt)$")


def frame_record(seq: int, record: Any) -> str:
    """One checksummed log line for ``record`` at sequence ``seq``."""
    body = f"{seq} {json.dumps(record, separators=(',', ':'))}"
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n"


def parse_frame(
    stripped: bytes,
) -> tuple[tuple[int, Any] | None, dict[str, Any] | None]:
    """``((seq, record), None)`` for a good frame, ``(None, why)`` otherwise.

    ``why`` carries the structured-diagnostic fields (``reason`` plus
    ``expected_crc``/``actual_crc`` for checksum mismatches).
    """
    parts = stripped.split(b" ", 2)
    if len(parts) != 3 or len(parts[0]) != 8:
        return None, {"reason": "framing"}
    try:
        expected = int(parts[0], 16)
    except ValueError:
        return None, {"reason": "framing"}
    actual = zlib.crc32(parts[1] + b" " + parts[2]) & 0xFFFFFFFF
    if actual != expected:
        return None, {
            "reason": "checksum",
            "expected_crc": parts[0].decode("ascii"),
            "actual_crc": f"{actual:08x}",
        }
    try:
        seq = int(parts[1])
    except ValueError:
        return None, {"reason": "framing"}
    try:
        record = json.loads(parts[2].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None, {"reason": "decode"}
    return (seq, record), None


class _Corruption(Exception):
    """Internal carrier for corruption diagnostics (never escapes)."""

    def __init__(
        self,
        note: str,
        *,
        path: Path,
        segment: int | None,
        offset: int | None,
        reason: str,
        expected_crc: str | None = None,
        actual_crc: str | None = None,
    ) -> None:
        super().__init__(note)
        self.note = note
        self.file = path
        self.segment = segment
        self.offset = offset
        self.reason = reason
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc

    def fields(self) -> dict[str, Any]:
        return {
            "path": str(self.file),
            "segment": self.segment,
            "offset": self.offset,
            "reason": self.reason,
            "expected_crc": self.expected_crc,
            "actual_crc": self.actual_crc,
        }


class SegmentedLog:
    """The shared segment/manifest/checkpoint machinery.

    ``error_cls`` is the owner's corruption error
    (:class:`~repro.errors.RecoveryError` or
    :class:`~repro.errors.JournalError`) — it must accept the structured
    keyword fields of :class:`repro.errors.LogCorruptionDetail`.
    ``prefix`` names the owner's fault-point namespace (``wal`` /
    ``journal``): rotation fires ``{prefix}.rotate`` and every manifest
    swap fires ``{prefix}.manifest.swap``.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        error_cls: type,
        prefix: str,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_max_records: int | None = None,
        salvage: bool = False,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.error_cls = error_cls
        self.prefix = prefix
        self.segment_max_bytes = segment_max_bytes
        self.segment_max_records = segment_max_records
        self.salvage = salvage
        #: Optional fault-injection plan (``repro.resilience.faults``).
        self.faults: "FaultPlan | None" = None
        #: Serialises rotation / checkpoint installation / manifest
        #: swaps (appends are already serialised by the owner's lock,
        #: but a checkpoint installs outside the owner's append path).
        self._state_lock = threading.Lock()
        self._handle = None
        #: The previous active handle, kept open across one rotation so
        #: an in-flight group-commit barrier holding it never fsyncs a
        #: closed file (its segment is already durable regardless).
        self._retired = None
        self._segments: list[int] = []
        self._segment_counts: dict[int, int] = {}
        self._checkpoint: dict[str, Any] | None = None
        self._next_seq = 1
        self._active_bytes = 0
        #: ``(segment_id, byte_offset)`` of a torn tail seen during
        #: replay; the segment is truncated there before the next append.
        self._truncate_at: tuple[int, int] | None = None
        self._scanned = False
        # -- counters surfaced through info() --------------------------
        self.rotations = 0
        self.checkpoints_installed = 0
        self.manifest_swaps = 0
        self.dir_fsyncs = 0
        self.torn_tails = 0
        self.strays_removed = 0
        self.records_since_checkpoint = 0
        self.salvage_report: dict[str, Any] | None = None
        self.last_replay: dict[str, Any] = {}
        self._load()

    # -- paths --------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path.parent / f"{self.path.name}.manifest"

    def segment_path(self, segment_id: int) -> Path:
        return self.path.parent / f"{self.path.name}.{segment_id:08d}.seg"

    def checkpoint_path(self, watermark: int) -> Path:
        return self.path.parent / f"{self.path.name}.{watermark:08d}.ckpt"

    def tail_path(self) -> Path | None:
        """The active (highest-id) segment file, or ``None`` when fresh."""
        if not self._segments:
            return None
        return self.segment_path(self._segments[-1])

    @property
    def segments(self) -> list[int]:
        return list(self._segments)

    @property
    def checkpoint(self) -> dict[str, Any] | None:
        return dict(self._checkpoint) if self._checkpoint else None

    @property
    def handle(self):
        return self._handle

    # -- open / adopt -------------------------------------------------------

    def _load(self) -> None:
        if self.manifest_path.exists():
            self._load_manifest()
            self._clean_strays()
            if self.path.exists():
                # An interrupted legacy adoption left the v1 file behind
                # after its converted segment was registered; the
                # manifest is the source of truth.
                self.path.unlink()
        elif self.path.exists():
            self._adopt_legacy()

    def _load_manifest(self) -> None:
        raw = self.manifest_path.read_bytes().strip()
        parsed, why = parse_frame(raw)
        record = parsed[1] if parsed else None
        if not isinstance(record, dict) or record.get("version") != 2:
            detail = why or {"reason": "manifest"}
            raise self.error_cls(
                f"corrupt manifest at {self.manifest_path}",
                path=str(self.manifest_path),
                offset=0,
                reason="manifest",
                expected_crc=detail.get("expected_crc"),
                actual_crc=detail.get("actual_crc"),
            )
        self._segments = sorted(int(s) for s in record.get("segments", []))
        self._checkpoint = record.get("checkpoint") or None
        self._next_seq = int(record.get("next_seq", 1))

    def _adopt_legacy(self) -> None:
        """Migrate a v1 single-file JSON-lines log into segment 1.

        The v1 torn-final-line tolerance carries over; mid-file
        corruption is diagnosed (or salvaged) just like a v2 segment.
        """
        records: list[Any] = []
        quarantine_from: int | None = None
        offset = 0
        pending: tuple[int, bytes] | None = None
        with self.path.open("rb") as handle:
            for raw in handle:
                start = offset
                offset += len(raw)
                stripped = raw.strip()
                if not stripped:
                    continue
                if pending is not None:
                    break  # corruption followed by more data: not a tear
                try:
                    records.append(json.loads(stripped.decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pending = (start, stripped)
        if pending is not None and pending[0] + len(pending[1]) < offset:
            # Mid-file corruption in the legacy log.
            if not self.salvage:
                raise self.error_cls(
                    f"corrupt legacy record at {self.path} "
                    f"offset {pending[0]}",
                    path=str(self.path),
                    offset=pending[0],
                    reason="legacy",
                )
            quarantine_from = pending[0]
        seg = self.segment_path(1)
        with seg.open("w", encoding="utf-8") as out:
            for index, record in enumerate(records, 1):
                out.write(frame_record(index, record))
            out.flush()
            os.fsync(out.fileno())
        if quarantine_from is not None:
            qpath = Path(str(self.path) + ".quarantined")
            with self.path.open("rb") as src:
                src.seek(quarantine_from)
                qpath.write_bytes(src.read())
            self.salvage_report = {
                "path": str(self.path),
                "offset": quarantine_from,
                "reason": "legacy",
                "quarantined": [qpath.name],
            }
        self._segments = [1]
        self._segment_counts = {1: len(records)}
        self._checkpoint = None
        self._next_seq = len(records) + 1
        self.records_since_checkpoint = len(records)
        with self._state_lock:
            self._swap_manifest_locked()
        self.path.unlink()
        self._scanned = True

    def _clean_strays(self) -> None:
        """Remove files the manifest does not reference (crash leftovers)."""
        referenced = {self.manifest_path.name}
        referenced.update(self.segment_path(s).name for s in self._segments)
        if self._checkpoint:
            referenced.add(self._checkpoint["file"])
        for candidate in self.path.parent.glob(f"{self.path.name}.*"):
            name = candidate.name
            if name in referenced or name.endswith(".quarantined"):
                continue
            if name.endswith(".tmp") or _SUFFIX_RE.search(name):
                candidate.unlink(missing_ok=True)
                self.strays_removed += 1

    # -- durable swaps (satellite: rename durability) ------------------------

    def _fsync_dir(self) -> None:
        """fsync the parent directory so a rename itself is durable.

        ``os.replace`` makes the swap atomic but only the *directory*
        fsync makes it survive a power cut — without it the rename can
        simply vanish, resurrecting the old file.
        """
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            # conlint: allow=CC003 -- directory fsyncs happen only on
            # the rare swap paths (rotation, checkpoint install); the
            # per-record fsync discipline is unaffected.
            os.fsync(fd)
        finally:
            os.close(fd)
        self.dir_fsyncs += 1

    def _swap_manifest_locked(self) -> None:
        """Atomically publish the current segment/checkpoint state."""
        payload = {
            "version": 2,
            "segments": self._segments,
            "checkpoint": self._checkpoint,
            "next_seq": self._next_seq,
        }
        tmp = Path(str(self.manifest_path) + ".tmp")
        with tmp.open("w", encoding="utf-8") as out:
            out.write(frame_record(0, payload))
            out.flush()
            # conlint: allow=CC003 -- the manifest swap is rare (one per
            # rotation/checkpoint) and must be durable before the rename
            # that publishes it.
            os.fsync(out.fileno())
        fire(self.faults, f"{self.prefix}.manifest.swap")
        os.replace(tmp, self.manifest_path)
        self._fsync_dir()
        self.manifest_swaps += 1

    # -- append path ---------------------------------------------------------

    def _ensure_scanned(self) -> None:
        if not self._scanned:
            for _ in self.replay():
                pass

    def _ensure_active_locked(self) -> None:
        """Open the active segment handle (creating segment 1 if fresh)."""
        if self._handle is not None:
            return
        if not self._segments:
            self._segments = [1]
            self._segment_counts[1] = 0
            self.segment_path(1).touch()
            self._swap_manifest_locked()
        active = self._segments[-1]
        path = self.segment_path(active)
        if self._truncate_at is not None and self._truncate_at[0] == active:
            with path.open("r+b") as trunc:
                trunc.truncate(self._truncate_at[1])
            self._truncate_at = None
        self._handle = path.open("a", encoding="utf-8")
        try:
            self._active_bytes = path.stat().st_size
        except OSError:
            self._active_bytes = 0

    def write_frame(self, record: Any) -> int:
        """Append one checksummed frame; caller holds the owner's lock.

        Returns the record's sequence number.  Buffers and flushes only
        — the durability fsync stays with the owner's sync policy.
        Rotation happens here when the active segment crosses its
        size/record threshold.
        """
        self._ensure_scanned()
        with self._state_lock:
            self._ensure_active_locked()
            line = frame_record(self._next_seq, record)
            self._handle.write(line)
            self._handle.flush()
            seq = self._next_seq
            self._next_seq += 1
            active = self._segments[-1]
            self._segment_counts[active] = (
                self._segment_counts.get(active, 0) + 1
            )
            self.records_since_checkpoint += 1
            self._active_bytes += len(line)
            rotation_due = self._rotation_due()
        if rotation_due:
            self.rotate()
        return seq

    def write_torn(self, record: Any) -> None:
        """Leave a torn half-frame on disk (the ``corrupt`` fault action)."""
        self._ensure_scanned()
        with self._state_lock:
            self._ensure_active_locked()
            line = frame_record(self._next_seq, record)
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            # conlint: allow=CC003 -- torn-write injection must hit the
            # disk before the simulated death, or replay would never see
            # the half-line this fault exists to produce.
            os.fsync(self._handle.fileno())

    def _rotation_due(self) -> bool:
        if self._active_bytes >= self.segment_max_bytes:
            return True
        if self.segment_max_records is not None:
            active = self._segments[-1]
            if self._segment_counts.get(active, 0) >= self.segment_max_records:
                return True
        return False

    def rotate(self) -> int:
        """Seal the active segment and open a fresh one.

        Returns the sealed segment's id — the *watermark* a checkpoint
        taken now may later compact up to.  The outgoing segment is
        fsync'd before the handle switches (see the module docstring for
        why group commit depends on this).  Fault point
        ``{prefix}.rotate`` fires first: a crash there loses nothing,
        the rotation simply never happened.
        """
        self._ensure_scanned()
        with self._state_lock:
            self._ensure_active_locked()
            sealed = self._segments[-1]
            fire(self.faults, f"{self.prefix}.rotate", segment=sealed)
            self._handle.flush()
            # conlint: allow=CC003 -- sealing fsync: the retiring
            # segment must be durable before the handle switches or a
            # group-commit barrier on the new handle could claim records
            # in the old one durable when they are not.
            os.fsync(self._handle.fileno())
            if self._retired is not None:
                self._retired.close()
            self._retired = self._handle
            self._handle = None
            fresh = sealed + 1
            self._segments.append(fresh)
            self._segment_counts[fresh] = 0
            self.segment_path(fresh).touch()
            self._handle = self.segment_path(fresh).open("a", encoding="utf-8")
            self._active_bytes = 0
            self._swap_manifest_locked()
        self.rotations += 1
        return sealed

    def fsync_active(self) -> None:
        """fsync the active handle; owners wrap this with their timing.

        Tolerates the handle having been retired *and* closed by two
        intervening rotations — each rotation fsync'd the segment it
        sealed, so skipping a closed handle never skips durability.
        """
        handle = self._handle
        if handle is None:
            return
        try:
            os.fsync(handle.fileno())
        except ValueError:  # pragma: no cover - doubly-rotated handle
            pass

    # -- checkpoint install / compaction --------------------------------------

    def install_checkpoint(
        self,
        records: Iterable[Any],
        watermark: int,
        *,
        write_point: str,
        swap_point: str,
        gc_point: str,
        **ctx: Any,
    ) -> int:
        """Write a checkpoint file, publish it, compact older segments.

        ``watermark`` must be the id returned by the :meth:`rotate` that
        cut the snapshot — every record in ``records`` is in segments
        ``<= watermark``.  Crash windows: before the manifest swap the
        old manifest still references every segment, so recovery replays
        the previous checkpoint plus the full tail (the new ``.ckpt``
        file is an unreferenced stray, cleaned on next open); after the
        swap the new checkpoint is live and leftover old segments are
        strays.  Either way recovery sees exactly the old or the new
        organisation of the same committed history.
        """
        fire(self.faults, write_point, watermark=watermark, **ctx)
        final = self.checkpoint_path(watermark)
        tmp = Path(str(final) + ".tmp")
        count = 0
        with tmp.open("w", encoding="utf-8") as out:
            for count, record in enumerate(records, 1):
                out.write(frame_record(count, record))
            out.flush()
            # conlint: allow=CC003 -- checkpoint side-file fsync; runs
            # outside the owner's append locks by protocol (the engine
            # serialises checkpoints with a dedicated lock instead).
            os.fsync(out.fileno())
        os.replace(tmp, final)
        self._fsync_dir()
        fire(self.faults, swap_point, watermark=watermark, **ctx)
        with self._state_lock:
            previous = self._checkpoint
            self._checkpoint = {
                "file": final.name,
                "watermark": watermark,
                "records": count,
            }
            removed = [s for s in self._segments if s <= watermark]
            self._segments = [s for s in self._segments if s > watermark]
            for seg in removed:
                self._segment_counts.pop(seg, None)
            self.records_since_checkpoint = sum(
                self._segment_counts.get(s, 0) for s in self._segments
            )
            self._swap_manifest_locked()
        fire(self.faults, gc_point, watermark=watermark, **ctx)
        for seg in removed:
            self.segment_path(seg).unlink(missing_ok=True)
        if previous and previous["file"] != final.name:
            (self.path.parent / previous["file"]).unlink(missing_ok=True)
        self.checkpoints_installed += 1
        return count

    # -- replay ---------------------------------------------------------------

    def replay(self) -> Iterator[Any]:
        """Yield every committed record: checkpoint frames, then the tail.

        Streams line-by-line — O(1) memory however long the history.
        A torn final line in the active segment is tolerated (and
        truncated before the next append); everything else raises the
        owner's error class with structured diagnostics, or — under
        ``salvage`` — quarantines the corrupt suffix and stops cleanly.
        """
        self.last_replay = {
            "checkpoint_records": 0,
            "tail_records": 0,
            "torn_tail": False,
            "salvaged": False,
        }
        try:
            yield from self._replay_inner()
        except _Corruption as corruption:
            if self.salvage and corruption.segment is not None:
                self._salvage(corruption)
                self.last_replay["salvaged"] = True
            else:
                raise self.error_cls(
                    f"corrupt {self.prefix} record at {corruption.file} "
                    f"offset {corruption.offset}: {corruption.note}",
                    **corruption.fields(),
                ) from None
        with self._state_lock:
            self._scanned = True

    def _replay_inner(self) -> Iterator[Any]:
        max_seq = 0
        counts: dict[int, int] = {}
        if self._checkpoint is not None:
            ckpt = self.path.parent / self._checkpoint["file"]
            if not ckpt.exists():
                raise self.error_cls(
                    f"manifest references missing checkpoint {ckpt}",
                    path=str(ckpt),
                    reason="manifest",
                )
            for __, record, __ in self._iter_frames(ckpt, segment=None):
                self.last_replay["checkpoint_records"] += 1
                yield record
        tail = sorted(self._segments)
        for index, segment in enumerate(tail):
            spath = self.segment_path(segment)
            last = index == len(tail) - 1
            if not spath.exists():
                raise self.error_cls(
                    f"manifest references missing segment {spath}",
                    path=str(spath),
                    segment=segment,
                    reason="manifest",
                )
            counts[segment] = 0
            for seq, record, offset in self._iter_frames(
                spath, segment=segment, torn_ok=last
            ):
                if seq <= max_seq:
                    raise _Corruption(
                        f"sequence regression ({seq} after {max_seq})",
                        path=spath,
                        segment=segment,
                        offset=offset,
                        reason="sequence",
                    )
                max_seq = seq
                counts[segment] += 1
                self.last_replay["tail_records"] += 1
                yield record
        self._segment_counts = counts
        self.records_since_checkpoint = sum(counts.values())
        self._next_seq = max(self._next_seq, max_seq + 1)

    def _iter_frames(
        self,
        file_path: Path,
        *,
        segment: int | None,
        torn_ok: bool = False,
    ) -> Iterator[tuple[int, Any, int]]:
        """Stream ``(seq, record, byte_offset)`` triples from one file."""
        offset = 0
        pending: tuple[int, dict[str, Any]] | None = None
        with file_path.open("rb") as handle:
            for raw in handle:
                if pending is not None:
                    # The bad line was not the last one: real corruption.
                    self._raise_corrupt(file_path, segment, pending)
                start = offset
                offset += len(raw)
                stripped = raw.strip()
                if not stripped:
                    continue
                parsed, why = parse_frame(stripped)
                if parsed is None:
                    pending = (start, why or {"reason": "framing"})
                    continue
                yield parsed[0], parsed[1], start
        if pending is not None:
            if torn_ok:
                # Torn final write from a crash: the record never
                # committed.  Truncate it away before the next append.
                self.torn_tails += 1
                self.last_replay["torn_tail"] = True
                assert segment is not None
                self._truncate_at = (segment, pending[0])
                return
            self._raise_corrupt(file_path, segment, pending)

    def _raise_corrupt(
        self,
        file_path: Path,
        segment: int | None,
        pending: tuple[int, dict[str, Any]],
    ) -> None:
        offset, why = pending
        reason = why.get("reason", "framing")
        note = {
            "checksum": "checksum mismatch (expected {e}, got {a})".format(
                e=why.get("expected_crc"), a=why.get("actual_crc")
            ),
            "framing": "unparseable frame",
            "decode": "checksummed payload failed to decode",
        }.get(reason, reason)
        if segment is None:
            # Checkpoint files are the recovery *base*: never salvage.
            raise self.error_cls(
                f"corrupt checkpoint record at {file_path} "
                f"offset {offset}: {note}",
                path=str(file_path),
                offset=offset,
                reason=reason,
                expected_crc=why.get("expected_crc"),
                actual_crc=why.get("actual_crc"),
            )
        raise _Corruption(
            note,
            path=file_path,
            segment=segment,
            offset=offset,
            reason=reason,
            expected_crc=why.get("expected_crc"),
            actual_crc=why.get("actual_crc"),
        )

    def _salvage(self, corruption: _Corruption) -> None:
        """Quarantine the corrupt suffix and every later segment."""
        assert corruption.segment is not None
        quarantined: list[str] = []
        spath = self.segment_path(corruption.segment)
        qpath = Path(str(spath) + ".quarantined")
        with spath.open("rb") as src:
            src.seek(corruption.offset or 0)
            qpath.write_bytes(src.read())
        quarantined.append(qpath.name)
        with spath.open("r+b") as trunc:
            trunc.truncate(corruption.offset or 0)
        survivors = [s for s in self._segments if s <= corruption.segment]
        for later in (s for s in self._segments if s > corruption.segment):
            lpath = self.segment_path(later)
            if lpath.exists():
                os.replace(lpath, Path(str(lpath) + ".quarantined"))
                quarantined.append(lpath.name + ".quarantined")
            self._segment_counts.pop(later, None)
        self._segments = survivors
        self._truncate_at = None
        # The interrupted replay never reached its end-of-scan
        # bookkeeping: rescan the surviving prefix so sequence
        # allocation and compaction accounting resume where the last
        # intact record left off (not at the stale manifest values).
        counts: dict[int, int] = {}
        max_seq = 0
        for segment in self._segments:
            counts[segment] = 0
            for seq, __, __ in self._iter_frames(
                self.segment_path(segment), segment=segment
            ):
                counts[segment] += 1
                max_seq = max(max_seq, seq)
        self._segment_counts = counts
        self.records_since_checkpoint = sum(counts.values())
        self._next_seq = max(self._next_seq, max_seq + 1)
        with self._state_lock:
            self._swap_manifest_locked()
        self.salvage_report = {
            "path": str(corruption.file),
            "segment": corruption.segment,
            "offset": corruption.offset,
            "reason": corruption.reason,
            "expected_crc": corruption.expected_crc,
            "actual_crc": corruption.actual_crc,
            "quarantined": quarantined,
        }

    # -- bookkeeping ----------------------------------------------------------

    def size_bytes(self) -> int:
        """Total on-disk footprint: manifest + checkpoint + segments."""
        total = 0
        paths = [self.manifest_path, self.path]
        paths.extend(self.segment_path(s) for s in self._segments)
        if self._checkpoint:
            paths.append(self.path.parent / self._checkpoint["file"])
        for candidate in paths:
            try:
                total += candidate.stat().st_size
            except OSError:
                continue
        return total

    def info(self) -> dict[str, Any]:
        """Segment-level stats merged into the owners' ``*_info()``."""
        return {
            "segments": len(self._segments),
            "segment_ids": list(self._segments),
            "checkpoint": self.checkpoint,
            "records_since_checkpoint": self.records_since_checkpoint,
            "rotations": self.rotations,
            "checkpoints_installed": self.checkpoints_installed,
            "manifest_swaps": self.manifest_swaps,
            "dir_fsyncs": self.dir_fsyncs,
            "torn_tails": self.torn_tails,
            "strays_removed": self.strays_removed,
            "salvaged": self.salvage_report,
        }

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Release file handles (reopened lazily on next append)."""
        with self._state_lock:
            if self._retired is not None:
                self._retired.close()
                self._retired = None
            if self._handle is not None:
                self._handle.close()
                self._handle = None
