"""Group commit: one fsync covering many concurrent committers.

Both durable logs in the system — the minidb write-ahead log and the
broker journal — follow the same discipline: append a JSON line, flush,
fsync, return.  The fsync dominates (two orders of magnitude over the
buffered write), and under concurrency it is pure waste to pay it once
per committer when a single barrier makes *every* record written so far
durable at once.

:class:`GroupCommitter` implements the classic leader-election scheme:

* each writer, after its buffered write lands in the OS page cache,
  calls :meth:`note_write` and receives a monotonically increasing
  sequence number;
* to become durable it calls :meth:`wait_durable` with that sequence.
  If the fsync frontier already covers it, it returns immediately.
  Otherwise one waiter elects itself *leader*, optionally sleeps a
  short commit window to let more writers pile in, issues a single
  fsync on behalf of everyone written so far, advances the frontier and
  wakes the followers.  Followers just wait on the condition.

The committer never touches the file itself — the caller supplies the
``do_sync`` callable, which keeps fault-injection points (``wal.fsync``)
where they always were: in the committing thread, before the fsync.
A leader whose ``do_sync`` raises hands leadership back and wakes the
other waiters so one of them can retry; the exception propagates to the
leader's caller (the transaction that observed the failure).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.clock import Clock

#: The durability disciplines shared by the WAL and the broker journal:
#: ``always`` fsyncs inline per record, ``group`` defers to a shared
#: barrier, ``off`` only flushes (benchmarks / throwaway state).
SYNC_POLICIES = ("always", "group", "off")


def validate_sync_policy(sync_policy: str) -> str:
    """Return ``sync_policy`` or raise ``ValueError`` for unknown names."""
    if sync_policy not in SYNC_POLICIES:
        raise ValueError(
            f"unknown sync_policy {sync_policy!r}; "
            f"expected one of {SYNC_POLICIES}"
        )
    return sync_policy


class GroupCommitter:
    """Leader-elected fsync batching shared by the WAL and the journal."""

    def __init__(
        self, window_s: float = 0.0, clock: "Clock | None" = None
    ) -> None:
        #: How long a leader waits for stragglers before syncing.  Zero
        #: still batches: whatever was written while the previous fsync
        #: ran is covered by the next one.
        self.window_s = window_s
        #: The straggler-window sleep goes through an injectable clock
        #: so the chaos suite can drive a non-zero window without wall
        #: time.  Default is the real wall clock (lazy import keeps
        #: this module importable before ``repro.resilience``).
        if clock is None:
            from repro.resilience.clock import SystemClock

            clock = SystemClock()
        self.clock = clock
        self._cond = threading.Condition()
        self._written = 0  # highest sequence handed out
        self._synced = 0  # highest sequence known durable
        self._leader_active = False
        #: fsync barriers actually issued.
        self.syncs = 0
        #: Writes made durable across all barriers (>= syncs; the ratio
        #: is the batching factor the benchmark reports).
        self.writes_covered = 0

    def note_write(self) -> int:
        """Register one buffered write; returns its durability sequence."""
        with self._cond:
            self._written += 1
            return self._written

    def pending(self) -> int:
        """Writes not yet covered by a barrier (0 when all durable)."""
        with self._cond:
            return self._written - self._synced

    def latest(self) -> int:
        """The highest sequence handed out so far."""
        with self._cond:
            return self._written

    def wait_durable(  # conlint: blocking -- do_sync is an fsync barrier
        self, seq: int, do_sync: Callable[[], None]
    ) -> None:
        """Block until ``seq`` is durable, fsyncing as elected leader.

        ``do_sync`` runs in exactly one thread per barrier and must make
        every buffered write issued so far durable (flush + fsync).
        Callers must not hold any lock here: the leader blocks in the
        fsync, followers block on the condition (the ``conlint:
        blocking`` annotation above teaches the static analyzer this,
        since ``do_sync`` itself is an uninspectable callable).
        """
        while True:
            with self._cond:
                if self._synced >= seq:
                    return
                if self._leader_active:
                    # A barrier is in flight; it may or may not cover us.
                    self._cond.wait(timeout=1.0)
                    continue
                self._leader_active = True
                target = self._written
            if self.window_s > 0.0:
                self.clock.sleep(self.window_s)
                with self._cond:
                    target = self._written  # stragglers joined the batch
            try:
                do_sync()
            except BaseException:
                with self._cond:
                    self._leader_active = False
                    self._cond.notify_all()
                raise
            with self._cond:
                covered = target - self._synced
                if covered > 0:
                    self._synced = target
                    self.syncs += 1
                    self.writes_covered += covered
                self._leader_active = False
                self._cond.notify_all()
