"""The liveness/readiness servlet (``GET /workflow/health``).

Serves :meth:`repro.obs.hub.ObservabilityHub.health_report` as JSON:
per-component status for the container, database (with WAL info), the
workflow engine, the message broker (queue depths + journal backlog),
the agent manager and every registered agent (queue depth, last-poll
age), and the email transport.

Two probe styles:

* ``GET /workflow/health`` — *readiness*: 200 when every component is
  ``ok``, 503 when any is degraded, body always the full JSON report;
* ``GET /workflow/health?probe=live`` — *liveness*: 200 whenever the
  container can run the servlet at all, regardless of component state.

``?component=broker`` narrows the body to one component (status code
still reflects that component alone).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer


class HealthServlet(Servlet):
    """JSON liveness/readiness over every watched component."""

    name = "HealthServlet"

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        report = self.hub.health_report()
        if request.param("probe") == "live":
            body = {"status": "ok", "probe": "live"}
            return HttpResponse(
                status=200,
                body=json.dumps(body),
                content_type="application/json",
            )
        component = request.param("component")
        if component is not None and component != "":
            info = report["components"].get(component)
            if info is None:
                return HttpResponse.error(
                    404, f"unknown health component {component!r}"
                )
            status = 200 if info.get("status", "ok") == "ok" else 503
            body = {
                "component": component,
                "generated_at": report["generated_at"],
                **info,
            }
            return HttpResponse(
                status=status,
                body=json.dumps(body, default=str),
                content_type="application/json",
            )
        status = 200 if report["status"] == "ok" else 503
        return HttpResponse(
            status=status,
            body=json.dumps(report, default=str),
            content_type="application/json",
        )
