"""The provenance-timeline servlet (``GET /workflow/audit``).

Serves the durable ``WFAudit`` trail as JSON: every task and
task-instance state transition, authorization decision, restart, agent
dispatch/ack and filter-mode decision the system has committed, in the
order they were written.  Filterable by workflow, experiment, task,
actor, kind, trace id and time range, and paginated — the query surface
of :meth:`repro.obs.audit.AuditStore.query`.

Registered by ``repro.obs.install_observability`` under the exact
pattern ``/workflow/audit``; the deployment descriptor's
most-specific-match rule lets it coexist with the WorkflowServlet's
``/workflow/*`` prefix mapping.  The servlet is registered even when no
engine (and hence no audit store) is wired — it answers 503 until
:meth:`ObservabilityHub.install_audit` runs.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer

#: ``?name=`` query parameters decoded as integers.
_INT_PARAMS = ("workflow_id", "experiment_id", "wftask_id")
#: ``?name=`` query parameters passed through as strings.
_TEXT_PARAMS = ("actor", "kind", "task", "trace_id")
#: ``?name=`` query parameters decoded as epoch-second floats.
_TIME_PARAMS = ("since", "until")

#: Page-size ceiling; a caller who wants everything pages through it.
MAX_LIMIT = 1000


class AuditServlet(Servlet):
    """JSON view over the durable audit/provenance trail."""

    name = "AuditServlet"

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        audit = self.hub.audit
        if audit is None:
            return HttpResponse.error(
                503, "audit store not installed (no engine wired)"
            )
        try:
            filters = self._decode_filters(request)
        except ValueError as error:
            return HttpResponse.error(400, str(error))
        workflow_id = filters.get("workflow_id")
        if workflow_id is not None and not self._workflow_exists(workflow_id):
            # A timeline query for a workflow that never existed must be
            # distinguishable from a workflow with no audit rows yet:
            # structured 404, not an indistinguishable empty 200.
            return HttpResponse(
                status=404,
                body=json.dumps(
                    {
                        "error": "workflow_not_found",
                        "workflow_id": workflow_id,
                        "total": 0,
                        "records": [],
                    }
                ),
                content_type="application/json",
            )
        total, records = audit.query(**filters)
        payload: dict[str, Any] = {
            "total": total,
            "offset": filters["offset"],
            "limit": filters["limit"],
            "records": records,
        }
        return HttpResponse(
            status=200,
            body=json.dumps(payload, default=str),
            content_type="application/json",
        )

    def _workflow_exists(self, workflow_id: int) -> bool:
        audit = self.hub.audit
        if audit is None or not audit.db.has_table("Workflow"):
            # Without a workflow table there is nothing to validate
            # against; fall through to the plain (possibly empty) query.
            return True
        return audit.db.get("Workflow", workflow_id) is not None

    def _decode_filters(self, request: HttpRequest) -> dict[str, Any]:
        filters: dict[str, Any] = {}
        for name in _INT_PARAMS:
            raw = request.param(name)
            if raw is not None and raw != "":
                try:
                    filters[name] = int(raw)
                except ValueError:
                    raise ValueError(f"parameter {name!r} must be an integer")
        for name in _TEXT_PARAMS:
            raw = request.param(name)
            if raw is not None and raw != "":
                filters[name] = raw
        for name in _TIME_PARAMS:
            raw = request.param(name)
            if raw is not None and raw != "":
                try:
                    filters[name] = float(raw)
                except ValueError:
                    raise ValueError(
                        f"parameter {name!r} must be epoch seconds"
                    )
        filters["limit"] = _bounded_int(request, "limit", 100, 1, MAX_LIMIT)
        filters["offset"] = _bounded_int(request, "offset", 0, 0, None)
        return filters


def _bounded_int(
    request: HttpRequest,
    name: str,
    default: int,
    minimum: int,
    maximum: int | None,
) -> int:
    raw = request.param(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"parameter {name!r} must be an integer")
    if value < minimum:
        raise ValueError(f"parameter {name!r} must be >= {minimum}")
    if maximum is not None and value > maximum:
        raise ValueError(f"parameter {name!r} must be <= {maximum}")
    return value
