"""Servlet and filter abstractions — the container's extension points.

A :class:`Servlet` is a request handler mapped to a path.  A
:class:`Filter` wraps servlet invocations: the container builds a
:class:`FilterChain` of every filter whose URL pattern matches the
request, in deployment-descriptor order, with the servlet itself as the
terminal element.  Each filter decides whether to pass the request on
(``chain.proceed``), modify it first, short-circuit with its own
response, or post-process the response on the way back out — exactly the
three integration modes of the paper's Fig. 7.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import FilterError
from repro.weblims.http import HttpRequest, HttpResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.weblims.container import WebContainer


class Servlet:
    """Base class for request handlers.

    Subclasses override :meth:`do_get` / :meth:`do_post` (or
    :meth:`service` directly for method-agnostic handlers).
    """

    #: Name used in deployment descriptors and diagnostics.
    name = "servlet"

    def service(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        """Dispatch on HTTP method; override for custom behaviour."""
        if request.method == "GET":
            return self.do_get(request, container)
        if request.method == "POST":
            return self.do_post(request, container)
        return HttpResponse.error(405, f"method {request.method} not allowed")

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        return HttpResponse.error(405, "GET not supported")

    def do_post(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        return HttpResponse.error(405, "POST not supported")


class Filter:
    """Base class for servlet filters.

    ``do_filter`` receives the request and the remaining chain.  The
    default implementation is a transparent pass-through; real filters
    override it.  Filters are registered against URL patterns in the
    deployment descriptor, never wired into servlet code — that is what
    makes the workflow integration non-intrusive.
    """

    #: Name used in deployment descriptors and diagnostics.
    name = "filter"

    def do_filter(
        self, request: HttpRequest, chain: "FilterChain"
    ) -> HttpResponse:
        return chain.proceed(request)


class FilterChain:
    """The remaining filters (then the servlet) for one request.

    Built per-request by the container.  Calling :meth:`proceed` hands
    the (possibly modified) request to the next element; the returned
    response travels back through the earlier filters in reverse order,
    giving each a chance to post-process it.
    """

    def __init__(
        self,
        filters: list[Filter],
        terminal: Callable[[HttpRequest], HttpResponse],
        on_filter_invoked: Callable[[Filter], None] | None = None,
    ) -> None:
        self._filters = filters
        self._terminal = terminal
        self._position = 0
        self._on_filter_invoked = on_filter_invoked

    def proceed(self, request: HttpRequest) -> HttpResponse:
        """Invoke the next filter, or the servlet if none remain."""
        if self._position > len(self._filters):
            raise FilterError("filter chain proceeded past its end")
        if self._position == len(self._filters):
            self._position += 1
            return self._terminal(request)
        current = self._filters[self._position]
        self._position += 1
        if self._on_filter_invoked is not None:
            self._on_filter_invoked(current)
        response = current.do_filter(request, self)
        if not isinstance(response, HttpResponse):
            raise FilterError(
                f"filter {current.name!r} returned {type(response).__name__}, "
                "expected HttpResponse"
            )
        return response
