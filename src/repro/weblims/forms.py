"""Schema-driven web forms.

Exp-DB "retrieves the schema information for that table, and generates a
corresponding web-form" for inserts; the same machinery parses the posted
form back into a typed row.  Empty fields become NULL; autoincrement
primary keys are omitted from insert forms because the system assigns
them.
"""

from __future__ import annotations

import html
from typing import Any

from repro.errors import BadRequestError, TypeMismatchError
from repro.minidb.schema import TableSchema
from repro.minidb.types import ColumnType, coerce

#: HTML input type used per column type.
_INPUT_TYPES = {
    ColumnType.INTEGER: "number",
    ColumnType.REAL: "number",
    ColumnType.TEXT: "text",
    ColumnType.BOOLEAN: "checkbox",
    ColumnType.TIMESTAMP: "datetime-local",
}


def render_insert_form(
    schema: TableSchema,
    action: str,
    value_prefix: str = "v_",
    hidden: dict[str, str] | None = None,
) -> str:
    """Generate an HTML insert form for ``schema``.

    Field names carry ``value_prefix`` so the controller can split them
    from routing parameters.  ``hidden`` adds fixed hidden inputs
    (action/table routing fields).
    """
    skip = {schema.autoincrement} if schema.autoincrement else set()
    return render_form_for_columns(
        schema.columns, action, value_prefix, hidden, skip
    )


def render_form_for_columns(
    columns,
    action: str,
    value_prefix: str = "v_",
    hidden: dict[str, str] | None = None,
    skip: set[str] | frozenset[str] = frozenset(),
) -> str:
    """Generate an insert form over an explicit column list.

    Used for type tables, where the form spans child plus inherited
    parent columns and the shared key is system-assigned (``skip``).
    """
    lines = [f'<form method="post" action="{html.escape(action, quote=True)}">']
    for name, value in (hidden or {}).items():
        lines.append(
            f'<input type="hidden" name="{html.escape(name, quote=True)}" '
            f'value="{html.escape(value, quote=True)}"/>'
        )
    for column in columns:
        if column.name in skip:
            continue  # the system assigns these
        label = html.escape(column.name)
        field = html.escape(value_prefix + column.name, quote=True)
        input_type = _INPUT_TYPES[column.type]
        required = "" if column.nullable else " required"
        step = ' step="any"' if column.type is ColumnType.REAL else ""
        lines.append(
            f'<label>{label} <input type="{input_type}" name="{field}"'
            f"{step}{required}/></label>"
        )
    lines.append('<input type="submit" value="Insert"/>')
    lines.append("</form>")
    return "\n".join(lines)


def parse_typed_values(
    schema: TableSchema, raw_values: dict[str, str]
) -> dict[str, Any]:
    """Convert posted string fields into a typed row for ``schema``.

    Unknown fields raise; empty strings become NULL.  Type errors are
    reported as :class:`BadRequestError` so the controller can answer
    with a 400 instead of a stack trace.
    """
    typed: dict[str, Any] = {}
    for name, raw in raw_values.items():
        if not schema.has_column(name):
            raise BadRequestError(
                f"table {schema.name!r} has no column {name!r}"
            )
        column = schema.column(name)
        if raw == "":
            typed[name] = None
            continue
        try:
            typed[name] = coerce(raw, column.type, f"{schema.name}.{name}")
        except TypeMismatchError as error:
            raise BadRequestError(str(error)) from None
    return typed


def parse_criteria(
    schema: TableSchema, raw_criteria: dict[str, str]
) -> dict[str, Any]:
    """Convert search-criteria fields into typed equality bindings."""
    return parse_typed_values(schema, raw_criteria)
