"""Assembly of a complete Exp-DB instance (Fig. 3).

``build_expdb`` wires the three tiers together: the minidb backend, the
TableBean model, the JSP-analog templates and the UserRequestServlet
controller inside a web container.  The returned :class:`ExpDB` holds
every handle an integrator (or the Exp-WF module) needs.

Note what is *not* here: anything workflow-related.  Exp-WF attaches
itself afterwards through the deployment descriptor only — see
``repro.core.filter.install_workflow_support``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.minidb.engine import Database
from repro.weblims.container import DeploymentDescriptor, WebContainer
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.schema_setup import install_core_schema
from repro.weblims.tablebean import TableBean
from repro.weblims.templates import TemplateRegistry
from repro.weblims.userservlet import UserRequestServlet

#: The default "JSP pages" of Exp-DB.
DEFAULT_TEMPLATES = {
    "tables": (
        "<html><body><h1>Exp-DB tables</h1><ul>"
        "{% for t in tables %}<li>{{ t }}</li>{% endfor %}"
        "</ul></body></html>"
    ),
    "results": (
        "<html><body><h1>{{ table }}: {{ count }} record(s)</h1>"
        "<table><tr>{% for c in columns %}<th>{{ c }}</th>{% endfor %}</tr>"
        "{% for row in rows %}<tr>"
        "{% for cell in row %}<td>{{ cell }}</td>{% endfor %}"
        "</tr>{% endfor %}</table></body></html>"
    ),
    "form": (
        "<html><body><h1>Insert into {{ table }}</h1>"
        "{{! form }}</body></html>"
    ),
    "confirm": (
        "<html><body><h1>{{ table }}</h1>"
        "<p>{{ message }}: {{ affected }} record(s)</p></body></html>"
    ),
    "error": (
        "<html><body><h1>Error {{ status }}</h1>"
        "<p>{{ message }}</p></body></html>"
    ),
}


@dataclass
class ExpDB:
    """A running Exp-DB application: all three tiers plus helpers."""

    db: Database
    bean: TableBean
    container: WebContainer
    templates: TemplateRegistry

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Shorthand for ``container.handle``."""
        return self.container.handle(request)

    def get(self, path: str, **params: str) -> HttpResponse:
        """Issue a GET request (test/demo convenience)."""
        return self.handle(HttpRequest("GET", path, params=dict(params)))

    def post(self, path: str, **params: str) -> HttpResponse:
        """Issue a POST request (test/demo convenience)."""
        return self.handle(HttpRequest("POST", path, params=dict(params)))


def build_expdb(
    wal_path: str | os.PathLike[str] | None = None,
    install_schema: bool = True,
    sync_policy: str = "always",
    group_window_s: float = 0.0,
) -> ExpDB:
    """Build a fresh Exp-DB application.

    ``wal_path`` enables durability; ``install_schema=False`` skips the
    core schema (for reopening an existing WAL, which replays its own
    DDL).  ``sync_policy``/``group_window_s`` select the WAL durability
    discipline (see :mod:`repro.minidb.wal`) — ``"group"`` batches
    concurrent commit fsyncs behind one barrier.
    """
    db = Database(
        wal_path, sync_policy=sync_policy, group_window_s=group_window_s
    )
    if install_schema:
        install_core_schema(db)
    bean = TableBean(db)

    templates = TemplateRegistry()
    for name, source in DEFAULT_TEMPLATES.items():
        templates.register(name, source)

    descriptor = DeploymentDescriptor()
    descriptor.add_servlet(UserRequestServlet(), "/user", "/user/*")
    container = WebContainer(descriptor)
    container.context["db"] = db
    container.context["table_bean"] = bean
    container.context["templates"] = templates
    return ExpDB(db=db, bean=bean, container=container, templates=templates)
