"""The profiling servlet (``GET /workflow/profile``).

Serves the :class:`repro.obs.prof.profiler.Profiler` report — latency
attribution per pattern, lock contention, SLO burn rates, slow traces,
exemplars and (when running) sampler output.  Registered by
``install_observability`` alongside the metrics/health servlets, but
profiling itself stays opt-in: until ``install_profiling`` attaches a
profiler to the hub, the endpoint answers ``{"enabled": false}``.

Views:

* ``GET /workflow/profile`` — the full JSON report;
* ``?format=text`` — the human-readable rendering the CLI prints;
* ``?view=flamegraph`` — collapsed-stack text (sampler must be on);
* ``?view=trace&trace_id=...`` — one retained slow trace's span tree.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer


class ProfileServlet(Servlet):
    """JSON/text exposure of the latency-attribution profiler."""

    name = "ProfileServlet"

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        profiler = self.hub.profiler
        if profiler is None:
            return HttpResponse(
                status=200,
                body=json.dumps(
                    {
                        "enabled": False,
                        "hint": "call repro.obs.prof.install_profiling",
                    }
                ),
                content_type="application/json",
            )
        view = request.param("view")
        if view == "flamegraph":
            if profiler.sampler is None:
                return HttpResponse.error(404, "sampler is not running")
            return HttpResponse(
                status=200,
                body=profiler.sampler.collapsed(),
                content_type="text/plain",
            )
        if view == "trace":
            trace_id = request.param("trace_id")
            if not trace_id:
                return HttpResponse.error(400, "missing trace_id")
            tree = profiler.retainer.tree(trace_id)
            if tree is None:
                return HttpResponse.error(
                    404, f"trace {trace_id!r} is not retained"
                )
            return HttpResponse(
                status=200,
                body=json.dumps(
                    {"trace_id": trace_id, "spans": tree}, default=str
                ),
                content_type="application/json",
            )
        if request.param("format") == "text":
            return HttpResponse(
                status=200,
                body=profiler.render_text(),
                content_type="text/plain",
            )
        return HttpResponse(
            status=200,
            body=json.dumps(profiler.report(), default=str),
            content_type="application/json",
        )
