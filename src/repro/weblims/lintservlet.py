"""The workflow lint servlet (``GET /workflow/lint``).

Runs the :mod:`repro.analysis` verifier over every pattern registered in
the database and returns the diagnostics as JSON — the same payload
``python -m repro.analysis wfcheck`` produces per pattern, so operators
and CI see identical findings whichever door they use.

Registered by ``repro.obs.install_observability`` under the exact
pattern ``/workflow/lint`` (most-specific-match beats the
WorkflowServlet's ``/workflow/*`` prefix mapping, as with the metrics
and health endpoints).

Query parameters:

* ``?pattern=<name>`` — narrow the report to one registered pattern
  (404 when unknown);
* ``?severity=error`` — drop diagnostics below the given severity;
* ``?select=CC,WF001`` / ``?ignore=CC005`` — comma-separated
  diagnostic-code prefixes, the same filter the CLI's
  ``--select``/``--ignore`` applies (ignore wins over select);
* ``?codebase=1`` — additionally run codelint and conlint over the
  installed source tree and merge their findings into the payload
  under ``codebase`` (these are static source findings: slower, and
  only meaningful when the server runs from a source checkout).

Status is 200 when no error-severity diagnostics survive filtering,
409 otherwise — a registered-but-unsound pattern is an operator
problem, not a server failure.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.engine import Database
    from repro.weblims.container import WebContainer

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


def _codes(request: HttpRequest, name: str) -> list[str] | None:
    raw = request.param(name)
    if not raw:
        return None
    return [code for code in raw.split(",") if code.strip()]


class LintServlet(Servlet):
    """JSON workflow-soundness diagnostics for registered patterns."""

    name = "LintServlet"

    def __init__(self, db: "Database") -> None:
        self.db = db

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        from repro.analysis import check_pattern, check_registry
        from repro.core.persistence import pattern_registry

        registry = pattern_registry(self.db)
        only = request.param("pattern")
        if only and only not in registry:
            return HttpResponse.error(
                404, f"no registered pattern named {only!r}"
            )
        floor = request.param("severity")
        if floor and floor not in _SEVERITY_ORDER:
            return HttpResponse.error(
                400, f"unknown severity {floor!r} (error|warning|info)"
            )
        select = _codes(request, "select")
        ignore = _codes(request, "ignore")
        if only:
            # Narrow the *reported* set only; sub-workflow references
            # must still resolve against the full registry.
            reports = {
                only: check_pattern(
                    registry[only], db=self.db, registry=registry
                )
            }
        else:
            reports = check_registry(registry, db=self.db)
        patterns: dict[str, Any] = {}
        errors = 0
        for name, report in reports.items():
            report = report.filtered(select, ignore)
            diagnostics = report.to_dicts()
            if floor:
                ceiling = _SEVERITY_ORDER[floor]
                diagnostics = [
                    d
                    for d in diagnostics
                    if _SEVERITY_ORDER[d["severity"]] <= ceiling
                ]
            patterns[name] = {
                "diagnostics": diagnostics,
                "stats": report.stats,
            }
            errors += len(report.errors())
        body: dict[str, Any] = {"patterns": patterns}
        if request.param("codebase"):
            codebase = self._codebase_reports(select, ignore)
            body["codebase"] = codebase
            errors += sum(
                section["errors"] for section in codebase.values()
            )
        body["errors"] = errors
        body["ok"] = errors == 0
        return HttpResponse(
            status=200 if errors == 0 else 409,
            body=json.dumps(body, indent=2, default=str),
            content_type="application/json",
        )

    @staticmethod
    def _codebase_reports(
        select: list[str] | None, ignore: list[str] | None
    ) -> dict[str, Any]:
        """codelint + conlint over the installed source tree."""
        import repro
        from repro.analysis import lint_concurrency, lint_paths

        root = Path(repro.__file__).resolve().parent
        sections: dict[str, Any] = {}
        for name, report in (
            ("codelint", lint_paths([root], root=root.parent)),
            ("conlint", lint_concurrency([root], root=root.parent)),
        ):
            report = report.filtered(select, ignore)
            sections[name] = {
                "diagnostics": report.to_dicts(),
                "stats": report.stats,
                "errors": len(report.errors()),
            }
        return sections
