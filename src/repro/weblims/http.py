"""HTTP request and response objects for the web container.

Requests and responses are plain mutable objects: servlet filters are
*allowed* to inspect and modify both — that capability is what the whole
Exp-WF integration is built on — so nothing here is frozen.

``attributes`` on both objects mirror the servlet API's request
attributes: a server-side scratch space that filters and servlets use to
pass structured data to each other without touching the client-visible
parts (the workflow filter stores its routing verdict there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class HttpRequest:
    """An incoming request as seen by filters and servlets."""

    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    session_id: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.method = self.method.upper()

    def param(self, name: str, default: str | None = None) -> str | None:
        """A single parameter value, or ``default``."""
        return self.params.get(name, default)

    def require_param(self, name: str) -> str:
        """A parameter that must be present; raises BadRequestError."""
        from repro.errors import BadRequestError

        value = self.params.get(name)
        if value is None or value == "":
            raise BadRequestError(f"missing required parameter {name!r}")
        return value

    def params_with_prefix(self, prefix: str) -> dict[str, str]:
        """All parameters whose name starts with ``prefix``, prefix stripped.

        The user servlet encodes search criteria as ``c_<column>`` and
        insert values as ``v_<column>``; this is the decoder for that
        convention.
        """
        return {
            name[len(prefix):]: value
            for name, value in self.params.items()
            if name.startswith(prefix) and len(name) > len(prefix)
        }


@dataclass
class HttpResponse:
    """An outgoing response; filters may rewrite any part of it."""

    status: int = 200
    body: str = ""
    content_type: str = "text/html"
    headers: dict[str, str] = field(default_factory=dict)
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the status signals success (2xx)."""
        return 200 <= self.status < 300

    @staticmethod
    def html(body: str, status: int = 200) -> "HttpResponse":
        """A successful HTML response."""
        return HttpResponse(status=status, body=body)

    @staticmethod
    def error(status: int, message: str) -> "HttpResponse":
        """An error response with a plain-text body."""
        return HttpResponse(
            status=status, body=message, content_type="text/plain"
        )

    @staticmethod
    def denied(message: str) -> "HttpResponse":
        """A 403 used by the workflow filter to reject invalid actions."""
        return HttpResponse.error(403, message)

    def append_notice(self, notice: str) -> None:
        """Attach a workflow-manager notice to the user-visible body.

        Mirrors the paper's "the workflow manager may modify the response
        sent back to the user with details about its own actions".
        """
        self.body += f"\n<div class=\"workflow-notice\">{notice}</div>"
        self.attributes.setdefault("workflow_notices", []).append(notice)
