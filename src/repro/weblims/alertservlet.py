"""The alerting servlet (``GET /workflow/alerts``).

Serves the :class:`repro.obs.watch.alerts.AlertEngine` report: every
rule with its current lifecycle status (inactive / pending / firing /
resolved), last evaluated value, and the recent transition history.
Registered by ``repro.obs.watch.install_watch``; until then the
endpoint answers ``{"enabled": false}``.

Views:

* ``GET /workflow/alerts`` — the full JSON report;
* ``?evaluate=1`` — run one evaluation pass first (pull-style
  deployments with no background evaluator);
* ``?format=text`` — a terse per-rule table.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer


class AlertServlet(Servlet):
    """JSON/text exposure of the alert engine."""

    name = "AlertServlet"

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        watcher = self.hub.watcher
        if watcher is None:
            return HttpResponse(
                status=200,
                body=json.dumps(
                    {
                        "enabled": False,
                        "hint": "call repro.obs.watch.install_watch",
                    }
                ),
                content_type="application/json",
            )
        if request.param("evaluate") in ("1", "true", "yes"):
            watcher.evaluate()
        report = watcher.alerts.report()
        report["enabled"] = True
        report["exporter"] = watcher.exporter.info()
        if request.param("format") == "text":
            return HttpResponse(
                status=200,
                body=_render_text(report),
                content_type="text/plain",
            )
        return HttpResponse(
            status=200,
            body=json.dumps(report, default=str),
            content_type="application/json",
        )


def _render_text(report: dict) -> str:
    lines = ["== alert rules =="]
    for rule in report["rules"]:
        value = rule["value"]
        shown = f"{value:g}" if isinstance(value, (int, float)) else "-"
        lines.append(
            f"  {rule['name']:<20} {rule['status']:<9} "
            f"value={shown:<8} {rule['comparison']}{rule['threshold']:g} "
            f"for={rule['for_s']:g}s [{rule['severity']}]"
        )
    if report["history"]:
        lines.append("== recent transitions ==")
        for entry in report["history"][-20:]:
            lines.append(
                f"  {entry['at']:.3f} {entry['rule']}: "
                f"{entry['from']} -> {entry['to']} "
                f"(value {entry['value']:g})"
            )
    exporter = report["exporter"]
    lines.append(
        f"== exporter: {exporter['pending']} pending, "
        f"{exporter['exported']} exported, {exporter['dropped']} dropped, "
        f"{exporter['sink_errors']} sink errors =="
    )
    return "\n".join(lines)
