"""A web-service (JSON) interface for Exp-DB.

§1 observes that some LIMS "allow programs to access the LIMS, e.g.,
via a web-service interface", and §3.2 notes Exp-DB did not support
that yet.  This module adds it: :class:`ApiServlet` exposes the same
four generic operations as the HTML interface, speaking JSON instead of
web forms.

The integration story is the point: the servlet is *just another
resource in the deployment descriptor*, so registering the
WorkflowFilter on its URL pattern gives programmatic clients the exact
same workflow interception as browser users — no change to the servlet,
the filter, or the engine (``install_api`` does both registrations).

Request shape (POST body parameters):

=========  =======================================================
parameter  meaning
=========  =======================================================
action     ``read`` | ``insert`` | ``update`` | ``delete``
table      target table
criteria   JSON object of equality criteria (read/update/delete)
values     JSON object of column values (insert/update)
=========  =======================================================

Responses are JSON documents with ``ok``, ``rows``/``row``/``affected``
and — when the workflow manager acted during postprocessing — a
``workflow_notices`` list.
"""

from __future__ import annotations

import datetime
import json
from typing import TYPE_CHECKING, Any

from repro.errors import (
    BadRequestError,
    ConstraintError,
    DatabaseError,
    TypeMismatchError,
    UnknownTableError,
)
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.weblims.app import ExpDB
    from repro.weblims.container import WebContainer


def _jsonable(value: Any) -> Any:
    if isinstance(value, datetime.datetime):
        return value.isoformat()
    return value


def _encode_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    return [
        {column: _jsonable(value) for column, value in row.items()}
        for row in rows
    ]


class ApiServlet(Servlet):
    """The machine-facing controller (JSON in, JSON out)."""

    name = "ApiServlet"

    def do_post(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        bean = container.context["table_bean"]
        try:
            action = request.require_param("action")
            handler = getattr(self, f"_do_{action}", None)
            if handler is None:
                raise BadRequestError(f"unknown action {action!r}")
            payload = handler(request, bean)
            status = 200
        except (BadRequestError, UnknownTableError) as error:
            payload, status = {"ok": False, "error": str(error)}, 400
        except (ConstraintError, TypeMismatchError) as error:
            payload, status = {"ok": False, "error": str(error)}, 409
        except DatabaseError as error:
            payload, status = {"ok": False, "error": str(error)}, 500
        response = HttpResponse(
            status=status,
            body=json.dumps(payload),
            content_type="application/json",
        )
        response.attributes["action"] = request.param("action")
        response.attributes["table"] = request.param("table")
        response.attributes.update(
            {
                key: value
                for key, value in payload.items()
                if key in ("rows", "row", "affected")
            }
        )
        return response

    # GET is read-only convenience: ?action=read&table=...&criteria=...
    do_get = do_post

    # ------------------------------------------------------------------

    @staticmethod
    def _json_param(request: HttpRequest, name: str) -> dict[str, Any]:
        raw = request.param(name)
        if raw in (None, ""):
            return {}
        try:
            value = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"parameter {name!r} is not valid JSON: {error}")
        if not isinstance(value, dict):
            raise BadRequestError(f"parameter {name!r} must be a JSON object")
        return value

    def _do_read(self, request: HttpRequest, bean) -> dict[str, Any]:
        table = request.require_param("table")
        criteria = self._json_param(request, "criteria")
        rows = bean.read(table, criteria or None)
        from repro.weblims.userservlet import UserRequestServlet

        rows = UserRequestServlet._order_and_limit(bean, table, request, rows)
        return {"ok": True, "rows": _encode_rows(rows), "count": len(rows)}

    def _do_insert(self, request: HttpRequest, bean) -> dict[str, Any]:
        table = request.require_param("table")
        values = self._json_param(request, "values")
        row = bean.insert(table, values)
        return {"ok": True, "row": _encode_rows([row])[0]}

    def _do_update(self, request: HttpRequest, bean) -> dict[str, Any]:
        table = request.require_param("table")
        criteria = self._json_param(request, "criteria")
        values = self._json_param(request, "values")
        if not values:
            raise BadRequestError("update requires a values object")
        affected = bean.update(table, criteria, values)
        return {"ok": True, "affected": affected}

    def _do_delete(self, request: HttpRequest, bean) -> dict[str, Any]:
        table = request.require_param("table")
        criteria = self._json_param(request, "criteria")
        affected = bean.delete(table, criteria)
        return {"ok": True, "affected": affected}


def install_api(expdb: "ExpDB", with_workflow_filter: bool = True) -> ApiServlet:
    """Register the JSON API at ``/api`` (and under the filter).

    When Exp-WF is installed and ``with_workflow_filter`` is true, the
    WorkflowFilter is additionally mapped onto ``/api/*`` — the
    one-line descriptor change that extends workflow interception to
    programmatic clients.
    """
    servlet = ApiServlet()
    expdb.container.descriptor.add_servlet(servlet, "/api", "/api/*")
    workflow_filter = expdb.container.context.get("workflow_filter")
    if with_workflow_filter and workflow_filter is not None:
        expdb.container.descriptor.add_filter(workflow_filter, "/api", "/api/*")
    return servlet
