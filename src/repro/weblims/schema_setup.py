"""The core Exp-DB data model (Fig. 2) and its extension mechanism.

The core tables define the general framework; each research group extends
them with experiment-type and sample-type child tables that inherit the
parent primary key.  ``ExperimentType`` / ``SampleType`` record the names
of those child tables so the generic components (TableBean, web forms,
the workflow engine) can discover them at runtime — "it allows Exp-DB to
dynamically identify a table name as being an experiment type".
"""

from __future__ import annotations

import datetime
from typing import Sequence

from repro.errors import SchemaError
from repro.minidb.engine import Database
from repro.minidb.schema import Column, TableSchema, fk
from repro.minidb.types import ColumnType

#: Names of the core tables, in creation order.
CORE_TABLES = (
    "Project",
    "ExperimentType",
    "SampleType",
    "Experiment",
    "Sample",
    "ExperimentTypeIO",
    "ExperimentIO",
)


def _now() -> datetime.datetime:
    return datetime.datetime.now()


def install_core_schema(db: Database) -> None:
    """Create the seven core tables of Fig. 2 plus their access indexes."""
    db.create_table(
        TableSchema(
            name="Project",
            columns=[
                Column("project_id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("description", ColumnType.TEXT),
                Column("created", ColumnType.TIMESTAMP, default=_now),
            ],
            primary_key=("project_id",),
            autoincrement="project_id",
        )
    )
    db.create_table(
        TableSchema(
            name="ExperimentType",
            columns=[
                Column("type_name", ColumnType.TEXT, nullable=False),
                Column("table_name", ColumnType.TEXT, nullable=False),
                Column("description", ColumnType.TEXT),
            ],
            primary_key=("type_name",),
        )
    )
    db.create_table(
        TableSchema(
            name="SampleType",
            columns=[
                Column("type_name", ColumnType.TEXT, nullable=False),
                Column("table_name", ColumnType.TEXT, nullable=False),
                Column("description", ColumnType.TEXT),
            ],
            primary_key=("type_name",),
        )
    )
    db.create_table(
        TableSchema(
            name="Experiment",
            columns=[
                Column("experiment_id", ColumnType.INTEGER, nullable=False),
                Column("project_id", ColumnType.INTEGER),
                Column("type_name", ColumnType.TEXT, nullable=False),
                Column("created", ColumnType.TIMESTAMP, default=_now),
                Column("status", ColumnType.TEXT, default="new"),
                Column("notes", ColumnType.TEXT),
            ],
            primary_key=("experiment_id",),
            foreign_keys=[
                fk("project_id", "Project", "project_id"),
                fk("type_name", "ExperimentType", "type_name"),
            ],
            autoincrement="experiment_id",
        )
    )
    db.create_table(
        TableSchema(
            name="Sample",
            columns=[
                Column("sample_id", ColumnType.INTEGER, nullable=False),
                Column("type_name", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("created", ColumnType.TIMESTAMP, default=_now),
                Column("quality", ColumnType.REAL),
                Column("description", ColumnType.TEXT),
            ],
            primary_key=("sample_id",),
            foreign_keys=[fk("type_name", "SampleType", "type_name")],
            autoincrement="sample_id",
        )
    )
    db.create_table(
        TableSchema(
            name="ExperimentTypeIO",
            columns=[
                Column("etio_id", ColumnType.INTEGER, nullable=False),
                Column("experiment_type", ColumnType.TEXT, nullable=False),
                Column("sample_type", ColumnType.TEXT, nullable=False),
                Column("direction", ColumnType.TEXT, nullable=False),
                Column("required", ColumnType.BOOLEAN, default=True),
            ],
            primary_key=("etio_id",),
            foreign_keys=[
                fk("experiment_type", "ExperimentType", "type_name"),
                fk("sample_type", "SampleType", "type_name"),
            ],
            autoincrement="etio_id",
        )
    )
    db.create_table(
        TableSchema(
            name="ExperimentIO",
            columns=[
                Column("eio_id", ColumnType.INTEGER, nullable=False),
                Column("experiment_id", ColumnType.INTEGER, nullable=False),
                Column("sample_id", ColumnType.INTEGER, nullable=False),
                Column("etio_id", ColumnType.INTEGER, nullable=False),
            ],
            primary_key=("eio_id",),
            foreign_keys=[
                fk("experiment_id", "Experiment", "experiment_id", "cascade"),
                fk("sample_id", "Sample", "sample_id"),
                fk("etio_id", "ExperimentTypeIO", "etio_id"),
            ],
            autoincrement="eio_id",
        )
    )
    # Access-path indexes for the lookups the LIMS and the workflow
    # engine issue constantly.
    db.create_index("Experiment", ["project_id"])
    db.create_index("Experiment", ["type_name"])
    db.create_index("ExperimentIO", ["experiment_id"])
    db.create_index("ExperimentIO", ["sample_id"])
    db.create_index("ExperimentIO", ["etio_id"])
    db.create_index("ExperimentTypeIO", ["experiment_type"])
    db.create_index("Sample", ["type_name"])


def add_experiment_type(
    db: Database,
    type_name: str,
    columns: Sequence[Column] = (),
    description: str = "",
) -> None:
    """Register a new experiment type with its dedicated child table.

    Creates a table named ``type_name`` inheriting ``Experiment``'s
    primary key, and records it in ``ExperimentType`` so the generic
    components can discover it — the paper's example types are ``Pcr``
    and ``Digestion``.
    """
    _ensure_extension_table_name(db, type_name)
    db.create_table(
        TableSchema(
            name=type_name,
            columns=[
                Column("experiment_id", ColumnType.INTEGER, nullable=False),
                *columns,
            ],
            primary_key=("experiment_id",),
            parent="Experiment",
        )
    )
    db.insert(
        "ExperimentType",
        {
            "type_name": type_name,
            "table_name": type_name,
            "description": description,
        },
    )


def add_sample_type(
    db: Database,
    type_name: str,
    columns: Sequence[Column] = (),
    description: str = "",
) -> None:
    """Register a new sample type with its dedicated child table."""
    _ensure_extension_table_name(db, type_name)
    db.create_table(
        TableSchema(
            name=type_name,
            columns=[
                Column("sample_id", ColumnType.INTEGER, nullable=False),
                *columns,
            ],
            primary_key=("sample_id",),
            parent="Sample",
        )
    )
    db.insert(
        "SampleType",
        {
            "type_name": type_name,
            "table_name": type_name,
            "description": description,
        },
    )


def declare_experiment_io(
    db: Database,
    experiment_type: str,
    sample_type: str,
    direction: str,
    required: bool = True,
) -> dict:
    """Declare that ``experiment_type`` consumes/produces ``sample_type``.

    ``direction`` is ``"input"`` or ``"output"``.  Returns the stored
    ``ExperimentTypeIO`` row; its ``etio_id`` is what ``ExperimentIO``
    entries reference, ensuring "only input and output samples of the
    correct type are stored".
    """
    if direction not in ("input", "output"):
        raise SchemaError(f"direction must be input or output, got {direction!r}")
    return db.insert(
        "ExperimentTypeIO",
        {
            "experiment_type": experiment_type,
            "sample_type": sample_type,
            "direction": direction,
            "required": required,
        },
    )


def _ensure_extension_table_name(db: Database, type_name: str) -> None:
    if type_name in CORE_TABLES:
        raise SchemaError(
            f"{type_name!r} is a core table name and cannot be a type table"
        )
    if db.has_table(type_name):
        raise SchemaError(f"table {type_name!r} already exists")
