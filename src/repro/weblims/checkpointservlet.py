"""The checkpoint servlet (``/workflow/checkpoint``).

Operational entry point for durability v2's online checkpoint:

* ``GET /workflow/checkpoint`` — JSON view of the WAL's segmented
  layout (segment count, records since the last checkpoint, rotation
  and compaction counters, last recovery accounting) so an operator can
  see how much tail a crash would have to replay;
* ``POST /workflow/checkpoint`` — take an online checkpoint *now*.
  Writers are paused only for the brief in-memory capture; the
  serialisation, checkpoint-file fsync, manifest swap and segment
  compaction all run while appends continue.  The action is recorded in
  the audit trail (``db.checkpoint``) and mirrored by the
  ``db_checkpoint_total`` metric.

A checkpoint attempted inside an open transaction (or on a database
with no WAL) is answered 409 — the caller's state is untouched.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.errors import TransactionError
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb import Database
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer


class CheckpointServlet(Servlet):
    """Inspect WAL layout; trigger an online checkpoint."""

    name = "CheckpointServlet"

    def __init__(
        self, db: "Database", hub: "ObservabilityHub | None" = None
    ) -> None:
        self.db = db
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        return HttpResponse(
            status=200,
            body=json.dumps(self.db.wal_info(), default=str),
            content_type="application/json",
        )

    def do_post(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        try:
            records = self.db.checkpoint(reason="operator")
        except TransactionError as error:
            return HttpResponse.error(409, str(error))
        if self.hub is not None:
            self.hub.audit_record(
                "db.checkpoint.request",
                actor=request.param("by", "") or None,
                event="operator",
                records=records,
            )
        body = {
            "checkpointed": True,
            "records": records,
            "checkpoints_total": self.db.checkpoints,
            "wal": self.db.wal_info(),
        }
        return HttpResponse(
            status=200,
            body=json.dumps(body, default=str),
            content_type="application/json",
        )
