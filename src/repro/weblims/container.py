"""The web container: routing, filter chains, sessions, instrumentation.

The :class:`DeploymentDescriptor` plays the role of Tomcat's ``web.xml``:
it declares servlets with their path mappings and filters with their URL
patterns.  "Filter-resource associations are defined in the web
application's deployment description file, making it simple for users to
apply the technology to any additional components they may add" — adding
Exp-WF to an Exp-DB instance is literally two descriptor calls, with no
change to any registered servlet.

URL patterns support three forms, matching the servlet spec subset the
paper needs: exact (``/user``), path prefix (``/user/*`` — also matches
``/user``), and match-all (``/*``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError, RoutingError, WebError
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Filter, FilterChain, Servlet
from repro.weblims.session import Session, SessionManager


def pattern_matches(pattern: str, path: str) -> bool:
    """Servlet-spec style URL pattern matching (exact / prefix / all)."""
    if pattern == "/*":
        return True
    if pattern.endswith("/*"):
        prefix = pattern[:-2]
        return path == prefix or path.startswith(prefix + "/")
    return path == pattern


@dataclass
class _FilterMapping:
    filter: Filter
    patterns: list[str]


@dataclass
class ContainerStats:
    """Request-level counters for the evaluation harness."""

    requests: int = 0
    filter_invocations: int = 0
    servlet_invocations: int = 0
    internal_forwards: int = 0
    errors: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.filter_invocations = 0
        self.servlet_invocations = 0
        self.internal_forwards = 0
        self.errors = 0


class DeploymentDescriptor:
    """Declarative wiring of servlets and filters (the ``web.xml`` analog)."""

    def __init__(self) -> None:
        self._servlets: dict[str, Servlet] = {}
        self._servlet_mappings: list[tuple[str, str]] = []  # (pattern, name)
        self._filter_mappings: list[_FilterMapping] = []

    def add_servlet(self, servlet: Servlet, *patterns: str) -> None:
        """Register a servlet under one or more URL patterns."""
        if not patterns:
            raise WebError(f"servlet {servlet.name!r} needs at least one pattern")
        if servlet.name in self._servlets:
            raise WebError(f"servlet {servlet.name!r} already declared")
        self._servlets[servlet.name] = servlet
        for pattern in patterns:
            self._servlet_mappings.append((pattern, servlet.name))

    def add_filter(self, filter_: Filter, *patterns: str) -> None:
        """Register a filter for one or more URL patterns.

        Declaration order is invocation order, as in the servlet spec.
        """
        if not patterns:
            raise WebError(f"filter {filter_.name!r} needs at least one pattern")
        self._filter_mappings.append(_FilterMapping(filter_, list(patterns)))

    def servlet_for(self, path: str) -> Servlet:
        """Resolve the servlet mapped to ``path`` (first match wins)."""
        for pattern, name in self._servlet_mappings:
            if pattern_matches(pattern, path):
                return self._servlets[name]
        raise RoutingError(f"no servlet mapped to {path!r}")

    def filters_for(self, path: str) -> list[Filter]:
        """Filters applicable to ``path`` in declaration order."""
        return [
            mapping.filter
            for mapping in self._filter_mappings
            if any(pattern_matches(pattern, path) for pattern in mapping.patterns)
        ]

    def servlet_names(self) -> list[str]:
        return list(self._servlets)

    def filter_names(self) -> list[str]:
        return [mapping.filter.name for mapping in self._filter_mappings]


class WebContainer:
    """Executes requests through the filter chain to the mapped servlet."""

    def __init__(self, descriptor: DeploymentDescriptor | None = None) -> None:
        self.descriptor = descriptor or DeploymentDescriptor()
        self.sessions = SessionManager()
        self.stats = ContainerStats()
        #: Application-scoped attribute space (ServletContext analog);
        #: Exp-DB stores shared beans here so servlets and filters find
        #: them without compile-time coupling.
        self.context: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Run one client request through filters and servlet.

        Library errors surface as proper HTTP error responses — a web
        container never lets an application exception escape to the
        transport.
        """
        self.stats.requests += 1
        try:
            return self._execute(request, apply_filters=True)
        except RoutingError as error:
            self.stats.errors += 1
            return HttpResponse.error(404, str(error))
        except WebError as error:
            self.stats.errors += 1
            return HttpResponse.error(400, str(error))
        except ReproError as error:
            # A library error no servlet translated: the container's
            # last line of defence is a 500, never a leaked exception.
            self.stats.errors += 1
            return HttpResponse.error(500, str(error))

    def forward(
        self, request: HttpRequest, path: str, apply_filters: bool = True
    ) -> HttpResponse:
        """Internal forward to another resource (RequestDispatcher analog).

        Per the paper, "a filter can also intercept requests and
        responses forwarded within the application", so forwards run the
        filter chain by default.
        """
        self.stats.internal_forwards += 1
        forwarded = HttpRequest(
            method=request.method,
            path=path,
            params=dict(request.params),
            headers=dict(request.headers),
            session_id=request.session_id,
            attributes=request.attributes,  # shared, as in the servlet API
        )
        forwarded.attributes["forwarded_from"] = request.path
        return self._execute(forwarded, apply_filters=apply_filters)

    def _execute(self, request: HttpRequest, apply_filters: bool) -> HttpResponse:
        servlet = self.descriptor.servlet_for(request.path)
        filters = (
            self.descriptor.filters_for(request.path) if apply_filters else []
        )

        def terminal(final_request: HttpRequest) -> HttpResponse:
            self.stats.servlet_invocations += 1
            return servlet.service(final_request, self)

        chain = FilterChain(
            filters,
            terminal,
            on_filter_invoked=lambda __: self._count_filter(),
        )
        return chain.proceed(request)

    def _count_filter(self) -> None:
        self.stats.filter_invocations += 1

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def session_for(
        self, request: HttpRequest, create: bool = False, user: str | None = None
    ) -> Session | None:
        """Resolve (or lazily create) the session for a request."""
        session = self.sessions.resolve(request.session_id)
        if session is None and create:
            session = self.sessions.create(user=user)
            request.session_id = session.session_id
        return session
