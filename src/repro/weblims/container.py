"""The web container: routing, filter chains, sessions, instrumentation.

The :class:`DeploymentDescriptor` plays the role of Tomcat's ``web.xml``:
it declares servlets with their path mappings and filters with their URL
patterns.  "Filter-resource associations are defined in the web
application's deployment description file, making it simple for users to
apply the technology to any additional components they may add" — adding
Exp-WF to an Exp-DB instance is literally two descriptor calls, with no
change to any registered servlet.

URL patterns support three forms, matching the servlet spec subset the
paper needs: exact (``/user``), path prefix (``/user/*`` — also matches
``/user``), and match-all (``/*``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError, RoutingError, WebError
from repro.obs.trace import PARENT_SPAN_KEY, TRACE_ID_KEY
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Filter, FilterChain, Servlet
from repro.weblims.session import Session, SessionManager


def pattern_matches(pattern: str, path: str) -> bool:
    """Servlet-spec style URL pattern matching (exact / prefix / all)."""
    if pattern == "/*":
        return True
    if pattern.endswith("/*"):
        prefix = pattern[:-2]
        return path == prefix or path.startswith(prefix + "/")
    return path == pattern


def pattern_specificity(pattern: str, path: str) -> int:
    """How specifically ``pattern`` matches ``path`` (higher wins).

    The servlet spec resolves overlapping mappings most-specific-first:
    an exact match beats any prefix match, a longer prefix beats a
    shorter one, ``/*`` beats nothing.  This is what lets an exact
    ``/workflow/metrics`` mapping coexist with ``/workflow/*``.
    """
    if not pattern_matches(pattern, path):
        return -1
    if pattern == "/*":
        return 0
    if pattern.endswith("/*"):
        return 1 + len(pattern) - 2
    return 1 + len(path) + 1  # exact: longer than any prefix can score


@dataclass
class _FilterMapping:
    filter: Filter
    patterns: list[str]


@dataclass
class ContainerStats:
    """Request-level counters for the evaluation harness."""

    requests: int = 0
    filter_invocations: int = 0
    servlet_invocations: int = 0
    internal_forwards: int = 0
    errors: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.filter_invocations = 0
        self.servlet_invocations = 0
        self.internal_forwards = 0
        self.errors = 0


class DeploymentDescriptor:
    """Declarative wiring of servlets and filters (the ``web.xml`` analog)."""

    def __init__(self) -> None:
        self._servlets: dict[str, Servlet] = {}
        self._servlet_mappings: list[tuple[str, str]] = []  # (pattern, name)
        self._filter_mappings: list[_FilterMapping] = []

    def add_servlet(self, servlet: Servlet, *patterns: str) -> None:
        """Register a servlet under one or more URL patterns."""
        if not patterns:
            raise WebError(f"servlet {servlet.name!r} needs at least one pattern")
        if servlet.name in self._servlets:
            raise WebError(f"servlet {servlet.name!r} already declared")
        self._servlets[servlet.name] = servlet
        for pattern in patterns:
            self._servlet_mappings.append((pattern, servlet.name))

    def add_filter(self, filter_: Filter, *patterns: str) -> None:
        """Register a filter for one or more URL patterns.

        Declaration order is invocation order, as in the servlet spec.
        """
        if not patterns:
            raise WebError(f"filter {filter_.name!r} needs at least one pattern")
        self._filter_mappings.append(_FilterMapping(filter_, list(patterns)))

    def servlet_for(self, path: str) -> Servlet:
        """Resolve the servlet mapped to ``path``.

        Most specific pattern wins (exact > longest prefix > ``/*``);
        declaration order breaks ties.
        """
        best: str | None = None
        best_score = -1
        for pattern, name in self._servlet_mappings:
            score = pattern_specificity(pattern, path)
            if score > best_score:
                best, best_score = name, score
        if best is None:
            raise RoutingError(f"no servlet mapped to {path!r}")
        return self._servlets[best]

    def filters_for(self, path: str) -> list[Filter]:
        """Filters applicable to ``path`` in declaration order."""
        return [
            mapping.filter
            for mapping in self._filter_mappings
            if any(pattern_matches(pattern, path) for pattern in mapping.patterns)
        ]

    def servlet_names(self) -> list[str]:
        return list(self._servlets)

    def filter_names(self) -> list[str]:
        return [mapping.filter.name for mapping in self._filter_mappings]


class WebContainer:
    """Executes requests through the filter chain to the mapped servlet."""

    def __init__(self, descriptor: DeploymentDescriptor | None = None) -> None:
        self.descriptor = descriptor or DeploymentDescriptor()
        self.sessions = SessionManager()
        self.stats = ContainerStats()
        #: Application-scoped attribute space (ServletContext analog);
        #: Exp-DB stores shared beans here so servlets and filters find
        #: them without compile-time coupling.
        self.context: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Run one client request through filters and servlet.

        Library errors surface as proper HTTP error responses — a web
        container never lets an application exception escape to the
        transport.

        With an observability hub in the context (``context["obs"]``)
        every request runs under a span — the root of a fresh trace, or
        a child when the caller already holds one open (so several
        requests of one experiment submission share a trace) — and its
        duration feeds the ``http_request_latency_ms`` histogram.
        """
        self.stats.requests += 1
        hub = self.context.get("obs")
        if hub is None:
            return self._handle_guarded(request)
        span = hub.tracer.start_span(
            "http.request", path=request.path, method=request.method
        )
        # Expose the trace context to servlets/filters downstream.
        request.attributes[TRACE_ID_KEY] = span.trace_id
        request.attributes[PARENT_SPAN_KEY] = span.span_id
        try:
            response = self._handle_guarded(request)
        finally:
            hub.tracer.end_span(span)
        span.attributes["status"] = response.status
        hub.registry.histogram(
            "http_request_latency_ms",
            help="Wall-clock request latency per path",
            path=request.path,
        ).observe(
            span.duration_ms or 0.0,
            trace_id=span.trace_id if hub.exemplars_enabled else None,
        )
        hub.registry.counter(
            "http_requests_total",
            help="Requests per path and status",
            path=request.path,
            status=response.status,
        ).inc()
        if hub.profiler is not None:
            # Fed here rather than in the filter so the slow-trace
            # retainer snapshots a *complete* tree: only once the root
            # span is ended is the whole request archived.
            hub.profiler.observe_request(
                request.param("workflow_action") or request.path,
                span.duration_ms or 0.0,
                trace_id=span.trace_id,
                pattern=request.param("pattern"),
            )
        return response

    def _handle_guarded(self, request: HttpRequest) -> HttpResponse:
        try:
            return self._execute(request, apply_filters=True)
        except RoutingError as error:
            self.stats.errors += 1
            return HttpResponse.error(404, str(error))
        except WebError as error:
            self.stats.errors += 1
            return HttpResponse.error(400, str(error))
        except ReproError as error:
            # A library error no servlet translated: the container's
            # last line of defence is a 500, never a leaked exception.
            self.stats.errors += 1
            return HttpResponse.error(500, str(error))

    def forward(
        self, request: HttpRequest, path: str, apply_filters: bool = True
    ) -> HttpResponse:
        """Internal forward to another resource (RequestDispatcher analog).

        Per the paper, "a filter can also intercept requests and
        responses forwarded within the application", so forwards run the
        filter chain by default.
        """
        self.stats.internal_forwards += 1
        forwarded = HttpRequest(
            method=request.method,
            path=path,
            params=dict(request.params),
            headers=dict(request.headers),
            session_id=request.session_id,
            attributes=request.attributes,  # shared, as in the servlet API
        )
        forwarded.attributes["forwarded_from"] = request.path
        return self._execute(forwarded, apply_filters=apply_filters)

    def _execute(self, request: HttpRequest, apply_filters: bool) -> HttpResponse:
        servlet = self.descriptor.servlet_for(request.path)
        filters = (
            self.descriptor.filters_for(request.path) if apply_filters else []
        )

        def terminal(final_request: HttpRequest) -> HttpResponse:
            self.stats.servlet_invocations += 1
            return servlet.service(final_request, self)

        chain = FilterChain(
            filters,
            terminal,
            on_filter_invoked=lambda __: self._count_filter(),
        )
        return chain.proceed(request)

    def _count_filter(self) -> None:
        self.stats.filter_invocations += 1

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def session_for(
        self, request: HttpRequest, create: bool = False, user: str | None = None
    ) -> Session | None:
        """Resolve (or lazily create) the session for a request."""
        session = self.sessions.resolve(request.session_id)
        if session is None and create:
            session = self.sessions.create(user=user)
            request.session_id = session.session_id
        return session
