"""The dead-letter queue servlet (``/workflow/dlq``).

Poison messages — rejected past their queue's delivery cap — are
quarantined by the broker, never dropped.  This servlet is the
operator's window into that quarantine:

* ``GET /workflow/dlq`` — JSON listing of every dead-lettered message
  (id, origin queue, rejection reason, delivery count, headers);
* ``POST /workflow/dlq?dlq_action=requeue&message_id=N`` — return one
  message to its queue for a fresh delivery attempt (the operator fixed
  the underlying cause); the requeue is recorded in the audit trail.

The GET body also reports ``depth`` so dashboards can alert on a
non-empty quarantine without parsing the message list.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.errors import DeadLetterError
from repro.messaging.broker import MessageBroker
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer


class DeadLetterServlet(Servlet):
    """Inspect and requeue quarantined messages."""

    name = "DeadLetterServlet"

    def __init__(
        self, broker: MessageBroker, hub: "ObservabilityHub | None" = None
    ) -> None:
        self.broker = broker
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        entries = self.broker.dead_letters()
        body = {
            "depth": len(entries),
            "dead_lettered_total": self.broker.stats.dead_lettered,
            "requeued_total": self.broker.stats.dlq_requeued,
            "messages": entries,
        }
        return HttpResponse(
            status=200,
            body=json.dumps(body, default=str),
            content_type="application/json",
        )

    def do_post(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        action = request.param("dlq_action")
        if action != "requeue":
            return HttpResponse.error(
                400, f"unknown dlq_action {action!r} (expected 'requeue')"
            )
        raw_id = request.require_param("message_id")
        try:
            message_id = int(raw_id)
        except ValueError:
            return HttpResponse.error(
                400, f"message_id must be an integer, got {raw_id!r}"
            )
        try:
            message = self.broker.requeue_dead(message_id)
        except DeadLetterError as error:
            return HttpResponse.error(404, str(error))
        if self.hub is not None:
            self.hub.audit_record(
                "dlq.requeue",
                message_id=message_id,
                queue=message.queue,
                message_kind=message.headers.get("kind"),
                by=request.param("by", ""),
            )
        body = {
            "requeued": message_id,
            "queue": message.queue,
            "depth": self.broker.dlq_depth(),
        }
        return HttpResponse(
            status=200,
            body=json.dumps(body),
            content_type="application/json",
        )
