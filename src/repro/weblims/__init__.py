"""weblims — the Exp-DB LIMS analog: a 3-tier web application substrate.

The paper's Exp-DB runs on Apache Tomcat: JSP pages (view), the
``UserRequestServlet`` (controller) and the generic ``TableBean`` (model)
over PostgreSQL.  This package rebuilds that stack in-process:

* :mod:`~repro.weblims.http` — request/response objects,
* :mod:`~repro.weblims.container` — the web container with **servlet
  filters configured through a deployment descriptor** (the mechanism
  Exp-WF's non-intrusive integration rests on),
* :mod:`~repro.weblims.templates` — the "JSP" template renderer,
* :mod:`~repro.weblims.tablebean` — the generic, metadata-driven table
  interface,
* :mod:`~repro.weblims.userservlet` — the controller handling the four
  basic operations (read / insert / update / delete),
* :mod:`~repro.weblims.schema_setup` — the core laboratory data model of
  Fig. 2 plus the experiment-/sample-type extension mechanism,
* :mod:`~repro.weblims.app` — wiring for a complete Exp-DB instance.
"""

from repro.weblims.app import ExpDB, build_expdb
from repro.weblims.container import DeploymentDescriptor, WebContainer
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Filter, FilterChain, Servlet
from repro.weblims.tablebean import TableBean

__all__ = [
    "ExpDB",
    "build_expdb",
    "WebContainer",
    "DeploymentDescriptor",
    "HttpRequest",
    "HttpResponse",
    "Servlet",
    "Filter",
    "FilterChain",
    "TableBean",
]
