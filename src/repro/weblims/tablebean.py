"""TableBean — the single, generic model interface to every table.

Reproduces §3.2 of the paper: "The TableBean functions as a single,
generic interface to all the tables in the database.  It provides methods
for querying, inserting, updating, and deleting data from a table.  In
order to handle non-trivial relationships between tables ... TableBean
checks available meta-information as can be found in the ExperimentType,
ExperimentTypeIO and SampleType tables."

Concretely: a read on ``PCR`` first discovers (via ``ExperimentType``)
that PCR is an experiment-type table, then reads both ``PCR`` and
``Experiment`` and returns merged records.  Inserts into a type table are
split into a parent insert (assigning the shared key) plus a child
insert, inside one transaction.  "When adding new experiment or sample
types to the data model, TableBean remains unchanged."
"""

from __future__ import annotations

from typing import Any

from repro.errors import BadRequestError, UnknownTableError
from repro.minidb.engine import Database
from repro.minidb.predicates import EQ, IN, Predicate, by_key
from repro.minidb.schema import TableSchema


class TableBean:
    """Generic, metadata-driven access to all Exp-DB tables."""

    def __init__(self, db: Database) -> None:
        self.db = db

    # ------------------------------------------------------------------
    # Metadata discovery
    # ------------------------------------------------------------------

    def experiment_type_of(self, table: str) -> str | None:
        """The experiment type registered for ``table``, if any.

        This is a real database read — the paper counts these metadata
        lookups among the accesses that dominate response time.
        """
        row = self.db.select_one("ExperimentType", EQ("table_name", table))
        return row["type_name"] if row else None

    def sample_type_of(self, table: str) -> str | None:
        """The sample type registered for ``table``, if any."""
        row = self.db.select_one("SampleType", EQ("table_name", table))
        return row["type_name"] if row else None

    def combined_schema(self, table: str) -> list:
        """Columns of ``table`` including inherited parent columns.

        Used for form generation over type tables: the user fills in the
        child-specific fields and the shared parent fields in one form.
        """
        schema = self.db.schema(table)
        columns = list(schema.columns)
        seen = {column.name for column in columns}
        parent_name = schema.parent
        while parent_name is not None:
            parent_schema = self.db.schema(parent_name)
            for column in parent_schema.columns:
                if column.name not in seen:
                    columns.append(column)
                    seen.add(column.name)
            parent_name = parent_schema.parent
        return columns

    def _schema(self, table: str) -> TableSchema:
        if not self.db.has_table(table):
            raise UnknownTableError(table)
        return self.db.schema(table)

    def _parent_chain(self, table: str) -> list[TableSchema]:
        """Schemas from ``table``'s parent up to the root (may be empty)."""
        chain = []
        parent_name = self._schema(table).parent
        while parent_name is not None:
            parent_schema = self.db.schema(parent_name)
            chain.append(parent_schema)
            parent_name = parent_schema.parent
        return chain

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def read(
        self, table: str, criteria: dict[str, Any] | None = None
    ) -> list[dict[str, Any]]:
        """Rows of ``table`` matching equality ``criteria``.

        Type tables are merged with their parent (so a read on ``PCR``
        reads ``PCR`` and ``Experiment``); criteria may reference child
        or inherited columns.
        """
        schema = self._schema(table)
        if schema.parent is None:
            predicate = self._criteria_predicate(schema, criteria)
            return self.db.select(table, predicate)
        merged = self.db.select_with_parent(table)
        if not criteria:
            return merged
        self._validate_merged_criteria(table, criteria)
        return [
            row
            for row in merged
            if all(row.get(column) == value for column, value in criteria.items())
        ]

    def _validate_merged_criteria(
        self, table: str, criteria: dict[str, Any]
    ) -> None:
        known = {column.name for column in self.combined_schema(table)}
        unknown = set(criteria) - known
        if unknown:
            raise BadRequestError(
                f"table {table!r} has no columns {sorted(unknown)}"
            )

    @staticmethod
    def _criteria_predicate(
        schema: TableSchema, criteria: dict[str, Any] | None
    ) -> Predicate | None:
        if not criteria:
            return None
        schema.validate_column_names(criteria)
        return by_key(list(criteria), list(criteria.values()))

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        """Insert a row, splitting parent/child parts for type tables.

        For an experiment-type table the ``Experiment`` row is created
        first (assigning ``experiment_id``), then the child row under the
        same key, atomically.  The returned dict is the merged record.
        The ``type_name`` metadata column is filled in automatically.
        """
        schema = self._schema(table)
        chain = self._parent_chain(table)
        if not chain:
            return self.db.insert(table, values)

        root = chain[-1]
        own_columns = {column.name for column in schema.columns}
        known = {column.name for column in self.combined_schema(table)}
        unknown = set(values) - known
        if unknown:
            raise BadRequestError(
                f"table {table!r} has no columns {sorted(unknown)}"
            )
        child_values = {
            name: value for name, value in values.items() if name in own_columns
        }
        parent_values = {
            name: value
            for name, value in values.items()
            if name not in own_columns
        }
        type_name = self._registered_type_name(table, root.name)
        if type_name is not None and root.has_column("type_name"):
            parent_values.setdefault("type_name", type_name)

        with self.db.transaction():
            parent_row = self.db.insert(root.name, parent_values)
            for key_column in root.primary_key:
                child_values[key_column] = parent_row[key_column]
            # Multi-level chains insert each intermediate level too.
            for intermediate in reversed(chain[:-1]):
                self.db.insert(
                    intermediate.name,
                    {c: child_values[c] for c in root.primary_key},
                )
            child_row = self.db.insert(table, child_values)
        merged = dict(parent_row)
        merged.update(child_row)
        return merged

    def _registered_type_name(self, table: str, root: str) -> str | None:
        if root == "Experiment":
            return self.experiment_type_of(table)
        if root == "Sample":
            return self.sample_type_of(table)
        return None

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------

    def update(
        self,
        table: str,
        criteria: dict[str, Any],
        changes: dict[str, Any],
    ) -> int:
        """Update rows matching ``criteria``; returns the affected count.

        For type tables, changes are routed to the table that owns each
        column (child-specific columns to the child, shared columns to
        the parent), matched through the shared primary key.
        """
        if not criteria:
            raise BadRequestError("update requires search criteria")
        schema = self._schema(table)
        chain = self._parent_chain(table)
        if not chain:
            predicate = self._criteria_predicate(schema, criteria)
            return self.db.update(table, predicate, changes)

        targets = self.read(table, criteria)
        if not targets:
            return 0
        key_columns = schema.primary_key
        own_columns = {column.name for column in schema.columns}
        child_changes = {
            name: value for name, value in changes.items() if name in own_columns
        }
        remaining = {
            name: value
            for name, value in changes.items()
            if name not in own_columns
        }
        with self.db.transaction():
            for row in targets:
                key = [row[column] for column in key_columns]
                predicate = by_key(list(key_columns), key)
                if child_changes:
                    self.db.update(table, predicate, child_changes)
                pending = dict(remaining)
                for ancestor in chain:
                    owned = {
                        name: value
                        for name, value in pending.items()
                        if ancestor.has_column(name)
                    }
                    if owned:
                        self.db.update(ancestor.name, predicate, owned)
                        for name in owned:
                            del pending[name]
                if pending:
                    raise BadRequestError(
                        f"table {table!r} has no columns {sorted(pending)}"
                    )
        return len(targets)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, table: str, criteria: dict[str, Any]) -> int:
        """Delete rows matching ``criteria``; returns the affected count.

        Deleting from a type table removes the *root* record, which
        cascades down the inheritance chain — a PCR experiment is gone
        from both ``PCR`` and ``Experiment``.
        """
        if not criteria:
            raise BadRequestError("delete requires search criteria")
        schema = self._schema(table)
        chain = self._parent_chain(table)
        if not chain:
            predicate = self._criteria_predicate(schema, criteria)
            return self.db.delete(table, predicate)
        targets = self.read(table, criteria)
        if not targets:
            return 0
        root = chain[-1]
        key_columns = root.primary_key
        keys = [row[key_columns[0]] for row in targets]
        if len(key_columns) == 1:
            predicate: Predicate = IN(key_columns[0], keys)
        else:  # pragma: no cover - core schema uses single-column keys
            raise BadRequestError("composite-key type tables are unsupported")
        self.db.delete(root.name, predicate)
        return len(targets)
