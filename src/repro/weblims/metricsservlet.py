"""The metrics exposition servlet (``GET /workflow/metrics``).

Serves the observability hub's registry as a Prometheus-style text
exposition.  Registered by ``repro.obs.install_observability`` under the
exact pattern ``/workflow/metrics`` — the deployment descriptor's
most-specific-match rule lets it coexist with the WorkflowServlet's
``/workflow/*`` prefix mapping, exactly how a real container resolves
overlapping ``web.xml`` patterns.

The hub is duck-typed (anything with a ``registry.render()``) so this
module needs no runtime dependency on :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer


class MetricsServlet(Servlet):
    """Text exposition of every registered metric."""

    name = "MetricsServlet"

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        return HttpResponse(
            status=200,
            body=self.hub.registry.render(),
            content_type="text/plain; version=0.0.4",
        )
