"""Server-side sessions for the web container.

Exp-DB users are logged-in scientists; the workflow module needs to know
*who* performs an action (e.g. which human agent answered an
authorization request).  Sessions carry that identity plus arbitrary
attributes, keyed by an opaque id the client echoes back (the cookie
analog).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SessionError


@dataclass
class Session:
    """One user's server-side state."""

    session_id: str
    user: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    invalidated: bool = False

    def get(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def set(self, name: str, value: Any) -> None:
        self.attributes[name] = value


class SessionManager:
    """Creates and resolves sessions for the container."""

    def __init__(self) -> None:
        self._sessions: dict[str, Session] = {}
        self._next_id = 1

    def create(self, user: str | None = None) -> Session:
        """Create a fresh session, optionally bound to a user name."""
        session = Session(session_id=f"sess-{self._next_id}", user=user)
        self._next_id += 1
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        """Resolve an existing session; raises for unknown/invalidated ids."""
        session = self._sessions.get(session_id)
        if session is None or session.invalidated:
            raise SessionError(f"unknown or expired session {session_id!r}")
        return session

    def resolve(self, session_id: str | None) -> Session | None:
        """Like :meth:`get` but returns ``None`` instead of raising."""
        if session_id is None:
            return None
        session = self._sessions.get(session_id)
        if session is None or session.invalidated:
            return None
        return session

    def invalidate(self, session_id: str) -> None:
        """Log a session out."""
        session = self.get(session_id)
        session.invalidated = True

    def active_count(self) -> int:
        """Number of live sessions."""
        return sum(1 for s in self._sessions.values() if not s.invalidated)
