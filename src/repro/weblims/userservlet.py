"""UserRequestServlet — the Exp-DB controller.

"It handles all incoming requests from the JSP pages.  It calls the
JavaBean TableBean (model) if necessary, and then redirects the response
to the JSP responsible for returning a new web-page to the client."

The servlet exposes the four generic operations of §3.2 through the
``action`` parameter:

=========  =====================================================
action     parameters
=========  =====================================================
list       —                      (lists all tables)
form       table                  (generated insert web-form)
read       table, ``c_<col>``...  (search criteria)
insert     table, ``v_<col>``...  (new record values)
update     table, ``c_<col>``..., ``v_<col>``...
delete     table, ``c_<col>``...
=========  =====================================================

Besides the rendered HTML, the servlet records *structured* results in
``response.attributes`` (action, table, rows, affected count).  That is
the hook the WorkflowFilter's postprocessing mode uses to observe what a
request actually did without parsing HTML.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import (
    BadRequestError,
    ConstraintError,
    DatabaseError,
    TypeMismatchError,
    UnknownTableError,
)
from repro.minidb.types import coerce
from repro.weblims.forms import render_form_for_columns
from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.weblims.container import WebContainer


class UserRequestServlet(Servlet):
    """The MVC controller of Exp-DB."""

    name = "UserRequestServlet"

    def service(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        if request.method not in ("GET", "POST"):
            return HttpResponse.error(
                405, f"method {request.method} not allowed"
            )
        bean = container.context["table_bean"]
        templates = container.context["templates"]
        action = request.param("action", "list")
        try:
            handler = getattr(self, f"_do_{action}", None)
            if handler is None:
                raise BadRequestError(f"unknown action {action!r}")
            response = handler(request, bean, templates)
        except (BadRequestError, UnknownTableError) as error:
            response = self._error_page(templates, 400, str(error))
        except (ConstraintError, TypeMismatchError) as error:
            response = self._error_page(templates, 409, str(error))
        except DatabaseError as error:
            response = self._error_page(templates, 500, str(error))
        response.attributes.setdefault("action", action)
        response.attributes.setdefault("table", request.param("table"))
        return response

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _do_list(self, request, bean, templates) -> HttpResponse:
        tables = bean.db.tables()
        body = templates.render("tables", {"tables": tables})
        response = HttpResponse.html(body)
        response.attributes["tables"] = tables
        return response

    def _do_form(self, request, bean, templates) -> HttpResponse:
        table = request.require_param("table")
        schema = bean.db.schema(table)
        # Type tables present one combined form (child + inherited parent
        # fields); the shared key is assigned by the system, so every key
        # column is skipped alongside the root's autoincrement column.
        columns = bean.combined_schema(table)
        skip = set(schema.primary_key) if schema.parent else (
            {schema.autoincrement} if schema.autoincrement else set()
        )
        form_html = render_form_for_columns(
            columns,
            action=request.path,
            hidden={"action": "insert", "table": table},
            skip=skip,
        )
        body = templates.render("form", {"table": table, "form": form_html})
        return HttpResponse.html(body)

    def _do_read(self, request, bean, templates) -> HttpResponse:
        table = request.require_param("table")
        criteria = self._typed_params(bean, table, request, "c_")
        rows = bean.read(table, criteria)
        rows = self._order_and_limit(bean, table, request, rows)
        columns = sorted({column for row in rows for column in row})
        body = templates.render(
            "results",
            {
                "table": table,
                "columns": columns,
                "rows": [[_display(row.get(c)) for c in columns] for row in rows],
                "count": len(rows),
            },
        )
        response = HttpResponse.html(body)
        response.attributes["rows"] = rows
        response.attributes["criteria"] = criteria
        return response

    def _do_insert(self, request, bean, templates) -> HttpResponse:
        table = request.require_param("table")
        values = self._typed_params(bean, table, request, "v_")
        row = bean.insert(table, values)
        body = templates.render(
            "confirm",
            {"table": table, "message": "record inserted", "affected": 1},
        )
        response = HttpResponse.html(body)
        response.attributes["row"] = row
        response.attributes["affected"] = 1
        return response

    def _do_update(self, request, bean, templates) -> HttpResponse:
        table = request.require_param("table")
        criteria = self._typed_params(bean, table, request, "c_")
        changes = self._typed_params(bean, table, request, "v_")
        if not changes:
            raise BadRequestError("update requires at least one v_ value")
        affected = bean.update(table, criteria, changes)
        body = templates.render(
            "confirm",
            {"table": table, "message": "records updated", "affected": affected},
        )
        response = HttpResponse.html(body)
        response.attributes["affected"] = affected
        response.attributes["criteria"] = criteria
        response.attributes["changes"] = changes
        return response

    def _do_delete(self, request, bean, templates) -> HttpResponse:
        table = request.require_param("table")
        criteria = self._typed_params(bean, table, request, "c_")
        affected = bean.delete(table, criteria)
        body = templates.render(
            "confirm",
            {"table": table, "message": "records deleted", "affected": affected},
        )
        response = HttpResponse.html(body)
        response.attributes["affected"] = affected
        response.attributes["criteria"] = criteria
        return response

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _typed_params(
        bean, table: str, request: HttpRequest, prefix: str
    ) -> dict[str, Any]:
        """Parse ``prefix``-named parameters into typed column values.

        Columns are resolved against the combined (child + inherited)
        schema so forms over type tables can set parent fields too.
        """
        raw = request.params_with_prefix(prefix)
        if not raw:
            return {}
        columns = {column.name: column for column in bean.combined_schema(table)}
        typed: dict[str, Any] = {}
        for name, value in raw.items():
            column = columns.get(name)
            if column is None:
                raise BadRequestError(f"table {table!r} has no column {name!r}")
            if value == "":
                typed[name] = None
                continue
            try:
                typed[name] = coerce(value, column.type, f"{table}.{name}")
            except TypeMismatchError as error:
                raise BadRequestError(str(error)) from None
        return typed

    @staticmethod
    def _order_and_limit(
        bean, table: str, request: HttpRequest, rows: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Apply optional ``order_by``/``desc``/``limit`` parameters.

        Sorting happens over the already-merged records so type tables
        can be ordered by inherited parent columns too; NULLs sort
        first, as in the engine's ORDER BY.
        """
        order_by = request.param("order_by")
        if order_by is not None:
            known = {column.name for column in bean.combined_schema(table)}
            if order_by not in known:
                raise BadRequestError(
                    f"table {table!r} has no column {order_by!r}"
                )
            descending = (request.param("desc", "false") or "").lower() == "true"
            rows = sorted(
                rows,
                key=lambda row: (
                    row.get(order_by) is not None,
                    row.get(order_by) if row.get(order_by) is not None else 0,
                ),
                reverse=descending,
            )
        limit = request.param("limit")
        if limit is not None:
            try:
                count = int(limit)
            except ValueError:
                raise BadRequestError(f"bad limit {limit!r}") from None
            if count < 0:
                raise BadRequestError("limit must be >= 0")
            rows = rows[:count]
        return rows

    @staticmethod
    def _error_page(templates, status: int, message: str) -> HttpResponse:
        body = templates.render("error", {"status": status, "message": message})
        response = HttpResponse.html(body, status=status)
        response.attributes["error"] = message
        return response


def _display(value: Any) -> str:
    """Human-readable cell text for the results page."""
    if value is None:
        return ""
    return str(value)
