"""Role-based access control as a servlet filter.

The Exp-DB line of work includes fine-granularity access control for
3-tier LIMS (Li, Naeem, Kemme, IDEAS 2005 — reference [20] of the
paper).  This module provides the filter-technology version of it,
mainly to demonstrate the composability the deployment-descriptor
mechanism buys: the AccessControlFilter is declared *before* the
WorkflowFilter on the same URL patterns, and the two compose without
knowing about each other — authentication/authorization runs first,
workflow interception second.

Model:

* a session carries a user; users have roles
  (:class:`AccessPolicy.assign`);
* rules grant ``(role, table pattern, actions)``; actions are the
  generic operations plus ``workflow`` for WorkflowServlet actions;
* the default is deny for writes, allow for reads (a lab's natural
  posture: everyone browses, only authorized roles modify).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Filter, FilterChain

#: Actions considered reads (allowed by default).
READ_ACTIONS = frozenset({"read", "list", "form"})


@dataclass(frozen=True)
class AccessRule:
    """One grant: ``role`` may perform ``actions`` on ``table_pattern``."""

    role: str
    table_pattern: str
    actions: frozenset[str]

    def permits(self, roles: set[str], table: str | None, action: str) -> bool:
        if self.role not in roles:
            return False
        if action not in self.actions and "*" not in self.actions:
            return False
        if table is None:
            return True
        return fnmatch.fnmatch(table, self.table_pattern)


@dataclass
class AccessPolicy:
    """User→roles assignments plus the grant rules."""

    _roles: dict[str, set[str]] = field(default_factory=dict)
    _rules: list[AccessRule] = field(default_factory=list)
    allow_anonymous_reads: bool = True

    def assign(self, user: str, *roles: str) -> None:
        """Give ``user`` one or more roles."""
        self._roles.setdefault(user, set()).update(roles)

    def grant(self, role: str, table_pattern: str, *actions: str) -> None:
        """Allow ``role`` to perform ``actions`` on matching tables."""
        self._rules.append(
            AccessRule(role, table_pattern, frozenset(actions))
        )

    def roles_of(self, user: str | None) -> set[str]:
        if user is None:
            return set()
        return set(self._roles.get(user, ()))

    def permits(self, user: str | None, table: str | None, action: str) -> bool:
        """The access decision for one request."""
        if action in READ_ACTIONS and self.allow_anonymous_reads:
            return True
        roles = self.roles_of(user)
        return any(rule.permits(roles, table, action) for rule in self._rules)


class AccessControlFilter(Filter):
    """Denies requests the policy does not permit (401/403)."""

    name = "AccessControlFilter"

    def __init__(self, policy: AccessPolicy) -> None:
        self.policy = policy
        self.denied_count = 0

    def do_filter(
        self, request: HttpRequest, chain: FilterChain
    ) -> HttpResponse:
        user = request.attributes.get("user") or request.headers.get("x-user")
        action = (
            "workflow"
            if request.param("workflow_action") is not None
            else request.param("action", "list")
        )
        table = request.param("table")
        if not self.policy.permits(user, table, action):
            self.denied_count += 1
            status = 401 if user is None else 403
            return HttpResponse.error(
                status,
                f"user {user or '<anonymous>'} may not perform "
                f"{action!r} on {table or 'this resource'}",
            )
        request.attributes["user"] = user
        return chain.proceed(request)


def install_access_control(expdb, policy: AccessPolicy) -> AccessControlFilter:
    """Register the access filter ahead of everything on ``/user``/``/api``.

    Declaration order is invocation order, so installing access control
    *before* workflow support makes authentication run first; installing
    it after still works — the filters are independent — but then denied
    users would already have been workflow-validated.
    """
    filter_ = AccessControlFilter(policy)
    expdb.container.descriptor.add_filter(
        filter_, "/user", "/user/*", "/api", "/api/*", "/workflow", "/workflow/*"
    )
    return filter_
