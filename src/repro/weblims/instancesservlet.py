"""The instance-inspection servlet (``GET /workflow/instances``).

The operator's view onto in-flight workflow instances, backed by the
:class:`repro.obs.watch.recorder.FlightRecorder` and the state-residency
tracker.  Registered by ``repro.obs.watch.install_watch``; until then
the endpoint answers ``{"enabled": false}`` (the profiling servlet's
opt-in contract).

Views:

* ``GET /workflow/instances`` — workflow listing (``?status=running``
  filters; ``limit``/``offset`` paginate) with per-workflow stuck
  flags;
* ``GET /workflow/instances/<id>`` — one workflow's summary header;
* ``GET /workflow/instances/<id>/timeline`` — the full flight-recorder
  timeline (audit + spans + leases + DLQ merged); ``?format=text``
  renders the CLI printout.

An unknown workflow id answers a structured 404 JSON payload
(``{"error": "workflow_not_found", ...}``) — the same contract the
audit servlet applies to timeline queries.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.weblims.http import HttpRequest, HttpResponse
from repro.weblims.servlet import Servlet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObservabilityHub
    from repro.weblims.container import WebContainer

#: Listing page-size ceiling.
MAX_LIMIT = 500


def _json(payload: dict[str, Any], status: int = 200) -> HttpResponse:
    return HttpResponse(
        status=status,
        body=json.dumps(payload, default=str),
        content_type="application/json",
    )


def not_found_payload(workflow_id: int) -> dict[str, Any]:
    """The structured not-found body shared with the audit servlet."""
    return {
        "error": "workflow_not_found",
        "workflow_id": workflow_id,
        "found": False,
    }


class InstancesServlet(Servlet):
    """JSON views over live workflow instances and their timelines."""

    name = "InstancesServlet"

    def __init__(self, hub: "ObservabilityHub") -> None:
        self.hub = hub

    def do_get(
        self, request: HttpRequest, container: "WebContainer"
    ) -> HttpResponse:
        watcher = self.hub.watcher
        if watcher is None:
            return _json(
                {
                    "enabled": False,
                    "hint": "call repro.obs.watch.install_watch",
                }
            )
        tail = request.path.removeprefix("/workflow/instances").strip("/")
        if not tail:
            return self._listing(request, watcher)
        parts = tail.split("/")
        try:
            workflow_id = int(parts[0])
        except ValueError:
            return HttpResponse.error(
                400, f"workflow id must be an integer, got {parts[0]!r}"
            )
        if len(parts) == 1:
            summary = watcher.recorder.summary(workflow_id)
            if not summary["found"]:
                return _json(not_found_payload(workflow_id), status=404)
            return _json(summary)
        if len(parts) == 2 and parts[1] == "timeline":
            timeline = watcher.recorder.timeline(workflow_id)
            if not timeline["found"]:
                return _json(not_found_payload(workflow_id), status=404)
            if request.param("format") == "text":
                return HttpResponse(
                    status=200,
                    body=watcher.recorder.render_text(workflow_id),
                    content_type="text/plain",
                )
            return _json(timeline)
        return HttpResponse.error(404, f"no such view {request.path!r}")

    def _listing(self, request: HttpRequest, watcher) -> HttpResponse:
        from repro.minidb.predicates import EQ

        db = watcher.recorder.db
        status = request.param("status")
        try:
            limit = _int_param(request, "limit", 100, 1, MAX_LIMIT)
            offset = _int_param(request, "offset", 0, 0, None)
        except ValueError as error:
            return HttpResponse.error(400, str(error))
        predicate = EQ("status", status) if status else None
        rows = db.select("Workflow", predicate, order_by="workflow_id")
        total = len(rows)
        page = rows[offset:offset + limit]
        stuck = watcher.stuck()
        stuck_by_workflow: dict[int, int] = {}
        for entry in stuck:
            wid = entry.get("workflow_id")
            if isinstance(wid, int):
                stuck_by_workflow[wid] = stuck_by_workflow.get(wid, 0) + 1
        patterns = {
            row["pattern_id"]: row["name"]
            for row in db.select("WorkflowPattern")
        }
        return _json(
            {
                "total": total,
                "offset": offset,
                "limit": limit,
                "stuck_total": len(stuck),
                "instances": [
                    {
                        "workflow_id": row["workflow_id"],
                        "pattern": patterns.get(row["pattern_id"]),
                        "status": row["status"],
                        "created": row["created"],
                        "stuck_entities": stuck_by_workflow.get(
                            row["workflow_id"], 0
                        ),
                    }
                    for row in page
                ],
            }
        )


def _int_param(
    request: HttpRequest,
    name: str,
    default: int,
    minimum: int,
    maximum: int | None,
) -> int:
    raw = request.param(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"parameter {name!r} must be an integer")
    if value < minimum:
        raise ValueError(f"parameter {name!r} must be >= {minimum}")
    if maximum is not None and value > maximum:
        raise ValueError(f"parameter {name!r} must be <= {maximum}")
    return value
