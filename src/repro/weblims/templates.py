"""A small server-page template engine — the JSP analog.

Exp-DB's view layer is JSP; pages receive a model (dict) from the
controller and render HTML.  The engine here supports the constructs the
LIMS pages actually use:

* ``{{ expr }}`` — HTML-escaped interpolation of a dotted lookup
  (``{{ row.name }}``, indexable into dicts and attributes),
* ``{{! expr }}`` — raw (unescaped) interpolation, for pre-rendered
  fragments like generated forms,
* ``{% for item in expr %} ... {% endfor %}`` — iteration (with
  ``loop.index`` available inside, 1-based),
* ``{% if expr %} ... {% else %} ... {% endif %}`` — truthiness tests,
  with ``not expr`` supported.

Templates are compiled once into a node tree and are reusable across
requests.
"""

from __future__ import annotations

import html
import re
from typing import Any

from repro.errors import TemplateError

_TOKEN = re.compile(r"({{.*?}}|{%.*?%})", re.DOTALL)


def _resolve(expression: str, context: dict[str, Any]) -> Any:
    """Resolve a dotted lookup like ``row.name`` against the context."""
    expression = expression.strip()
    negate = False
    if expression.startswith("not "):
        negate = True
        expression = expression[4:].strip()
    parts = expression.split(".")
    if not parts or not parts[0]:
        raise TemplateError(f"empty expression: {expression!r}")
    if parts[0] not in context:
        raise TemplateError(f"unknown template variable {parts[0]!r}")
    value: Any = context[parts[0]]
    for part in parts[1:]:
        if isinstance(value, dict):
            if part not in value:
                raise TemplateError(
                    f"missing key {part!r} while resolving {expression!r}"
                )
            value = value[part]
        elif hasattr(value, part):
            value = getattr(value, part)
        else:
            raise TemplateError(
                f"cannot resolve {part!r} while resolving {expression!r}"
            )
    if negate:
        return not value
    return value


class _Node:
    def render(self, context: dict[str, Any], out: list[str]) -> None:
        raise NotImplementedError


class _Text(_Node):
    def __init__(self, text: str) -> None:
        self.text = text

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        out.append(self.text)


class _Interpolation(_Node):
    def __init__(self, expression: str, raw: bool) -> None:
        self.expression = expression
        self.raw = raw

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        value = _resolve(self.expression, context)
        text = "" if value is None else str(value)
        out.append(text if self.raw else html.escape(text, quote=True))


class _For(_Node):
    def __init__(self, variable: str, expression: str, body: list[_Node]) -> None:
        self.variable = variable
        self.expression = expression
        self.body = body

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        iterable = _resolve(self.expression, context)
        if iterable is None:
            return
        inner = dict(context)
        for index, item in enumerate(iterable, start=1):
            inner[self.variable] = item
            inner["loop"] = {"index": index}
            for node in self.body:
                node.render(inner, out)


class _If(_Node):
    def __init__(
        self,
        expression: str,
        then_body: list[_Node],
        else_body: list[_Node],
    ) -> None:
        self.expression = expression
        self.then_body = then_body
        self.else_body = else_body

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        branch = self.then_body if _resolve(self.expression, context) else self.else_body
        for node in branch:
            node.render(context, out)


class Template:
    """A compiled template; :meth:`render` is reentrant."""

    def __init__(self, source: str, name: str = "<template>") -> None:
        self.name = name
        tokens = [piece for piece in _TOKEN.split(source) if piece]
        self._nodes, remaining = self._parse(tokens, 0, ())
        if remaining != len(tokens):
            raise TemplateError(f"{name}: unbalanced block tags")

    def _parse(
        self, tokens: list[str], position: int, until: tuple[str, ...]
    ) -> tuple[list[_Node], int]:
        nodes: list[_Node] = []
        while position < len(tokens):
            token = tokens[position]
            if token.startswith("{{"):
                inner = token[2:-2]
                raw = inner.startswith("!")
                nodes.append(_Interpolation(inner[1:] if raw else inner, raw))
                position += 1
            elif token.startswith("{%"):
                directive = token[2:-2].strip()
                keyword = directive.split(None, 1)[0] if directive else ""
                if keyword in until:
                    return nodes, position
                if keyword == "for":
                    match = re.fullmatch(
                        r"for\s+(\w+)\s+in\s+(.+)", directive
                    )
                    if not match:
                        raise TemplateError(
                            f"{self.name}: bad for directive {directive!r}"
                        )
                    body, position = self._parse(
                        tokens, position + 1, ("endfor",)
                    )
                    self._expect(tokens, position, "endfor")
                    nodes.append(_For(match.group(1), match.group(2), body))
                    position += 1
                elif keyword == "if":
                    expression = directive[2:].strip()
                    then_body, position = self._parse(
                        tokens, position + 1, ("else", "endif")
                    )
                    else_body: list[_Node] = []
                    if self._directive_at(tokens, position) == "else":
                        else_body, position = self._parse(
                            tokens, position + 1, ("endif",)
                        )
                    self._expect(tokens, position, "endif")
                    nodes.append(_If(expression, then_body, else_body))
                    position += 1
                else:
                    raise TemplateError(
                        f"{self.name}: unknown directive {directive!r}"
                    )
            else:
                nodes.append(_Text(token))
                position += 1
        if until:
            raise TemplateError(
                f"{self.name}: missing closing tag, expected one of {until}"
            )
        return nodes, position

    def _directive_at(self, tokens: list[str], position: int) -> str | None:
        if position >= len(tokens):
            return None
        token = tokens[position]
        if not token.startswith("{%"):
            return None
        return token[2:-2].strip().split(None, 1)[0]

    def _expect(self, tokens: list[str], position: int, keyword: str) -> None:
        if self._directive_at(tokens, position) != keyword:
            raise TemplateError(f"{self.name}: expected {{% {keyword} %}}")

    def render(self, context: dict[str, Any] | None = None) -> str:
        """Render with ``context`` as the variable namespace."""
        out: list[str] = []
        for node in self._nodes:
            node.render(dict(context or {}), out)
        return "".join(out)


class TemplateRegistry:
    """Named templates — the application's set of "JSP pages"."""

    def __init__(self) -> None:
        self._templates: dict[str, Template] = {}

    def register(self, name: str, source: str) -> Template:
        """Compile and store a template under ``name``."""
        template = Template(source, name=name)
        self._templates[name] = template
        return template

    def render(self, name: str, context: dict[str, Any] | None = None) -> str:
        """Render the template registered as ``name``."""
        try:
            template = self._templates[name]
        except KeyError:
            raise TemplateError(f"unknown template {name!r}") from None
        return template.render(context)

    def names(self) -> list[str]:
        return list(self._templates)
