"""Exp-WF — workflow support for laboratory information systems.

A from-scratch Python reproduction of the ICDE 2006 paper by Gabor and
Kemme.  The package is organised in layers that mirror the paper's system:

``repro.minidb``
    An in-process relational database engine (the PostgreSQL analog):
    typed schemas, constraints, indexes, transactions and a write-ahead
    log with crash recovery.

``repro.weblims``
    The Exp-DB LIMS analog: a WSGI-style web container with servlet
    filters, a generic metadata-driven table interface (``TableBean``),
    HTML templating, and the core laboratory data model.

``repro.messaging``
    A persistent, asynchronous message broker (the OpenJMS analog) used
    for agent communication.

``repro.xmlbridge``
    Relational-to-XML and XML-to-relational translation (the NeT/CoT
    analog) used as the generic agent data-interchange format.

``repro.agents``
    The software-agent framework: a template agent class plus simulated
    robot, human-technician and analysis-program agents.

``repro.core``
    Exp-WF itself: the workflow specification model, the two-level
    execution model with multiple task instances, the condition
    language, the workflow engine (``WorkflowBean``), the servlet filter
    integration (``WorkflowFilter``/``WorkflowServlet``) and the
    workflow data model.

``repro.workloads``
    Workload generators and the calibrated latency cost model used by
    the benchmark harness to regenerate the paper's evaluation.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
