"""JMS-style client objects: connections, producers, consumers.

An agent holds a :class:`Connection` to the broker; through it, it creates
a :class:`Producer` for the queues it writes (e.g. the workflow manager's
inbound queue) and a :class:`Consumer` for its own queue.  Closing a
consumer returns its unacknowledged messages to the queue, which is how
the "partners are not connected all the time" guarantee is exercised.
"""

from __future__ import annotations

from repro.errors import AcknowledgeError, ConnectionClosedError
from repro.messaging.broker import MessageBroker
from repro.messaging.message import Message


class Connection:
    """A client's handle on the broker; factory for producers/consumers."""

    def __init__(self, broker: MessageBroker) -> None:
        self._broker = broker
        self._consumers: list[Consumer] = []
        self._closed = False

    def create_producer(self, queue: str) -> "Producer":
        """A producer bound to ``queue`` (declares it if necessary)."""
        self._ensure_open()
        self._broker.declare_queue(queue)
        return Producer(self, self._broker, queue)

    def create_consumer(self, queue: str) -> "Consumer":
        """A consumer bound to ``queue`` (declares it if necessary)."""
        self._ensure_open()
        self._broker.declare_queue(queue)
        consumer = Consumer(self, self._broker, queue)
        self._consumers.append(consumer)
        return consumer

    def close(self) -> None:
        """Close the connection and all of its consumers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for consumer in list(self._consumers):
            consumer.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")


class Producer:
    """Sends messages to one queue."""

    def __init__(
        self, connection: Connection, broker: MessageBroker, queue: str
    ) -> None:
        self._connection = connection
        self._broker = broker
        self.queue = queue

    def send(self, body: str, headers: dict | None = None) -> Message:
        """Send one message; durable before return on a persistent broker."""
        self._connection._ensure_open()
        return self._broker.send(self.queue, body, headers)


class Consumer:
    """Receives (and must acknowledge) messages from one queue."""

    def __init__(
        self, connection: Connection, broker: MessageBroker, queue: str
    ) -> None:
        self._connection = connection
        self._broker = broker
        self.queue = queue
        self._unacked: dict[int, Message] = {}
        self._closed = False

    def receive(self, timeout: float | None = 0.0) -> Message | None:
        """Next message, or ``None`` on timeout.  See broker.receive."""
        if self._closed:
            raise ConnectionClosedError("consumer is closed")
        message = self._broker.receive(self.queue, timeout)
        if message is not None:
            self._unacked[message.message_id] = message
        return message

    def ack(self, message: Message) -> None:
        """Acknowledge a message this consumer received."""
        if message.message_id not in self._unacked:
            raise AcknowledgeError(
                f"message {message.message_id} was not received by this consumer"
            )
        self._broker.ack(message)
        del self._unacked[message.message_id]

    def reject(self, message: Message, reason: str = "") -> bool:
        """Negative-acknowledge a message this consumer received.

        The broker requeues it with backoff or dead-letters it at the
        delivery cap (see ``MessageBroker.reject``); returns ``True``
        when the message will be redelivered, ``False`` when it was
        quarantined.
        """
        if message.message_id not in self._unacked:
            raise AcknowledgeError(
                f"message {message.message_id} was not received by this consumer"
            )
        will_retry = self._broker.reject(message, reason)
        del self._unacked[message.message_id]
        return will_retry

    def drain(self) -> list[Message]:
        """Receive-and-ack everything currently queued (convenience)."""
        messages = []
        while True:
            message = self.receive(timeout=0.0)
            if message is None:
                return messages
            self.ack(message)
            messages.append(message)

    @property
    def unacked_count(self) -> int:
        """Messages received but not yet acknowledged."""
        return len(self._unacked)

    def close(self) -> None:
        """Close the consumer, requeueing unacked messages (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for message in sorted(
            self._unacked.values(), key=lambda m: m.message_id, reverse=True
        ):
            self._broker.requeue(message)
        self._unacked.clear()
