"""The message broker: queues, delivery, acknowledgement, redelivery.

The broker is the process-wide hub; producers and consumers talk to it
through :mod:`repro.messaging.client`.  Shared *registry* state — the
queue directory, the in-flight set, the dead-letter quarantine, id
allocation, stats, and journal appends — lives under one registry lock.
Each queue then owns its own message deque and condition variable, so a
blocked consumer only ever waits (and is only ever woken) on its own
queue: send on queue B never wakes a consumer parked on queue A, and a
single ``notify`` hands one message to one waiter instead of stampeding
every consumer in the process.  The two levels are never held together —
an operation settles registry bookkeeping first, releases the lock, and
only then touches a queue.

Delivery contract (matching what the paper relies on from OpenJMS):

* ``send`` journals the message before returning — a crash after ``send``
  never loses it; under ``sync_policy="group"`` the fsync barrier is
  shared with other in-flight operations, but the message still becomes
  *visible* to consumers only after it is durable;
* a message handed to a consumer stays *in flight* until acked; closing
  the consumer (or replaying the journal after a crash) returns in-flight
  messages to the front of their queue for redelivery;
* acknowledging journals the ack, after which the message is gone for
  good;
* *rejecting* (``Consumer.reject``) consults the queue's
  :class:`~repro.resilience.retry.RetryPolicy`: the message is requeued
  with an exponential-backoff ``not_before`` schedule until its delivery
  count hits the cap, after which it is dead-lettered — quarantined in
  the broker's DLQ, inspectable and requeueable, never silently dropped.

Fault points (see :mod:`repro.resilience.faults`): ``broker.publish``,
``broker.deliver``, ``broker.ack`` — each with ``queue`` (and ``kind``
header, when present) as match context.
"""

# conlint: never-nested
# (The registry lock and the per-queue conditions declared in this
# module must never be held together — the invariant described above,
# now machine-checked: any interprocedural path nesting them is a CC002
# error, and the runtime LockOrderWitness cross-checks it under chaos.)

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import AcknowledgeError, DeadLetterError, UnknownQueueError
from repro.messaging.journal import DEFAULT_COMPACT_EVERY as _DEFAULT_COMPACT
from repro.messaging.journal import BrokerJournal
from repro.messaging.message import Message
from repro.resilience.clock import Clock, SystemClock
from repro.resilience.faults import FaultPlan, fire, mangle
from repro.resilience.retry import RetryPolicy

#: How long a blocking receive waits per wakeup when the only queued
#: messages are backoff-scheduled: short enough that an injected clock
#: advanced by another thread is noticed promptly, long enough not to
#: busy-spin on a real clock.
_SCHEDULE_POLL_S = 0.05


@dataclass
class BrokerStats:
    """Operation counters used by the benchmark cost model."""

    sends: int = 0
    persistent_sends: int = 0
    deliveries: int = 0
    redeliveries: int = 0
    acks: int = 0
    rejections: int = 0
    dead_lettered: int = 0
    dlq_requeued: int = 0
    per_queue_sends: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.sends = 0
        self.persistent_sends = 0
        self.deliveries = 0
        self.redeliveries = 0
        self.acks = 0
        self.rejections = 0
        self.dead_lettered = 0
        self.dlq_requeued = 0
        self.per_queue_sends.clear()


class _QueueState:
    """One queue's private world: messages, condition, wakeup count."""

    __slots__ = ("name", "messages", "cond", "wakeups")

    def __init__(self, name: str) -> None:
        self.name = name
        self.messages: deque[Message] = deque()
        self.cond = threading.Condition()
        #: Times a blocked receive on this queue was *notified* awake
        #: (schedule-poll timeouts do not count).  The no-thundering-herd
        #: regression test pins this to zero for idle queues.
        self.wakeups = 0


class MessageBroker:
    """A point-to-point message broker with optional durability."""

    def __init__(
        self,
        journal_path: str | os.PathLike[str] | None = None,
        clock: Clock | None = None,
        default_retry_policy: RetryPolicy | None = None,
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        journal_segment_bytes: int | None = None,
        journal_compact_every: int | None = _DEFAULT_COMPACT,
        journal_salvage: bool = False,
    ) -> None:
        self._lock = threading.Lock()
        self._queues: dict[str, _QueueState] = {}
        self._in_flight: dict[int, Message] = {}
        #: Quarantined poison messages: id → (message, reason).
        self._dead: dict[int, tuple[Message, str]] = {}
        self._retry_policies: dict[str, RetryPolicy] = {}
        self._next_id = 1
        self.clock: Clock = clock or SystemClock()
        self.default_retry_policy = default_retry_policy or RetryPolicy()
        #: Jitter RNG — fixed seed so a broker's redelivery schedule is
        #: reproducible run to run (chaos tests rely on this).
        self._rng = random.Random(17)
        self.stats = BrokerStats()
        #: Optional observability hook with ``on_send(message,
        #: persistent)`` / ``on_deliver(message)`` (and optionally
        #: ``on_receive_wait(queue, waited_ms)``) — called under the
        #: broker registry lock, so observers must never call back into
        #: the broker (see ``repro.obs``).
        self.observer = None
        #: Optional factory ``f(queue_name) -> threading.Condition``
        #: used for new queues' condition variables — installed by
        #: :meth:`install_lock_profiler` so per-queue lock contention is
        #: measurable; ``None`` keeps plain conditions.
        self.condition_factory = None
        #: Optional fault-injection plan shared with the journal.
        self.faults: FaultPlan | None = None
        self._journal: BrokerJournal | None = None
        if journal_path is not None:
            journal_kwargs: dict = {}
            if journal_segment_bytes is not None:
                journal_kwargs["segment_max_bytes"] = journal_segment_bytes
            self._journal = BrokerJournal(
                journal_path,
                sync_policy=sync_policy,
                group_window_s=group_window_s,
                clock=self.clock,
                compact_every=journal_compact_every,
                salvage=journal_salvage,
                **journal_kwargs,
            )
            self._recover()

    @property
    def persistent(self) -> bool:
        """Whether sends are journalled to disk."""
        return self._journal is not None

    def attach_faults(self, plan: FaultPlan | None) -> None:
        """Install (or clear) a fault plan on the broker and its journal."""
        with self._lock:
            self.faults = plan
            if self._journal is not None:
                self._journal.faults = plan

    def _new_state(self, name: str) -> _QueueState:
        """Build one queue's state, honouring the condition factory."""
        state = _QueueState(name)
        if self.condition_factory is not None:
            state.cond = self.condition_factory(name)
        return state

    def install_lock_profiler(self, wrap, condition_factory=None) -> None:
        """Swap broker locks for profiled drop-ins (``repro.obs.prof``).

        ``wrap(name, lock)`` must return an object with the plain-Lock
        ``acquire``/``release``/context-manager contract; it replaces
        the registry lock.  ``condition_factory(queue_name)`` builds the
        condition variable (over a profiled lock) for new *and* existing
        queues.  Install at wiring time, before consumers start blocking
        — a consumer parked on an old condition would never see a notify
        on its replacement.
        """
        with self._lock:
            self.condition_factory = condition_factory
            if condition_factory is not None:
                for state in self._queues.values():
                    state.cond = condition_factory(state.name)
        self._lock = wrap("broker.registry", self._lock)

    def _recover(self) -> None:
        assert self._journal is not None
        snapshot = self._journal.replay()
        for name in snapshot.queues:
            if name not in self._queues:
                self._queues[name] = self._new_state(name)
        for message in snapshot.outstanding:
            state = self._queues.get(message.queue)
            if state is None:
                state = self._queues[message.queue] = self._new_state(
                    message.queue
                )
            state.messages.append(message)
        for message, reason in snapshot.dead:
            self._dead[message.message_id] = (message, reason)
        self._next_id = snapshot.next_id

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------

    def declare_queue(self, name: str) -> None:
        """Create a queue if it does not already exist (idempotent)."""
        seq = None
        with self._lock:
            if name in self._queues:
                return
            self._queues[name] = self._new_state(name)
            if self._journal is not None:
                seq = self._journal.append({"type": "declare", "queue": name})
        self._journal_sync(seq)

    def set_retry_policy(self, queue: str, policy: RetryPolicy) -> None:
        """Override the redelivery policy for one queue."""
        with self._lock:
            self._retry_policies[queue] = policy

    def retry_policy(self, queue: str) -> RetryPolicy:
        """The policy :meth:`reject` applies for ``queue``."""
        with self._lock:
            return self._retry_policies.get(queue, self.default_retry_policy)

    def queue_names(self) -> list[str]:
        """All declared queues."""
        with self._lock:
            return list(self._queues)

    def queue_depth(self, name: str) -> int:
        """Messages waiting (not in flight) on ``name``."""
        return len(self._state(name).messages)

    def queue_wakeups(self, name: str) -> int:
        """Times a blocked receive on ``name`` was notified awake.

        With per-queue conditions this only moves when *this* queue has
        traffic — an idle consumer never pays for a busy neighbour.
        """
        return self._state(name).wakeups

    def in_flight_count(self) -> int:
        """Messages delivered but not yet acknowledged, broker-wide."""
        with self._lock:
            return len(self._in_flight)

    def journal_info(self) -> dict[str, object]:
        """Durability status of the broker's journal.

        ``backlog`` is the number of unacknowledged messages a replay of
        the journal would restore — queued plus in-flight — i.e. the
        work a restarted broker would hand back out.
        """
        with self._lock:
            if self._journal is None:
                return {"enabled": False, "backlog": 0}
            backlog = sum(
                len(state.messages) for state in self._queues.values()
            ) + len(self._in_flight)
            info: dict[str, object] = {
                "enabled": True,
                "path": str(self._journal.path),
                "appended_records": self._journal.appended_records,
                "size_bytes": self._journal.size_bytes(),
                "backlog": backlog,
                "sync_policy": self._journal.sync_policy,
                "fsyncs": self._journal.fsyncs,
                "group_syncs": self._journal.group.syncs,
                "group_writes_covered": self._journal.group.writes_covered,
            }
            info.update(self._journal.info())
            return info

    def compact_journal(self) -> bool:
        """Force a journal compaction now (operator/tooling entry).

        The automatic trigger (:meth:`BrokerJournal.maybe_compact`)
        fires on the record threshold; this forces the same rotation +
        snapshot + GC immediately.  Returns ``False`` on a
        non-persistent broker, ``True`` after a completed compaction.
        Runs outside the registry lock, like the automatic trigger.
        """
        if self._journal is None:
            return False
        self._journal.compact()
        return True

    def _state(self, name: str) -> _QueueState:
        with self._lock:
            return self._state_locked(name)

    def _state_locked(self, name: str) -> _QueueState:
        try:
            return self._queues[name]
        except KeyError:
            raise UnknownQueueError(name) from None

    def _journal_sync(self, seq: int | None) -> None:
        """Wait out the group-commit barrier for one journal append.

        Also the compaction trigger: we are past the durability barrier
        and outside the registry lock, so a due compaction (rotation +
        mirror snapshot + segment GC) delays no broker operation.
        """
        if self._journal is not None:
            self._journal.sync(seq)
            self._journal.maybe_compact()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def send(self, queue: str, body: str, headers: dict | None = None) -> Message:
        """Enqueue a message; durable before return when persistent.

        The message is journalled (and, in group mode, fsync'd) *before*
        it is appended to the queue — a consumer can never observe a
        message that a crash could still lose.

        Fault point ``broker.publish``: ``crash`` dies before anything
        is journalled or enqueued, ``drop`` silently loses the message
        (the producer still believes it sent), ``duplicate`` enqueues a
        second copy under its own id, ``corrupt`` mangles the body.
        """
        seq = None
        with self._lock:
            state = self._state_locked(queue)
            header_map = dict(headers or {})
            action = fire(
                self.faults,
                "broker.publish",
                queue=queue,
                kind=header_map.get("kind"),
            )
            body_to_send = mangle(body) if action == "corrupt" else body
            copies = 2 if action == "duplicate" else 1
            message = Message(
                queue=queue,
                body=body_to_send,
                headers=header_map,
                message_id=self._next_id,
            )
            self._next_id += 1
            if action == "drop":
                return message
            enqueued_messages = [message]
            for __ in range(1, copies):
                enqueued_messages.append(
                    Message(
                        queue=queue,
                        body=body_to_send,
                        headers=dict(header_map),
                        message_id=self._next_id,
                    )
                )
                self._next_id += 1
            for enqueued in enqueued_messages:
                if self._journal is not None:
                    seq = self._journal.append(
                        {"type": "send", "message": enqueued.to_wire()}
                    )
                    self.stats.persistent_sends += 1
                self.stats.sends += 1
                self.stats.per_queue_sends[queue] = (
                    self.stats.per_queue_sends.get(queue, 0) + 1
                )
                if self.observer is not None:
                    self.observer.on_send(enqueued, self._journal is not None)
        # Durability first (one barrier covers every copy), visibility
        # second — and only this queue's waiters are woken.
        self._journal_sync(seq)
        with state.cond:
            for enqueued in enqueued_messages:
                state.messages.append(enqueued)
                state.cond.notify()
        return message

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    @staticmethod
    def _pop_ready(target: deque[Message], now: float) -> Message | None:
        """Remove and return the first message whose backoff has elapsed."""
        for index, message in enumerate(target):
            if message.not_before <= now:
                del target[index]
                return message
        return None

    @staticmethod
    def _next_ready_delay(
        target: deque[Message], now: float
    ) -> float | None:
        """Seconds until the earliest scheduled message becomes visible."""
        if not target:
            return None
        return max(0.0, min(m.not_before for m in target) - now)

    def receive(self, queue: str, timeout: float | None = 0.0) -> Message | None:
        """Take the next deliverable message off ``queue``.

        ``timeout=0`` polls without blocking; ``timeout=None`` blocks until
        a message arrives; a positive timeout blocks up to that many
        seconds *total* — the deadline is computed once, so spurious
        condition wakeups no longer restart the full wait.  Returns
        ``None`` when nothing became deliverable in time.  Messages whose
        ``not_before`` schedule has not elapsed are invisible.  The
        returned message stays in flight until :meth:`ack`,
        :meth:`requeue`, or :meth:`reject`.

        The wait happens entirely on the queue's own condition variable:
        traffic on other queues neither wakes nor delays this consumer.

        Fault point ``broker.deliver``: ``crash`` dies with the message
        still safely queued, ``drop`` discards the would-be delivery
        (lost datagram), ``corrupt`` mangles the body on the way out.
        """
        poll = timeout is not None and timeout <= 0
        deadline: float | None = None
        if timeout is not None and timeout > 0:
            deadline = self.clock.monotonic() + timeout
        state = self._state(queue)
        wait_t0 = time.perf_counter()
        with state.cond:
            while True:
                now = self.clock.monotonic()
                message = self._pop_ready(state.messages, now)
                if message is not None:
                    action = fire(
                        self.faults,
                        "broker.deliver",
                        queue=queue,
                        kind=message.headers.get("kind"),
                    )
                    if action == "drop":
                        if not poll:
                            continue
                        return None
                    if action == "corrupt":
                        message.body = mangle(message.body)
                    break
                if poll:
                    return None
                wait_s: float | None = None
                if deadline is not None:
                    wait_s = deadline - now
                    if wait_s <= 0:
                        return None
                hold = self._next_ready_delay(state.messages, now)
                if hold is not None:
                    # Everything queued is backoff-scheduled: wake early
                    # enough to notice the schedule (or an injected
                    # clock) moving.
                    cap = min(hold, _SCHEDULE_POLL_S)
                    wait_s = cap if wait_s is None else min(wait_s, cap)
                if state.cond.wait(timeout=wait_s):
                    state.wakeups += 1
        waited_ms = (time.perf_counter() - wait_t0) * 1000.0
        seq = None
        with self._lock:
            message.delivery_count += 1
            if self._journal is not None:
                seq = self._journal.append(
                    {"type": "deliver", "message_id": message.message_id}
                )
            self._in_flight[message.message_id] = message
            self.stats.deliveries += 1
            if message.redelivered:
                self.stats.redeliveries += 1
            observer = self.observer
            if observer is not None:
                observer.on_deliver(message)
                on_wait = getattr(observer, "on_receive_wait", None)
                if on_wait is not None:
                    on_wait(queue, waited_ms)
        self._journal_sync(seq)
        return message

    def ack(self, message: Message) -> None:
        """Acknowledge a delivered message, removing it permanently.

        Fault point ``broker.ack``: ``crash`` dies *before* the ack is
        recorded, so the message is still in flight and a journal replay
        (or consumer close) redelivers it — at-least-once semantics.
        """
        seq = None
        with self._lock:
            if message.message_id not in self._in_flight:
                raise AcknowledgeError(
                    f"message {message.message_id} is not in flight"
                )
            fire(
                self.faults,
                "broker.ack",
                queue=message.queue,
                kind=message.headers.get("kind"),
            )
            del self._in_flight[message.message_id]
            if self._journal is not None:
                seq = self._journal.append(
                    {
                        "type": "ack",
                        "queue": message.queue,
                        "message_id": message.message_id,
                    }
                )
            self.stats.acks += 1
        self._journal_sync(seq)

    def reject(self, message: Message, reason: str = "") -> bool:
        """Negative-acknowledge a delivered message.

        Applies the queue's :class:`RetryPolicy`: under the delivery cap
        the message is requeued with a backoff ``not_before`` schedule
        and ``True`` is returned (it will come back); at the cap it is
        dead-lettered and ``False`` is returned.  Either way it leaves
        the in-flight set — a rejected message is never lost.
        """
        seq = None
        state: _QueueState | None = None
        with self._lock:
            if message.message_id not in self._in_flight:
                raise AcknowledgeError(
                    f"message {message.message_id} is not in flight"
                )
            del self._in_flight[message.message_id]
            self.stats.rejections += 1
            policy = self._retry_policies.get(
                message.queue, self.default_retry_policy
            )
            if policy.exhausted(message.delivery_count):
                self._dead[message.message_id] = (message, reason)
                self.stats.dead_lettered += 1
                if self._journal is not None:
                    seq = self._journal.append(
                        {
                            "type": "dead_letter",
                            "message_id": message.message_id,
                            "reason": reason,
                        }
                    )
            else:
                delay = policy.backoff(message.delivery_count, self._rng)
                message.not_before = self.clock.monotonic() + delay
                state = self._state_locked(message.queue)
        self._journal_sync(seq)
        if state is None:
            return False
        with state.cond:
            state.messages.append(message)
            state.cond.notify()
        return True

    # ------------------------------------------------------------------
    # Dead-letter queue
    # ------------------------------------------------------------------

    def dlq_depth(self) -> int:
        """Messages currently quarantined."""
        with self._lock:
            return len(self._dead)

    def dead_letters(self) -> list[dict[str, object]]:
        """Inspectable snapshot of the quarantine, oldest first."""
        with self._lock:
            entries = [self._dead[mid] for mid in sorted(self._dead)]
        return [
            {
                "message_id": message.message_id,
                "queue": message.queue,
                "reason": reason,
                "delivery_count": message.delivery_count,
                "headers": dict(message.headers),
                "body_bytes": len(message.body),
            }
            for message, reason in entries
        ]

    def requeue_dead(self, message_id: int) -> Message:
        """Return a quarantined message to its queue for a fresh attempt.

        Resets the delivery count (the operator presumably fixed the
        underlying problem) and makes it immediately deliverable.
        """
        seq = None
        with self._lock:
            entry = self._dead.pop(message_id, None)
            if entry is None:
                raise DeadLetterError(message_id)
            message = entry[0]
            message.delivery_count = 0
            message.not_before = 0.0
            self.stats.dlq_requeued += 1
            if self._journal is not None:
                seq = self._journal.append(
                    {"type": "dlq_requeue", "message_id": message_id}
                )
            state = self._state_locked(message.queue)
        self._journal_sync(seq)
        with state.cond:
            state.messages.append(message)
            state.cond.notify()
        return message

    # ------------------------------------------------------------------

    def requeue(self, message: Message) -> None:
        """Return an in-flight message to the front of its queue."""
        with self._lock:
            if message.message_id not in self._in_flight:
                raise AcknowledgeError(
                    f"message {message.message_id} is not in flight"
                )
            del self._in_flight[message.message_id]
            state = self._state_locked(message.queue)
        with state.cond:
            state.messages.appendleft(message)
            state.cond.notify()

    def requeue_all_in_flight(self) -> int:
        """Return every in-flight message to its queue (consumer crash)."""
        with self._lock:
            messages = sorted(
                self._in_flight.values(), key=lambda m: m.message_id
            )
            self._in_flight.clear()
            states = {
                message.queue: self._state_locked(message.queue)
                for message in messages
            }
        by_queue: dict[str, list[Message]] = {}
        for message in messages:
            by_queue.setdefault(message.queue, []).append(message)
        for name, queue_messages in by_queue.items():
            state = states[name]
            with state.cond:
                for message in reversed(queue_messages):
                    state.messages.appendleft(message)
                state.cond.notify_all()
        return len(messages)

    def close(self) -> None:
        """Flush pending journal appends and release the handle."""
        if self._journal is not None:
            self._journal.close()
