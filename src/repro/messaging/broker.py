"""The message broker: queues, delivery, acknowledgement, redelivery.

The broker is the process-wide hub; producers and consumers talk to it
through :mod:`repro.messaging.client`.  All state transitions happen under
one lock, with a condition variable to support blocking receives from
agent threads.

Delivery contract (matching what the paper relies on from OpenJMS):

* ``send`` journals the message before returning — a crash after ``send``
  never loses it;
* a message handed to a consumer stays *in flight* until acked; closing
  the consumer (or replaying the journal after a crash) returns in-flight
  messages to the front of their queue for redelivery;
* acknowledging journals the ack, after which the message is gone for
  good.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import AcknowledgeError, UnknownQueueError
from repro.messaging.journal import BrokerJournal
from repro.messaging.message import Message


@dataclass
class BrokerStats:
    """Operation counters used by the benchmark cost model."""

    sends: int = 0
    persistent_sends: int = 0
    deliveries: int = 0
    redeliveries: int = 0
    acks: int = 0
    per_queue_sends: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.sends = 0
        self.persistent_sends = 0
        self.deliveries = 0
        self.redeliveries = 0
        self.acks = 0
        self.per_queue_sends.clear()


class MessageBroker:
    """A point-to-point message broker with optional durability."""

    def __init__(self, journal_path: str | os.PathLike[str] | None = None) -> None:
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._queues: dict[str, deque[Message]] = {}
        self._in_flight: dict[int, Message] = {}
        self._next_id = 1
        self.stats = BrokerStats()
        #: Optional observability hook with ``on_send(message,
        #: persistent)`` / ``on_deliver(message)`` — called under the
        #: broker lock, so observers must never call back into the
        #: broker (see ``repro.obs``).
        self.observer = None
        self._journal: BrokerJournal | None = None
        if journal_path is not None:
            self._journal = BrokerJournal(journal_path)
            self._recover()

    @property
    def persistent(self) -> bool:
        """Whether sends are journalled to disk."""
        return self._journal is not None

    def _recover(self) -> None:
        assert self._journal is not None
        queues, outstanding, next_id = self._journal.replay()
        for name in queues:
            self._queues.setdefault(name, deque())
        for message in outstanding:
            self._queues.setdefault(message.queue, deque()).append(message)
        self._next_id = next_id

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------

    def declare_queue(self, name: str) -> None:
        """Create a queue if it does not already exist (idempotent)."""
        with self._lock:
            if name in self._queues:
                return
            self._queues[name] = deque()
            if self._journal is not None:
                self._journal.append({"type": "declare", "queue": name})

    def queue_names(self) -> list[str]:
        """All declared queues."""
        with self._lock:
            return list(self._queues)

    def queue_depth(self, name: str) -> int:
        """Messages waiting (not in flight) on ``name``."""
        with self._lock:
            return len(self._queue(name))

    def in_flight_count(self) -> int:
        """Messages delivered but not yet acknowledged, broker-wide."""
        with self._lock:
            return len(self._in_flight)

    def journal_info(self) -> dict[str, object]:
        """Durability status of the broker's journal.

        ``backlog`` is the number of unacknowledged messages a replay of
        the journal would restore — queued plus in-flight — i.e. the
        work a restarted broker would hand back out.
        """
        with self._lock:
            if self._journal is None:
                return {"enabled": False, "backlog": 0}
            backlog = sum(len(q) for q in self._queues.values()) + len(
                self._in_flight
            )
            return {
                "enabled": True,
                "path": str(self._journal.path),
                "appended_records": self._journal.appended_records,
                "size_bytes": self._journal.size_bytes(),
                "backlog": backlog,
            }

    def _queue(self, name: str) -> deque[Message]:
        try:
            return self._queues[name]
        except KeyError:
            raise UnknownQueueError(name) from None

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def send(self, queue: str, body: str, headers: dict | None = None) -> Message:
        """Enqueue a message; durable before return when persistent."""
        with self._available:
            target = self._queue(queue)
            message = Message(
                queue=queue,
                body=body,
                headers=dict(headers or {}),
                message_id=self._next_id,
            )
            self._next_id += 1
            if self._journal is not None:
                self._journal.append({"type": "send", "message": message.to_wire()})
                self.stats.persistent_sends += 1
            target.append(message)
            self.stats.sends += 1
            self.stats.per_queue_sends[queue] = (
                self.stats.per_queue_sends.get(queue, 0) + 1
            )
            if self.observer is not None:
                self.observer.on_send(message, self._journal is not None)
            self._available.notify_all()
            return message

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def receive(self, queue: str, timeout: float | None = 0.0) -> Message | None:
        """Take the next message off ``queue``.

        ``timeout=0`` polls without blocking; ``timeout=None`` blocks until
        a message arrives; a positive timeout blocks up to that many
        seconds.  Returns ``None`` when nothing arrived in time.  The
        message stays in flight until :meth:`ack` or :meth:`requeue`.
        """
        deadline: float | None
        if timeout in (None, 0.0) or timeout == 0:
            deadline = None
        else:
            deadline = timeout
        with self._available:
            target = self._queue(queue)
            if not target and timeout == 0.0:
                return None
            while not target:
                if timeout == 0.0:
                    return None
                if not self._available.wait(timeout=deadline):
                    return None
                target = self._queue(queue)
            message = target.popleft()
            message.delivery_count += 1
            self._in_flight[message.message_id] = message
            self.stats.deliveries += 1
            if message.redelivered:
                self.stats.redeliveries += 1
            if self.observer is not None:
                self.observer.on_deliver(message)
            return message

    def ack(self, message: Message) -> None:
        """Acknowledge a delivered message, removing it permanently."""
        with self._lock:
            if message.message_id not in self._in_flight:
                raise AcknowledgeError(
                    f"message {message.message_id} is not in flight"
                )
            del self._in_flight[message.message_id]
            if self._journal is not None:
                self._journal.append(
                    {
                        "type": "ack",
                        "queue": message.queue,
                        "message_id": message.message_id,
                    }
                )
            self.stats.acks += 1

    def requeue(self, message: Message) -> None:
        """Return an in-flight message to the front of its queue."""
        with self._available:
            if message.message_id not in self._in_flight:
                raise AcknowledgeError(
                    f"message {message.message_id} is not in flight"
                )
            del self._in_flight[message.message_id]
            self._queue(message.queue).appendleft(message)
            self._available.notify_all()

    def requeue_all_in_flight(self) -> int:
        """Return every in-flight message to its queue (consumer crash)."""
        with self._available:
            messages = sorted(self._in_flight.values(), key=lambda m: m.message_id)
            self._in_flight.clear()
            for message in reversed(messages):
                self._queue(message.queue).appendleft(message)
            if messages:
                self._available.notify_all()
            return len(messages)

    def close(self) -> None:
        """Release the journal handle."""
        if self._journal is not None:
            self._journal.close()
