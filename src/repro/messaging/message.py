"""The message object exchanged between the workflow manager and agents.

Bodies are text (in practice: the XML documents produced by
``repro.xmlbridge``); headers are a flat string→scalar dict used for
routing metadata (message type, task id, agent name, ...), mirroring JMS
message properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Message:
    """One queued message.

    ``message_id`` is assigned by the broker (monotonic per broker, stable
    across journal replay).  ``delivery_count`` counts how many times the
    message has been handed to a consumer; ``redelivered`` is true from
    the second delivery on, as in JMS.
    """

    queue: str
    body: str
    headers: dict[str, Any] = field(default_factory=dict)
    message_id: int = 0
    delivery_count: int = 0
    #: Monotonic instant before which the broker must not redeliver the
    #: message (retry backoff schedule); 0 = immediately deliverable.
    #: Runtime-only: replay recomputes it as "now" — after a crash the
    #: backoff clock restarts rather than carrying a stale deadline.
    not_before: float = 0.0

    @property
    def redelivered(self) -> bool:
        """Whether this delivery is a retry of an earlier, unacked one."""
        return self.delivery_count > 1

    def to_wire(self) -> dict[str, Any]:
        """JSON-friendly representation for the journal."""
        return {
            "queue": self.queue,
            "body": self.body,
            "headers": self.headers,
            "message_id": self.message_id,
        }

    @staticmethod
    def from_wire(record: dict[str, Any]) -> "Message":
        """Rebuild a message from :meth:`to_wire` output.

        ``delivery_count`` is not part of a live send's wire dict — the
        journal tracks deliveries as separate records so a replayed
        message reflects every delivery that actually happened — but a
        compaction snapshot embeds the accumulated count so it survives
        the acked history being garbage-collected.
        """
        return Message(
            queue=record["queue"],
            body=record["body"],
            headers=dict(record["headers"]),
            message_id=record["message_id"],
            delivery_count=int(record.get("delivery_count", 0)),
        )
