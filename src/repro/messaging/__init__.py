"""messaging — the persistent, asynchronous message broker (OpenJMS analog).

The paper's agent framework "uses persistent messages for agent
communication ... message delivery is guaranteed even if communication
partners are not connected all the time".  This package provides exactly
that contract, from scratch:

* named point-to-point **queues** (the JMS queue model the paper uses),
* **persistent delivery**: every send is journalled to disk before the
  producer returns; a broker restarted over the same journal re-offers
  every unacknowledged message,
* **at-least-once** consumption with explicit acknowledgements; messages
  abandoned by a crashed/closed consumer are redelivered with the
  ``redelivered`` flag set,
* blocking and non-blocking receives, safe across threads.

Entry points: :class:`~repro.messaging.broker.MessageBroker` and
:class:`~repro.messaging.client.Connection`.
"""

from repro.messaging.broker import BrokerStats, MessageBroker
from repro.messaging.client import Connection, Consumer, Producer
from repro.messaging.message import Message

__all__ = [
    "MessageBroker",
    "BrokerStats",
    "Connection",
    "Producer",
    "Consumer",
    "Message",
]
