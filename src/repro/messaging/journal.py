"""Durable journal for the message broker (segmented — durability v2).

Same checksummed segment/manifest discipline as the minidb WAL — both
compose :class:`repro.seglog.SegmentedLog` — including the sync-policy
knob: under ``always`` every record is flushed and fsync'd before the
operation that produced it returns; under ``group`` appends only buffer
and concurrent operations share one fsync barrier through
:class:`repro.durable.GroupCommitter` (the broker syncs after releasing
its registry lock, so senders on different threads batch); ``off`` never
fsyncs.  Replay rebuilds the set of *outstanding* messages: everything
sent but not acknowledged — including messages that were in flight to a
consumer when the broker died — reappears in its queue in send order,
carrying the delivery count it had accumulated (so the redelivered flag
survives a broker crash), and the dead-letter quarantine is restored
alongside the live queues.

Compaction (the journal's checkpoint): the journal maintains an
in-memory *mirror* of what a replay of the on-disk records would
restore, updated on every append under the same write lock.  When the
tail since the last compaction exceeds ``compact_every`` records,
:meth:`maybe_compact` rotates to a fresh segment, snapshots the mirror
as of that cut, and installs it as a checkpoint — fully-acked messages
vanish from disk, so exactly-once-armed redelivery survives with
*bounded* storage however long the broker runs.  The broker triggers
this from ``_journal_sync``, outside its registry lock.

Record shapes::

    {"type": "declare", "queue": "agent.robot-1"}
    {"type": "send", "message": {...}}
    {"type": "deliver", "message_id": 17}
    {"type": "ack", "queue": "agent.robot-1", "message_id": 17}
    {"type": "dead_letter", "message_id": 17, "reason": "..."}
    {"type": "dlq_requeue", "message_id": 17}

A compaction snapshot re-expresses the mirror in the same vocabulary
(``declare`` + ``send`` per live message, with the accumulated
``delivery_count`` embedded in the wire dict, plus ``send`` +
``dead_letter`` per quarantined one), so replay needs no special cases.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.durable import GroupCommitter, validate_sync_policy
from repro.errors import JournalError
from repro.messaging.message import Message
from repro.resilience.faults import fire
from repro.seglog import DEFAULT_SEGMENT_BYTES, SegmentedLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.clock import Clock
    from repro.resilience.faults import FaultPlan

#: Sequence returned by ``always``-mode appends: the record is buffered
#: and its fsync is owed to :meth:`BrokerJournal.sync`.
_ALWAYS_SEQ = -1

#: Default compaction threshold: tail records since the last compaction.
DEFAULT_COMPACT_EVERY = 1024


@dataclass
class JournalSnapshot:
    """What a replay restores: queues, live messages, quarantine, ids."""

    queues: list[str] = field(default_factory=list)
    #: Unacknowledged, not dead-lettered messages in send order.
    outstanding: list[Message] = field(default_factory=list)
    #: ``(message, reason)`` pairs quarantined before the crash.
    dead: list[tuple[Message, str]] = field(default_factory=list)
    next_id: int = 1


class BrokerJournal:
    """Append-only segmented journal with crash-tolerant replay."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        clock: "Clock | None" = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_max_records: int | None = None,
        compact_every: int | None = DEFAULT_COMPACT_EVERY,
        salvage: bool = False,
    ) -> None:
        validate_sync_policy(sync_policy)
        self.path = Path(path)
        self.sync_policy = sync_policy
        #: Segment/manifest/checkpoint machinery shared with the WAL.
        self.seg = SegmentedLog(
            self.path,
            error_cls=JournalError,
            prefix="journal",
            segment_max_bytes=segment_max_bytes,
            segment_max_records=segment_max_records,
            salvage=salvage,
        )
        #: Serialises buffered writes *and* their mirror updates across
        #: broker threads — and lets compaction cut a consistent
        #: (rotation watermark, mirror state) pair.
        self._write_lock = threading.Lock()
        #: Shared fsync barrier for ``sync_policy="group"``.
        self.group = GroupCommitter(window_s=group_window_s, clock=clock)
        #: ``always``-mode appends buffered but not yet fsync'd (the
        #: fsync is deferred to :meth:`sync` so it never runs under the
        #: broker's registry lock; :meth:`close` drains it).
        self._always_pending = 0
        #: Records appended (buffered) through this handle's lifetime.
        self.appended_records = 0
        #: fsync barriers issued through this handle's lifetime.
        self.fsyncs = 0
        #: Compaction trigger (tail records); ``None`` disables.
        self.compact_every = compact_every
        #: Compactions completed through this journal's lifetime.
        self.compactions = 0
        #: Serialises compactions against each other.
        self._compact_lock = threading.Lock()
        # -- the replay mirror (see module docstring) -------------------
        self._mirror_queues: list[str] = []
        self._mirror_outstanding: dict[int, dict[str, Any]] = {}
        self._mirror_dead: dict[int, tuple[dict[str, Any], str]] = {}
        self._mirror_next_id = 1
        #: The mirror matches the on-disk history only once a full
        #: :meth:`replay` has run (or the journal started fresh);
        #: compaction is gated on this so it can never snapshot a
        #: partial view of a history it has not read.
        self._mirror_ready = not self.seg.segments and self.seg.checkpoint is None

    @property
    def faults(self) -> "FaultPlan | None":
        """Optional fault-injection plan (``repro.resilience.faults``)."""
        return self.seg.faults

    @faults.setter
    def faults(self, plan: "FaultPlan | None") -> None:
        self.seg.faults = plan

    def tail_path(self) -> Path | None:
        """The active segment file (tests poke torn/corrupt bytes here)."""
        return self.seg.tail_path()

    def append(self, record: dict[str, Any]) -> int | None:
        """Append one record; buffered now, durable per the sync policy.

        Under ``always`` and ``group`` the record is written and flushed
        here, and the returned sequence number must be handed to
        :meth:`sync`, which performs (``always``) or waits for
        (``group``) the fsync — the broker always syncs *after*
        releasing its registry lock, so no fsync ever runs under it.
        The operation that produced the record still does not return to
        its caller until the record is on disk.  Returns ``None`` under
        ``off``.

        Fault point ``journal.append`` (context: ``record_type``):
        ``crash`` dies before anything is written, ``corrupt`` leaves a
        torn half-frame and then dies (the classic mid-fsync power cut),
        ``drop`` silently skips the write (a lying disk — the mirror is
        *not* updated, it tracks what is actually on disk).
        """
        with self._write_lock:
            action = fire(
                self.faults, "journal.append", record_type=record.get("type")
            )
            if action == "drop":
                return None
            if action == "corrupt":
                self.seg.write_torn(record)
                raise JournalError(
                    f"injected torn write at {self.path} "
                    f"(record type {record.get('type')!r})"
                )
            self.seg.write_frame(record)
            self._mirror_apply(record)
            self.appended_records += 1
            if self.sync_policy == "group":
                return self.group.note_write()
            if self.sync_policy == "always":
                self._always_pending += 1
                return _ALWAYS_SEQ
        return None

    def sync(self, seq: int | None) -> None:
        """Make the append that returned ``seq`` durable.

        Under ``always`` this performs the record's own fsync (deferred
        out of :meth:`append` so the broker can release its registry
        lock first); under ``group`` it waits on — or leads — the
        shared barrier.  A no-op for ``off`` and for ``seq=None``.
        Many threads may call this concurrently; in group mode one of
        them fsyncs on behalf of all.
        """
        if seq is None:
            return
        if self.sync_policy == "always":
            self._always_fsync()
            return
        if self.sync_policy == "group":
            self.group.wait_durable(seq, self._sync_barrier)

    def _always_fsync(self) -> None:
        """One per-record fsync (``always`` policy), outside all locks."""
        self._always_pending = 0
        self.seg.fsync_active()
        self.fsyncs += 1

    def _sync_barrier(self) -> None:
        """One fsync covering every buffered append (leader only).

        Safe across a rotation: the retiring segment was fsync'd before
        the handle switched (see :mod:`repro.seglog`).
        """
        self.seg.fsync_active()
        self.fsyncs += 1

    def flush_pending(self) -> None:
        """Drain any un-synced appends (close)."""
        if self.sync_policy == "always":
            if self._always_pending:
                self._always_fsync()
            return
        if self.sync_policy != "group":
            return
        if self.group.pending() > 0:
            self.group.wait_durable(self.group.latest(), self._sync_barrier)

    def size_bytes(self) -> int:
        """Current on-disk size of the journal (0 when it does not exist)."""
        return self.seg.size_bytes()

    def info(self) -> dict[str, Any]:
        """Segment-level layout and counters, plus compaction state."""
        info = self.seg.info()
        info["compactions"] = self.compactions
        info["compact_every"] = self.compact_every
        return info

    # -- the replay mirror ---------------------------------------------------

    def _mirror_reset(self) -> None:
        self._mirror_queues = []
        self._mirror_outstanding = {}
        self._mirror_dead = {}
        self._mirror_next_id = 1

    def _mirror_apply(self, record: dict[str, Any]) -> None:
        """Fold one journal record into the replay mirror.

        Mirrors exactly the semantics of :meth:`replay`, operating on
        wire dicts (the accumulated ``delivery_count`` is stored *in*
        the wire dict so a compaction snapshot carries it for free).
        """
        kind = record.get("type")
        if kind == "declare":
            if record["queue"] not in self._mirror_queues:
                self._mirror_queues.append(record["queue"])
        elif kind == "send":
            wire = dict(record["message"])
            message_id = int(wire["message_id"])
            self._mirror_outstanding[message_id] = wire
            self._mirror_next_id = max(self._mirror_next_id, message_id + 1)
        elif kind == "deliver":
            wire = self._mirror_outstanding.get(record["message_id"])
            if wire is not None:
                wire["delivery_count"] = int(wire.get("delivery_count", 0)) + 1
        elif kind == "ack":
            self._mirror_outstanding.pop(record["message_id"], None)
        elif kind == "dead_letter":
            wire = self._mirror_outstanding.pop(record["message_id"], None)
            if wire is not None:
                self._mirror_dead[int(wire["message_id"])] = (
                    wire,
                    str(record.get("reason", "")),
                )
        elif kind == "dlq_requeue":
            entry = self._mirror_dead.pop(record["message_id"], None)
            if entry is not None:
                wire = entry[0]
                wire["delivery_count"] = 0
                self._mirror_outstanding[int(wire["message_id"])] = wire
        else:
            raise JournalError(f"unknown journal record type {kind!r}")

    def _mirror_records(self) -> list[dict[str, Any]]:
        """The mirror re-expressed as replayable journal records."""
        records: list[dict[str, Any]] = [
            {"type": "declare", "queue": name} for name in self._mirror_queues
        ]
        for message_id in sorted(self._mirror_outstanding):
            records.append(
                {
                    "type": "send",
                    "message": dict(self._mirror_outstanding[message_id]),
                }
            )
        for message_id in sorted(self._mirror_dead):
            wire, reason = self._mirror_dead[message_id]
            records.append({"type": "send", "message": dict(wire)})
            records.append(
                {
                    "type": "dead_letter",
                    "message_id": message_id,
                    "reason": reason,
                }
            )
        return records

    # -- compaction ----------------------------------------------------------

    def maybe_compact(self) -> bool:
        """Compact when the tail has outgrown ``compact_every`` records.

        Called by the broker after every durability barrier, outside its
        registry lock.  Skips silently when below threshold, when the
        mirror is not ready, or when another compaction is in flight.
        """
        if self.compact_every is None or not self._mirror_ready:
            return False
        if self.seg.records_since_checkpoint < self.compact_every:
            return False
        if not self._compact_lock.acquire(blocking=False):
            return False
        try:
            self.compact()
        finally:
            self._compact_lock.release()
        return True

    def compact(self) -> int:
        """Snapshot the mirror behind a rotation cut; GC acked history.

        Fault points ``journal.compact`` (before the snapshot file is
        written), ``journal.compact.swap`` (before the manifest
        publishes it) and ``journal.compact.gc`` (before pre-watermark
        segments are unlinked): a crash at any of them recovers to
        exactly the old or the new organisation of the same outstanding
        set — no acked message resurrects, no live message is lost.
        Returns the number of records in the snapshot.
        """
        if not self._mirror_ready:
            raise JournalError(
                "cannot compact before a full replay has built the mirror"
            )
        with self._write_lock:
            # The cut: everything at or below `watermark` is exactly
            # what the mirror describes, because appends (which update
            # both) are excluded while we hold the write lock.
            watermark = self.seg.rotate()
            records = self._mirror_records()
        count = self.seg.install_checkpoint(
            records,
            watermark,
            write_point="journal.compact",
            swap_point="journal.compact.swap",
            gc_point="journal.compact.gc",
        )
        self.compactions += 1
        return count

    # -- replay ---------------------------------------------------------------

    def replay(self) -> JournalSnapshot:
        """Rebuild broker state from checkpoint + tail.

        Streams record-by-record (O(1) memory in the history length
        beyond the live set).  A torn final frame is discarded (the
        operation never completed); any other corruption raises
        :class:`JournalError` with structured diagnostics — or, with
        ``salvage=True``, quarantines the corrupt suffix and restores
        the longest intact prefix.  Delivery records accumulate onto
        their message so a replayed message keeps its true
        ``delivery_count``; dead-letter records move the message into
        the quarantine (and ``dlq_requeue`` moves it back, with the
        count reset exactly as the live operation does).  Also (re)builds
        the compaction mirror.
        """
        fire(self.faults, "journal.replay")
        with self._write_lock:
            self._mirror_reset()
            for record in self.seg.replay():
                if not isinstance(record, dict) or "type" not in record:
                    raise JournalError(
                        f"malformed journal record in {self.path} "
                        "(not a typed dict)"
                    )
                self._mirror_apply(record)
            self._mirror_ready = True
            snapshot = JournalSnapshot()
            snapshot.queues = list(self._mirror_queues)
            snapshot.outstanding = [
                Message.from_wire(self._mirror_outstanding[message_id])
                for message_id in sorted(self._mirror_outstanding)
            ]
            snapshot.dead = [
                (Message.from_wire(wire), reason)
                for wire, reason in (
                    self._mirror_dead[message_id]
                    for message_id in sorted(self._mirror_dead)
                )
            ]
            snapshot.next_id = self._mirror_next_id
        return snapshot

    def close(self) -> None:
        """Release file handles (reopened lazily on next append).

        Any still-buffered appends (a group-mode batch, or an
        ``always``-mode record whose deferred fsync was never claimed)
        are fsync'd first — a clean close never loses acknowledged work.
        """
        try:
            if self.seg.handle is not None:
                self.flush_pending()
        finally:
            self.seg.close()
