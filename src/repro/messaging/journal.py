"""Durable journal for the message broker.

Same JSON-lines discipline as the minidb WAL, including the sync-policy
knob: under ``always`` every record is flushed and fsync'd before the
operation that produced it returns; under ``group`` appends only buffer
and concurrent operations share one fsync barrier through
:class:`repro.durable.GroupCommitter` (the broker syncs after releasing
its registry lock, so senders on different threads batch); ``off`` never
fsyncs.  Replay rebuilds
the set of *outstanding* messages: everything sent but not acknowledged —
including messages that were in flight to a consumer when the broker
died — reappears in its queue in send order, carrying the delivery count
it had accumulated (so the redelivered flag survives a broker crash), and
the dead-letter quarantine is restored alongside the live queues.

Record shapes::

    {"type": "declare", "queue": "agent.robot-1"}
    {"type": "send", "message": {...}}
    {"type": "deliver", "message_id": 17}
    {"type": "ack", "queue": "agent.robot-1", "message_id": 17}
    {"type": "dead_letter", "message_id": 17, "reason": "..."}
    {"type": "dlq_requeue", "message_id": 17}
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.durable import GroupCommitter, validate_sync_policy
from repro.errors import JournalError
from repro.messaging.message import Message
from repro.resilience.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.clock import Clock
    from repro.resilience.faults import FaultPlan

#: Sequence returned by ``always``-mode appends: the record is buffered
#: and its fsync is owed to :meth:`BrokerJournal.sync`.
_ALWAYS_SEQ = -1


@dataclass
class JournalSnapshot:
    """What a replay restores: queues, live messages, quarantine, ids."""

    queues: list[str] = field(default_factory=list)
    #: Unacknowledged, not dead-lettered messages in send order.
    outstanding: list[Message] = field(default_factory=list)
    #: ``(message, reason)`` pairs quarantined before the crash.
    dead: list[tuple[Message, str]] = field(default_factory=list)
    next_id: int = 1


class BrokerJournal:
    """Append-only journal with crash-tolerant replay."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        clock: "Clock | None" = None,
    ) -> None:
        validate_sync_policy(sync_policy)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync_policy = sync_policy
        self._handle = None
        #: Serialises buffered writes across broker threads.
        self._write_lock = threading.Lock()
        #: Shared fsync barrier for ``sync_policy="group"``.
        self.group = GroupCommitter(window_s=group_window_s, clock=clock)
        #: ``always``-mode appends buffered but not yet fsync'd (the
        #: fsync is deferred to :meth:`sync` so it never runs under the
        #: broker's registry lock; :meth:`close` drains it).
        self._always_pending = 0
        #: Records appended (buffered) through this handle's lifetime.
        self.appended_records = 0
        #: fsync barriers issued through this handle's lifetime.
        self.fsyncs = 0
        #: Optional fault-injection plan (``repro.resilience.faults``).
        self.faults: "FaultPlan | None" = None

    def append(self, record: dict[str, Any]) -> int | None:
        """Append one record; buffered now, durable per the sync policy.

        Under ``always`` and ``group`` the record is written and flushed
        here, and the returned sequence number must be handed to
        :meth:`sync`, which performs (``always``) or waits for
        (``group``) the fsync — the broker always syncs *after*
        releasing its registry lock, so no fsync ever runs under it.
        The operation that produced the record still does not return to
        its caller until the record is on disk.  Returns ``None`` under
        ``off``.

        Fault point ``journal.append`` (context: ``record_type``):
        ``crash`` dies before anything is written, ``corrupt`` leaves a
        torn half-line and then dies (the classic mid-fsync power cut),
        ``drop`` silently skips the write (a lying disk).
        """
        with self._write_lock:
            action = fire(
                self.faults, "journal.append", record_type=record.get("type")
            )
            if action == "drop":
                return None
            if self._handle is None:
                self._handle = self.path.open("a", encoding="utf-8")
            line = json.dumps(record, separators=(",", ":"))
            if action == "corrupt":
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                # conlint: allow=CC003 -- torn-write injection must hit
                # the disk before the simulated death, or replay would
                # never see the half-line this fault exists to produce.
                os.fsync(self._handle.fileno())
                raise JournalError(
                    f"injected torn write at {self.path} "
                    f"(record type {record.get('type')!r})"
                )
            self._handle.write(line + "\n")
            self._handle.flush()
            self.appended_records += 1
            if self.sync_policy == "group":
                return self.group.note_write()
            if self.sync_policy == "always":
                self._always_pending += 1
                return _ALWAYS_SEQ
        return None

    def sync(self, seq: int | None) -> None:
        """Make the append that returned ``seq`` durable.

        Under ``always`` this performs the record's own fsync (deferred
        out of :meth:`append` so the broker can release its registry
        lock first); under ``group`` it waits on — or leads — the
        shared barrier.  A no-op for ``off`` and for ``seq=None``.
        Many threads may call this concurrently; in group mode one of
        them fsyncs on behalf of all.
        """
        if seq is None:
            return
        if self.sync_policy == "always":
            self._always_fsync()
            return
        if self.sync_policy == "group":
            self.group.wait_durable(seq, self._sync_barrier)

    def _always_fsync(self) -> None:
        """One per-record fsync (``always`` policy), outside all locks."""
        with self._write_lock:
            handle = self._handle
            self._always_pending = 0
        if handle is None:
            return
        os.fsync(handle.fileno())
        self.fsyncs += 1

    def _sync_barrier(self) -> None:
        """One fsync covering every buffered append (leader only)."""
        handle = self._handle
        if handle is not None:
            os.fsync(handle.fileno())
        self.fsyncs += 1

    def flush_pending(self) -> None:
        """Drain any un-synced appends (close)."""
        if self.sync_policy == "always":
            if self._always_pending:
                self._always_fsync()
            return
        if self.sync_policy != "group":
            return
        if self.group.pending() > 0:
            self.group.wait_durable(self.group.latest(), self._sync_barrier)

    def size_bytes(self) -> int:
        """Current on-disk size of the journal (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def replay(self) -> JournalSnapshot:
        """Rebuild broker state from the journal.

        A torn final line is discarded (the operation never completed);
        any other corruption raises :class:`JournalError`.  Delivery
        records accumulate onto their message so a replayed message
        keeps its true ``delivery_count``; dead-letter records move the
        message into the quarantine (and ``dlq_requeue`` moves it back,
        with the count reset exactly as the live operation does).
        """
        fire(self.faults, "journal.replay")
        snapshot = JournalSnapshot()
        outstanding: dict[int, Message] = {}
        dead: dict[int, tuple[Message, str]] = {}
        if not self.path.exists():
            return snapshot
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for line_number, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if line_number == len(lines) - 1:
                    break
                raise JournalError(
                    f"corrupt journal record at {self.path}:{line_number + 1}"
                ) from None
            kind = record.get("type")
            if kind == "declare":
                if record["queue"] not in snapshot.queues:
                    snapshot.queues.append(record["queue"])
            elif kind == "send":
                message = Message.from_wire(record["message"])
                outstanding[message.message_id] = message
                snapshot.next_id = max(snapshot.next_id, message.message_id + 1)
            elif kind == "deliver":
                message = outstanding.get(record["message_id"])
                if message is not None:
                    message.delivery_count += 1
            elif kind == "ack":
                outstanding.pop(record["message_id"], None)
            elif kind == "dead_letter":
                message = outstanding.pop(record["message_id"], None)
                if message is not None:
                    dead[message.message_id] = (
                        message,
                        str(record.get("reason", "")),
                    )
            elif kind == "dlq_requeue":
                entry = dead.pop(record["message_id"], None)
                if entry is not None:
                    message = entry[0]
                    message.delivery_count = 0
                    outstanding[message.message_id] = message
            else:
                raise JournalError(
                    f"unknown journal record type {kind!r} at "
                    f"{self.path}:{line_number + 1}"
                )
        snapshot.outstanding = [outstanding[mid] for mid in sorted(outstanding)]
        snapshot.dead = [dead[mid] for mid in sorted(dead)]
        return snapshot

    def close(self) -> None:
        """Release the file handle (reopened lazily on next append).

        Any still-buffered appends (a group-mode batch, or an
        ``always``-mode record whose deferred fsync was never claimed)
        are fsync'd first — a clean close never loses acknowledged work.
        """
        try:
            if self._handle is not None:
                self.flush_pending()
        finally:
            with self._write_lock:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
