"""Durable journal for the message broker.

Same JSON-lines discipline as the minidb WAL: every record is flushed and
fsync'd before the operation that produced it returns.  Replay rebuilds
the set of *outstanding* messages: everything sent but not acknowledged —
including messages that were in flight to a consumer when the broker
died — reappears in its queue in send order.

Record shapes::

    {"type": "declare", "queue": "agent.robot-1"}
    {"type": "send", "message": {...}}
    {"type": "ack", "queue": "agent.robot-1", "message_id": 17}
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.errors import JournalError
from repro.messaging.message import Message


class BrokerJournal:
    """Append-only journal with crash-tolerant replay."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None
        #: Records durably appended through this handle's lifetime.
        self.appended_records = 0

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record."""
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.appended_records += 1

    def size_bytes(self) -> int:
        """Current on-disk size of the journal (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def replay(self) -> tuple[list[str], list[Message], int]:
        """Rebuild state: (declared queues, outstanding messages, next id).

        A torn final line is discarded (the send never completed); any
        other corruption raises :class:`JournalError`.
        """
        queues: list[str] = []
        outstanding: dict[int, Message] = {}
        next_id = 1
        if not self.path.exists():
            return queues, [], next_id
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for line_number, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if line_number == len(lines) - 1:
                    break
                raise JournalError(
                    f"corrupt journal record at {self.path}:{line_number + 1}"
                ) from None
            kind = record.get("type")
            if kind == "declare":
                if record["queue"] not in queues:
                    queues.append(record["queue"])
            elif kind == "send":
                message = Message.from_wire(record["message"])
                outstanding[message.message_id] = message
                next_id = max(next_id, message.message_id + 1)
            elif kind == "ack":
                outstanding.pop(record["message_id"], None)
            else:
                raise JournalError(
                    f"unknown journal record type {kind!r} at "
                    f"{self.path}:{line_number + 1}"
                )
        ordered = [outstanding[mid] for mid in sorted(outstanding)]
        return queues, ordered, next_id

    def close(self) -> None:
        """Release the file handle (reopened lazily on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
