"""minidb — the in-process relational engine underpinning Exp-DB.

The original Exp-DB stores everything in PostgreSQL.  minidb provides the
subset of relational functionality the LIMS and the workflow module
actually rely on, implemented from scratch:

* typed schemas with primary keys, foreign keys, NOT NULL and defaults,
* table inheritance (experiment-type child tables share the parent key),
* predicate-based queries with hash and ordered secondary indexes,
* transactions with rollback,
* a segmented, checksummed write-ahead log with online checkpoints
  and crash recovery,
* per-operation read/write statistics (the quantity the paper's
  performance evaluation is expressed in).

The public entry point is :class:`~repro.minidb.engine.Database`.
"""

from repro.minidb.engine import CheckpointPolicy, Database, Snapshot
from repro.minidb.predicates import (
    AND,
    EQ,
    GE,
    GT,
    IN,
    IS_NULL,
    LE,
    LIKE,
    LT,
    NE,
    NOT,
    OR,
    Predicate,
)
from repro.minidb.schema import Column, ForeignKey, TableSchema
from repro.minidb.stats import DatabaseStats
from repro.minidb.types import ColumnType

__all__ = [
    "CheckpointPolicy",
    "Database",
    "DatabaseStats",
    "Snapshot",
    "Column",
    "ColumnType",
    "ForeignKey",
    "TableSchema",
    "Predicate",
    "EQ",
    "NE",
    "LT",
    "LE",
    "GT",
    "GE",
    "IN",
    "LIKE",
    "IS_NULL",
    "AND",
    "OR",
    "NOT",
]
