"""The minidb database engine: DDL, DML, constraints, planning, recovery.

:class:`Database` is the single public entry point.  It glues together the
catalog (schemas, heaps, indexes), the transaction manager (atomicity),
the MVCC snapshot manager (read isolation), the write-ahead log
(durability) and the statistics collector (the read/write accounting the
paper's evaluation is phrased in).

Usage::

    db = Database()                      # in-memory
    db = Database("/var/lib/lims.wal")   # durable, recovers on open

    db.create_table(TableSchema(...))
    db.insert("Experiment", {"name": "pcr-7", ...})
    rows = db.select("Experiment", EQ("project_id", 3))
    with db.transaction():
        db.update(...)
        db.delete(...)
    with db.snapshot() as snap:          # repeatable reads, no mutex
        snap.select("Experiment")
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from repro.errors import (
    ConstraintError,
    ForeignKeyError,
    NotNullError,
    PrimaryKeyError,
    RecoveryError,
    SchemaError,
    TransactionError,
)
from repro.minidb.catalog import Catalog, TableEntry
from repro.minidb.index import HashIndex, OrderedIndex
from repro.minidb.mvcc import SnapshotManager, visible_row
from repro.minidb.predicates import GE, GT, IN, LE, LT, Predicate
from repro.minidb.schema import TableSchema
from repro.minidb.stats import DatabaseStats
from repro.minidb.transactions import (
    Transaction,
    TransactionManager,
    UndoDelete,
    UndoEntry,
    UndoInsert,
    UndoUpdate,
)
from repro.minidb.types import coerce, from_wire, to_wire
from repro.minidb.wal import WriteAheadLog
from repro.seglog import DEFAULT_SEGMENT_BYTES

_MISSING = object()

#: Rows per ``txn`` record in a checkpoint snapshot — keeps individual
#: checkpoint frames bounded without changing the replayed state.
_CHECKPOINT_BATCH_ROWS = 500


class _ReadView:
    """Visibility context for one read: a pinned committed version, the
    catalog epoch it was pinned under, and (for threads participating in
    the open transaction) the transaction whose uncommitted writes
    overlay the snapshot."""

    __slots__ = ("version", "epoch", "token")

    def __init__(self, version: int, epoch: int, token: Transaction | None):
        self.version = version
        self.epoch = epoch
        self.token = token


class CheckpointPolicy:
    """When the engine should checkpoint on its own.

    ``every_records`` triggers once that many records have accumulated
    in the WAL tail since the last checkpoint; ``interval_s`` triggers
    on elapsed time through an injectable clock (so the chaos suite can
    drive time-based checkpoints without wall time).  Either may be
    ``None``; a policy with both ``None`` never triggers.  The engine
    consults the policy after each commit's durability barrier — outside
    the statement mutex, so an automatic checkpoint delays no writer.
    """

    def __init__(
        self,
        every_records: int | None = None,
        interval_s: float | None = None,
        clock: Any = None,
    ) -> None:
        self.every_records = every_records
        self.interval_s = interval_s
        if clock is None:
            from repro.resilience.clock import SystemClock

            clock = SystemClock()
        self.clock = clock
        self._last_at = self.clock.now()

    def due(self, records_since_checkpoint: int) -> bool:
        """Whether a checkpoint should run now."""
        if (
            self.every_records is not None
            and records_since_checkpoint >= self.every_records
        ):
            return True
        if self.interval_s is not None:
            return self.clock.now() - self._last_at >= self.interval_s
        return False

    def note_checkpoint(self) -> None:
        """Restart the interval timer (called after any checkpoint)."""
        self._last_at = self.clock.now()


class Snapshot:
    """A pinned committed snapshot: every read through it resolves at
    the same version, regardless of concurrent commits.

    Obtained from :meth:`Database.snapshot`; reads run entirely outside
    the statement mutex, so they can never wait behind a writer's
    group-commit window.  The handle does not overlay any transaction —
    it sees exactly the committed state at pin time.
    """

    def __init__(self, db: "Database", view: _ReadView) -> None:
        self._db = db
        self._view = view

    @property
    def version(self) -> int:
        """The committed version this snapshot is pinned at."""
        return self._view.version

    def select(
        self,
        table: str,
        where: Predicate | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Like :meth:`Database.select`, at the pinned version."""
        return self._db._select_at(
            self._view, table, where, order_by, descending, limit, columns
        )

    def select_one(
        self, table: str, where: Predicate | None = None
    ) -> dict[str, Any] | None:
        """The first matching row at the pinned version, or ``None``."""
        rows = self.select(table, where, limit=1)
        return rows[0] if rows else None

    def get(self, table: str, *key: Any) -> dict[str, Any] | None:
        """Primary-key lookup at the pinned version."""
        return self._db._get_at(self._view, table, key)

    def count(self, table: str, where: Predicate | None = None) -> int:
        """Number of matching rows at the pinned version."""
        return self._db._count_at(self._view, table, where)

    def explain(
        self, table: str, where: Predicate | None = None
    ) -> dict[str, Any]:
        """The access path a select at the pinned version would take."""
        return self._db._explain_at(self._view, table, where)


class Database:
    """An in-process relational database with optional durability.

    Thread safety: every *write* statement (DDL, DML) runs under one
    re-entrant mutex, so autocommit statements from concurrent threads
    are safe.  *Reads* (``select``/``select_one``/``get``/``count``/
    ``explain``/``select_with_parent``) never take that mutex: they pin
    the latest committed MVCC snapshot — O(1) under a tiny leaf lock —
    and resolve row version chains lock-free, so a read can never block
    behind a writer's group-commit fsync window.  Explicit
    multi-statement transactions share a single transaction slot and
    must be serialised by the caller (the workflow engine holds its own
    bean lock around them); threads that join the transaction read
    their own uncommitted writes overlaid on the pinned snapshot.
    Under ``sync_policy="group"`` the durability wait happens *after*
    the mutex is released, which is what lets concurrent committers
    share one fsync instead of queueing on the lock for theirs.
    """

    def __init__(
        self,
        wal_path: str | os.PathLike[str] | None = None,
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        clock: Any = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_max_records: int | None = None,
        salvage: bool = False,
        checkpoint_policy: CheckpointPolicy | None = None,
    ) -> None:
        self._catalog = Catalog()
        self._txn = TransactionManager()
        self._mvcc = SnapshotManager(clock=clock)
        self.stats = DatabaseStats()
        self._mutex = threading.RLock()
        #: Per-thread (wal sequence, start time) of a commit awaiting
        #: its durability barrier — drained by :meth:`_sync_pending`.
        self._pending_commit = threading.local()
        #: Cached access-path choice per (table, catalog epoch,
        #: predicate shape); cleared wholesale on any DDL.  The epoch in
        #: the key pins each plan to the index set it was derived from,
        #: so a reader pinned before a CREATE INDEX never executes a
        #: plan that routes through the too-new index.
        self._plan_cache: dict[tuple[str, int, tuple], tuple[str, Any]] = {}
        #: Test/bench escape hatch: bypass (not just miss) the cache.
        self.plan_cache_enabled = True
        #: Callbacks ``f(table_name)`` fired after each row write —
        #: the invalidation feed for higher-level caches.  Listeners
        #: run under the database mutex: keep them cheap and never call
        #: back into the database.
        self._write_listeners: list[Callable[[str], None]] = []
        #: Optional hook ``f(elapsed_ms)`` observing commit durability
        #: latency (append → fsync barrier); never allowed to raise.
        self.on_commit: Callable[[float], None] | None = None
        #: Optional hook ``f(detail)`` fired after each completed
        #: checkpoint with ``{"reason", "records", "watermark",
        #: "elapsed_ms"}``; never allowed to raise (observability wires
        #: audit records and metrics through it).
        self.on_checkpoint: Callable[[dict[str, Any]], None] | None = None
        #: Automatic checkpointing policy (``None`` = manual only).
        self.checkpoint_policy = checkpoint_policy
        #: Checkpoints completed through this Database's lifetime.
        self.checkpoints = 0
        #: What the last :meth:`_recover` replayed (timings + shape).
        self.last_recovery: dict[str, Any] = {}
        #: Serialises checkpoints against each other (writers are *not*
        #: blocked: the mutex is only held for the brief version pin).
        self._ckpt_lock = threading.Lock()
        self.sync_policy = sync_policy
        self._wal: WriteAheadLog | None = None
        if wal_path is not None:
            self._wal = WriteAheadLog(
                wal_path,
                sync_policy=sync_policy,
                group_window_s=group_window_s,
                clock=clock,
                segment_max_bytes=segment_max_bytes,
                segment_max_records=segment_max_records,
                salvage=salvage,
            )
            self._recover()

    def attach_faults(self, plan) -> None:
        """Install (or clear) a fault plan on the database's WAL.

        ``plan`` is a :class:`repro.resilience.faults.FaultPlan` (typed
        loosely to keep minidb free of upward imports).  A no-op on a
        non-durable database — there is no WAL to inject into.
        """
        if self._wal is not None:
            self._wal.faults = plan

    def wrap_mutex(self, wrap: Callable[[str, Any], Any]) -> None:
        """Swap the engine locks for profiled drop-ins.

        ``wrap(name, lock)`` must return an object with the same
        ``acquire``/``release``/context-manager contract (re-entrant for
        the statement mutex, whose inner lock is an RLock).  Installed
        by the profiling layer (``repro.obs.prof``) — minidb itself
        never imports it, the wrapper comes in from above.  The MVCC
        version lock is wrapped alongside (as ``minidb.version``) so
        the lock-order witness observes the mutex → version nesting.
        """
        self._mutex = wrap("minidb.mutex", self._mutex)
        self._mvcc.wrap_lock(wrap)

    # ------------------------------------------------------------------
    # MVCC plumbing
    # ------------------------------------------------------------------

    def _pin_view(self) -> _ReadView:
        """Pin the latest committed snapshot for one read statement.

        O(1) under the version lock — never the statement mutex.  If the
        calling thread participates in the open transaction, its
        uncommitted writes overlay the snapshot (read-your-writes).
        Must be released with :meth:`_unpin_view`.
        """
        txn = self._txn.current
        if txn is not None and threading.get_ident() not in txn.participants:
            txn = None
        version, epoch = self._mvcc.pin()
        return _ReadView(version, epoch, txn)

    def _unpin_view(self, view: _ReadView) -> None:
        self._mvcc.unpin(view.version)

    def _writer_view(self) -> _ReadView:
        """Visibility for reads inside a write statement (mutex held):
        the latest committed state plus the statement's transaction."""
        version, epoch = self._mvcc.read_state()
        return _ReadView(version, epoch, self._txn.current)

    def _resolve(
        self, entry: TableEntry, rowid: int, view: _ReadView
    ) -> dict[str, Any] | None:
        """The row image of ``rowid`` visible at ``view``, if any."""
        return visible_row(entry.heap.chain(rowid), view.version, view.token)

    def _advance_epoch(self, records: list | None = None) -> int:
        """Publish a new version + catalog epoch after DDL (mutex held)."""
        self._plan_cache.clear()
        version = self._mvcc.begin_version()
        self._mvcc.publish(version, records, epoch=self._mvcc.epoch + 1)
        self._mvcc.collect()
        return version

    @contextlib.contextmanager
    def snapshot(self) -> Iterator[Snapshot]:
        """Pin the latest committed version for repeatable reads.

        Every read through the yielded :class:`Snapshot` resolves at the
        pinned version — concurrent commits are invisible, and no read
        ever takes the statement mutex.  The pin holds version GC back
        for the images the snapshot can still see; release promptly.
        """
        version, epoch = self._mvcc.pin()
        try:
            yield Snapshot(self, _ReadView(version, epoch, None))
        finally:
            self._mvcc.unpin(version)

    def mvcc_info(self) -> dict[str, Any]:
        """MVCC accounting: current version, pins, GC backlog/reclaims."""
        return self._mvcc.info()

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Create a table.  Not allowed inside a transaction."""
        with self._mutex:
            self._forbid_in_transaction("create_table")
            self._catalog.add_table(schema)
            self._advance_epoch()
            self._log({"type": "create_table", "schema": schema.describe()})
        self._sync_pending()

    def drop_table(self, name: str) -> None:
        """Drop a table (fails if referenced by other tables)."""
        with self._mutex:
            self._forbid_in_transaction("drop_table")
            self._catalog.remove_table(name)
            self._advance_epoch()
            self._log({"type": "drop_table", "table": name})
        self._sync_pending()

    def create_index(
        self, table: str, columns: Sequence[str], unique: bool = False
    ) -> str:
        """Create a hash index over ``columns``; returns the index name."""
        with self._mutex:
            self._forbid_in_transaction("create_index")
            entry = self._catalog.entry(table)
            entry.schema.validate_column_names(columns)
            name = self._index_name(table, columns)
            if name in entry.hash_indexes:
                raise SchemaError(f"index {name!r} already exists")
            index = HashIndex(tuple(columns), unique=unique)
            index.rebuild(entry.heap.latest_items())
            if unique:
                self._verify_unique(entry, index, columns)
            # Valid only from the post-DDL epoch: a reader pinned before
            # this statement may still see superseded images the new
            # index holds no entries for, so its plans must not route
            # through it.  The wholesale dict swap keeps concurrent
            # lock-free iteration over the old dict safe.
            index.created_epoch = self._mvcc.epoch + 1
            entry.hash_indexes = {**entry.hash_indexes, name: index}
            self._advance_epoch()
            self._log(
                {
                    "type": "create_index",
                    "table": table,
                    "columns": list(columns),
                    "unique": unique,
                    "ordered": False,
                }
            )
        self._sync_pending()
        return name

    def create_ordered_index(self, table: str, column: str) -> str:
        """Create a sorted index on one column (enables range scans)."""
        with self._mutex:
            self._forbid_in_transaction("create_ordered_index")
            entry = self._catalog.entry(table)
            entry.schema.validate_column_names([column])
            name = self._index_name(table, [column]) + "__ordered"
            if name in entry.ordered_indexes:
                raise SchemaError(f"index {name!r} already exists")
            index = OrderedIndex(column)
            index.rebuild(entry.heap.latest_items())
            index.created_epoch = self._mvcc.epoch + 1
            entry.ordered_indexes = {**entry.ordered_indexes, name: index}
            self._advance_epoch()
            self._log(
                {
                    "type": "create_index",
                    "table": table,
                    "columns": [column],
                    "unique": False,
                    "ordered": True,
                }
            )
        self._sync_pending()
        return name

    def add_column(self, table: str, column) -> None:
        """ALTER TABLE ADD COLUMN: extend ``table`` with one new column.

        Existing rows are backfilled with the column default (which must
        be NULL-compatible with the column's nullability).  This is the
        mechanism Exp-WF uses to extend the ``Experiment`` table with its
        workflow pointers — the only modification the paper makes to the
        original data model.
        """
        with self._mutex:
            self._add_column_locked(table, column)
        self._sync_pending()

    def _add_column_locked(self, table: str, column) -> None:
        self._forbid_in_transaction("add_column")
        entry = self._catalog.entry(table)
        schema = entry.schema
        if schema.has_column(column.name):
            raise SchemaError(
                f"table {table!r} already has a column {column.name!r}"
            )
        backfill = column.resolve_default()
        if backfill is None and not column.nullable:
            raise SchemaError(
                f"cannot add NOT NULL column {column.name!r} without a "
                "default to backfill existing rows"
            )
        backfill = coerce(backfill, column.type, f"{table}.{column.name}")
        new_schema = TableSchema(
            name=schema.name,
            columns=[*schema.columns, column],
            primary_key=schema.primary_key,
            foreign_keys=list(schema.foreign_keys),
            parent=schema.parent,
            autoincrement=schema.autoincrement,
        )
        # The backfill is itself versioned: every row gets a new
        # committed image at the DDL's version, while readers pinned
        # earlier keep resolving to the old images under the old schema
        # (schema_versions carries the cutover point).  The superseded
        # images queue for GC with unchanged index keys, so reclamation
        # is pure chain compaction.
        version = self._mvcc.begin_version()
        records = []
        for rowid, row in entry.heap.latest_items():
            new_row = dict(row)
            new_row[column.name] = backfill
            entry.heap.prepend_committed(rowid, new_row, version)
            records.append((entry, rowid, row, new_row))
        entry.schema = new_schema
        entry.schema_versions.append((version, new_schema))
        self._plan_cache.clear()
        self._mvcc.publish(version, records, epoch=self._mvcc.epoch + 1)
        self._mvcc.collect()
        self._log(
            {
                "type": "add_column",
                "table": table,
                "column": {
                    "name": column.name,
                    "type": column.type.value,
                    "nullable": column.nullable,
                    "default": None if callable(column.default) else column.default,
                },
            }
        )

    @staticmethod
    def _index_name(table: str, columns: Sequence[str]) -> str:
        return f"{table}__{'_'.join(columns)}"

    @staticmethod
    def _verify_unique(
        entry: TableEntry, index: HashIndex, columns: Sequence[str]
    ) -> None:
        seen: set[tuple] = set()
        for __, row in entry.heap.latest_items():
            key = index.key_of(row)
            if any(part is None for part in key):
                continue
            if key in seen:
                raise ConstraintError(
                    f"cannot create unique index on {entry.schema.name!r}"
                    f"{tuple(columns)}: duplicate key {key!r}"
                )
            seen.add(key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tables(self) -> list[str]:
        """All table names in creation order."""
        return self._catalog.table_names()

    def has_table(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return name in self._catalog

    def schema(self, name: str) -> TableSchema:
        """The schema of table ``name``."""
        return self._catalog.entry(name).schema

    def row_count(self, name: str) -> int:
        """Number of rows currently in table ``name``."""
        return len(self._catalog.entry(name).heap)

    def wal_info(self) -> dict[str, object]:
        """Durability status: whether a WAL is attached, and its shape.

        ``appended_records`` counts appends through this Database's
        lifetime (it restarts at 0 on reopen — replayed records were
        appended by the *previous* incarnation); ``size_bytes`` is the
        on-disk log size, which a :meth:`checkpoint` shrinks.
        """
        if self._wal is None:
            return {"enabled": False}
        info: dict[str, object] = {
            "enabled": True,
            "path": str(self._wal.path),
            "appended_records": self._wal.appended,
            "size_bytes": self._wal.size_bytes(),
            "sync_policy": self._wal.sync_policy,
            "fsyncs": self._wal.fsyncs,
            "fsync_wait_ms": self._wal.fsync_wait_ms,
            "group_syncs": self._wal.group.syncs,
            "group_writes_covered": self._wal.group.writes_covered,
        }
        info.update(self._wal.info())
        info["checkpoints"] = self.checkpoints
        info["last_recovery"] = dict(self.last_recovery)
        return info

    def add_write_listener(self, listener: Callable[[str], None]) -> None:
        """Register ``listener(table_name)``, fired after each row write.

        Fired for inserts, updates and deletes — including writes that a
        later rollback undoes, so listeners must treat notifications as
        "this table *may* have changed" (cache invalidation is the
        intended use; spurious invalidation is harmless).
        """
        self._write_listeners.append(listener)

    def _notify_write(self, table: str) -> None:
        for listener in self._write_listeners:
            listener(table)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction."""
        with self._mutex:
            self._txn.begin()

    def commit(self) -> None:
        """Commit the open transaction, making it durable."""
        with self._mutex:
            self._commit_locked()
        self._sync_pending()

    def rollback(self) -> None:
        """Abort the open transaction, undoing all of its changes."""
        with self._mutex:
            self._rollback_locked()

    @contextlib.contextmanager
    def transaction(self) -> Iterator[None]:
        """``with db.transaction():`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield
        except BaseException:
            self.rollback()
            raise
        self.commit()

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open."""
        return self._txn.active

    def _forbid_in_transaction(self, operation: str) -> None:
        if self._txn.active:
            raise TransactionError(f"{operation} is not allowed in a transaction")

    def _commit_locked(self) -> None:
        """Publish the open transaction's writes, then log its redo.

        The commit protocol: stamp every touched chain with the next
        version number, *then* publish that number — a reader pinning
        the new version the instant publish returns already finds every
        chain restamped.  Deferred index reclamation rides the publish
        into the GC queue and is collected opportunistically (with no
        pinned readers it drains immediately, so single-threaded flows
        keep today's exact index shapes).
        """
        txn = self._txn.take_commit()
        if txn.touched:
            version = self._mvcc.begin_version()
            for entry, rowid in txn.touched:
                entry.heap.commit(rowid, txn, version)
            self._mvcc.publish(version, txn.deferred)
            self._mvcc.collect()
        if txn.redo:
            self._log({"type": "txn", "ops": txn.redo})

    def _rollback_locked(self) -> None:
        for undo in self._txn.take_rollback():
            self._apply_undo(undo)

    @contextlib.contextmanager
    def _statement(self) -> Iterator[None]:
        """Run one DML statement, autocommitting if no transaction is open.

        When an explicit transaction is open, the calling thread joins
        it — its subsequent reads overlay the transaction's uncommitted
        writes on their pinned snapshots.
        """
        if self._txn.active:
            self._txn.join(threading.get_ident())
            yield
            return
        self._txn.begin()
        try:
            yield
        except BaseException:
            self._rollback_locked()
            raise
        self._commit_locked()

    # ------------------------------------------------------------------
    # DML — insert
    # ------------------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        """Insert one row; returns the stored row (defaults filled in)."""
        with self._mutex:
            entry = self._catalog.entry(table)
            if self._txn.active:
                with self._statement():
                    txn = self._txn.current
                    view = self._writer_view()
                    row = self._materialise_row(entry, values)
                    self._check_primary_key(entry, row, view)
                    self._check_parent(entry, row, view)
                    self._check_foreign_keys(entry, row, view)
                    rowid = self._store(entry, row, txn)
                    txn.touched.append((entry, rowid))
                    self._txn.record(
                        UndoInsert(table, rowid),
                        {
                            "op": "insert",
                            "table": table,
                            "row": self._wire_row(entry, row),
                        },
                    )
                    self.stats.record_write(table)
                    self._notify_write(table)
            else:
                row = self._insert_autocommit(entry, table, values)
        self._sync_pending()
        return dict(row)

    def _insert_autocommit(
        self, entry: TableEntry, table: str, values: dict[str, Any]
    ) -> dict[str, Any]:
        """Insert outside a transaction without the per-statement
        transaction machinery (the insert hot path).

        A single-statement insert needs no undo log, token overlay or
        commit restamp: once the constraint checks pass, the row is
        stored directly stamped with the next version — invisible to
        every reader until :meth:`SnapshotManager.publish` makes that
        version current, which is the same stamp-then-publish protocol
        :meth:`_commit_locked` follows, minus one chain rewrite.
        """
        version, epoch = self._mvcc.read_state()
        view = _ReadView(version, epoch, None)
        row = self._materialise_row(entry, values)
        self._check_primary_key(entry, row, view)
        self._check_parent(entry, row, view)
        self._check_foreign_keys(entry, row, view)
        rowid = self._store(entry, row, None, version=version + 1)
        try:
            self.stats.record_write(table)
            self._notify_write(table)
        except BaseException:
            # The version was never published, but the next commit would
            # expose the orphaned row — retract it like a rollback would.
            self._apply_undo(UndoInsert(table, rowid))
            raise
        self._mvcc.publish(version + 1)
        self._mvcc.collect()
        self._log(
            {
                "type": "txn",
                "ops": [
                    {
                        "op": "insert",
                        "table": table,
                        "row": self._wire_row(entry, row),
                    }
                ],
            }
        )
        return row

    def _materialise_row(
        self, entry: TableEntry, values: dict[str, Any]
    ) -> dict[str, Any]:
        schema = entry.schema
        schema.validate_column_names(values)
        row: dict[str, Any] = {}
        for column in schema.columns:
            value = values.get(column.name, _MISSING)
            if value is _MISSING:
                if column.name == schema.autoincrement:
                    value = None
                else:
                    value = column.resolve_default()
            if value is None and column.name == schema.autoincrement:
                value = entry.autoincrement_next
                entry.autoincrement_next += 1
            value = coerce(value, column.type, f"{schema.name}.{column.name}")
            if value is None and not column.nullable:
                raise NotNullError(
                    f"column {schema.name}.{column.name} may not be NULL"
                )
            row[column.name] = value
        if schema.autoincrement is not None:
            provided = row[schema.autoincrement]
            if provided is not None and provided >= entry.autoincrement_next:
                entry.autoincrement_next = provided + 1
        return row

    def _pk_visible_row(
        self, entry: TableEntry, key: tuple[Any, ...], view: _ReadView
    ) -> dict[str, Any] | None:
        """Resolve a primary-key lookup against a read view.

        Index entries may be stale (removal is deferred to version GC),
        so each candidate's visible image is re-checked against the key.
        """
        for rowid in sorted(entry.pk_index.lookup(key)):
            row = self._resolve(entry, rowid, view)
            if row is not None and entry.pk_index.key_of(row) == key:
                return row
        return None

    def _check_primary_key(
        self, entry: TableEntry, row: dict[str, Any], view: _ReadView
    ) -> None:
        schema = entry.schema
        key = entry.pk_index.key_of(row)
        if any(part is None for part in key):
            raise PrimaryKeyError(
                f"primary key of {schema.name!r} may not contain NULL"
            )
        self.stats.record_index_lookup()
        # Fast path: no index entry at all means no duplicate under any
        # view.  Only a present key (live duplicate, or a stale entry
        # awaiting version GC) pays for visibility resolution.
        if entry.pk_index.contains_key(key) and (
            self._pk_visible_row(entry, key, view) is not None
        ):
            raise PrimaryKeyError(
                f"duplicate primary key {key!r} in table {schema.name!r}"
            )

    def _check_parent(
        self, entry: TableEntry, row: dict[str, Any], view: _ReadView
    ) -> None:
        """Child tables require a matching parent row (table inheritance)."""
        schema = entry.schema
        if schema.parent is None:
            return
        parent = self._catalog.entry(schema.parent)
        key = tuple(row[column] for column in schema.primary_key)
        self.stats.record_read(schema.parent)
        self.stats.record_index_lookup()
        if self._pk_visible_row(parent, key, view) is None:
            raise ForeignKeyError(
                f"no parent row in {schema.parent!r} for child "
                f"{schema.name!r} key {key!r}"
            )

    def _check_foreign_keys(
        self, entry: TableEntry, row: dict[str, Any], view: _ReadView
    ) -> None:
        for foreign in entry.schema.foreign_keys:
            key = tuple(row[column] for column in foreign.columns)
            if any(part is None for part in key):
                continue  # NULL foreign keys are unconstrained, as in SQL
            referenced = self._catalog.entry(foreign.ref_table)
            self.stats.record_read(foreign.ref_table)
            self.stats.record_index_lookup()
            if self._pk_visible_row(referenced, key, view) is None:
                raise ForeignKeyError(
                    f"{entry.schema.name}.{foreign.columns} = {key!r} has no "
                    f"match in {foreign.ref_table!r}"
                )

    def _store(
        self,
        entry: TableEntry,
        row: dict[str, Any],
        token: Transaction | None,
        version: int = 0,
    ) -> int:
        rowid = entry.heap.insert(row, token=token, version=version)
        entry.pk_index.add(rowid, row)
        for index in entry.hash_indexes.values():
            index.add(rowid, row)
        for ordered in entry.ordered_indexes.values():
            ordered.add(rowid, row)
        return rowid

    # ------------------------------------------------------------------
    # DML — select
    # ------------------------------------------------------------------

    def select(
        self,
        table: str,
        where: Predicate | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Return copies of every row matching ``where``.

        ``order_by`` sorts by one column (NULLs first); ``limit`` caps the
        result after sorting; ``columns`` projects the result to the
        named columns (the full row by default).  The ``order_by``
        column does not need to appear in the projection.

        Served entirely from a pinned MVCC snapshot — no statement
        mutex; concurrent commits never block or tear the row set.
        """
        view = self._pin_view()
        try:
            return self._select_at(
                view, table, where, order_by, descending, limit, columns
            )
        finally:
            self._unpin_view(view)

    def _select_at(
        self,
        view: _ReadView,
        table: str,
        where: Predicate | None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        entry = self._catalog.entry(table)
        schema = entry.schema_at(view.version)
        if where is not None:
            schema.validate_column_names(where.columns())
        if order_by is not None:
            schema.validate_column_names([order_by])
        if columns is not None:
            schema.validate_column_names(columns)
        self.stats.record_read(table)
        rows = [dict(row) for __, row in self._matching_rows(entry, where, view)]
        if order_by is not None:
            rows.sort(key=_order_key(order_by), reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        if columns is not None:
            rows = [{name: row[name] for name in columns} for row in rows]
        return rows

    def select_one(
        self, table: str, where: Predicate | None = None
    ) -> dict[str, Any] | None:
        """The first matching row, or ``None``."""
        rows = self.select(table, where, limit=1)
        return rows[0] if rows else None

    def get(self, table: str, *key: Any) -> dict[str, Any] | None:
        """Primary-key lookup; always served by the PK hash index."""
        view = self._pin_view()
        try:
            return self._get_at(view, table, key)
        finally:
            self._unpin_view(view)

    def _get_at(
        self, view: _ReadView, table: str, key: tuple[Any, ...]
    ) -> dict[str, Any] | None:
        entry = self._catalog.entry(table)
        if len(key) != len(entry.schema.primary_key):
            raise ConstraintError(
                f"table {table!r} has a "
                f"{len(entry.schema.primary_key)}-column "
                f"primary key, got {len(key)} values"
            )
        self.stats.record_read(table)
        self.stats.record_index_lookup()
        row = self._pk_visible_row(entry, tuple(key), view)
        return None if row is None else dict(row)

    def count(self, table: str, where: Predicate | None = None) -> int:
        """Number of rows matching ``where``."""
        view = self._pin_view()
        try:
            return self._count_at(view, table, where)
        finally:
            self._unpin_view(view)

    def _count_at(
        self, view: _ReadView, table: str, where: Predicate | None
    ) -> int:
        entry = self._catalog.entry(table)
        self.stats.record_read(table)
        if where is None:
            return sum(
                1 for __ in entry.heap.visible_items(view.version, view.token)
            )
        entry.schema_at(view.version).validate_column_names(where.columns())
        return sum(1 for __ in self._matching_rows(entry, where, view))

    def select_with_parent(
        self,
        table: str,
        where: Predicate | None = None,
    ) -> list[dict[str, Any]]:
        """Select from a child table, merging inherited parent columns.

        Reproduces TableBean's behaviour for experiment-type tables: a read
        on ``PCR`` performs reads on both ``PCR`` and ``Experiment`` and
        returns one merged record per child row.  Child columns win on name
        clashes.  Works recursively up a multi-level parent chain.  The
        whole join resolves against one pinned snapshot, so child and
        ancestor rows always come from the same version.
        """
        view = self._pin_view()
        try:
            entry = self._catalog.entry(table)
            child_rows = self._select_at(view, table, where)
            chain: list[TableEntry] = []
            current = entry
            while current.schema.parent is not None:
                current = self._catalog.entry(current.schema.parent)
                chain.append(current)
            merged_rows = []
            for child_row in child_rows:
                merged: dict[str, Any] = {}
                key = tuple(
                    child_row[column] for column in entry.schema.primary_key
                )
                for ancestor in reversed(chain):
                    self.stats.record_read(ancestor.schema.name)
                    self.stats.record_index_lookup()
                    row = self._pk_visible_row(ancestor, key, view)
                    if row is not None:
                        merged.update(row)
                merged.update(child_row)
                merged_rows.append(merged)
            return merged_rows
        finally:
            self._unpin_view(view)

    def _matching_rows(
        self, entry: TableEntry, where: Predicate | None, view: _ReadView
    ) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(rowid, row)`` for every visible row matching ``where``.

        Index candidates may include rowids whose entry belongs to a
        superseded image (removal is deferred to version GC), so every
        candidate is resolved through the view and re-checked against
        the predicate — a stale entry either resolves to an image that
        still matches (then it *should* be returned) or is filtered.
        """
        rowids = self._plan(entry, where, view)
        if rowids is None:
            self.stats.record_full_scan()
            self.stats.record_scan(len(entry.heap))
            for rowid, chain in entry.heap.chains():
                row = visible_row(chain, view.version, view.token)
                if row is not None and (where is None or where.matches(row)):
                    yield rowid, row
        else:
            self.stats.record_scan(len(rowids))
            for rowid in rowids:
                row = self._resolve(entry, rowid, view)
                if row is not None and (where is None or where.matches(row)):
                    yield rowid, row

    def _plan(
        self, entry: TableEntry, where: Predicate | None, view: _ReadView
    ) -> list[int] | None:
        """Pick an access path: PK index, secondary index, range, or scan."""
        rowids, __ = self._plan_with_info(entry, where, view)
        return rowids

    def _plan_with_info(
        self, entry: TableEntry, where: Predicate | None, view: _ReadView
    ) -> tuple[list[int] | None, dict[str, Any]]:
        """The planner: candidate rowids plus the chosen access path.

        Split into strategy *selection* (cacheable — depends only on the
        predicate's shape and the table's indexes) and strategy
        *execution* (per-query — plugs the predicate's values into the
        chosen index).
        """
        strategy = self._plan_strategy(entry, where, view)
        return self._execute_strategy(entry, where, strategy)

    def _plan_strategy(
        self, entry: TableEntry, where: Predicate | None, view: _ReadView
    ) -> tuple[str, Any]:
        """The cached access-path decision for (table, epoch, shape)."""
        if where is None:
            return ("full_scan", None)
        if not self.plan_cache_enabled:
            return self._derive_strategy(entry, where, view.epoch)
        key = (entry.schema.name, view.epoch, where.shape())
        strategy = self._plan_cache.get(key)
        if strategy is not None:
            self.stats.record_plan_cache(hit=True)
            return strategy
        self.stats.record_plan_cache(hit=False)
        strategy = self._derive_strategy(entry, where, view.epoch)
        self._plan_cache[key] = strategy
        return strategy

    def _derive_strategy(
        self, entry: TableEntry, where: Predicate, epoch: int
    ) -> tuple[str, Any]:
        """Choose an access path from scratch (cache miss / bypass).

        The decision depends only on the predicate's *shape*: which
        columns are bound, and how.  The second element names the index
        to use (``"__pk__"`` standing for the primary-key hash index),
        so execution never searches the index dictionaries again.  Only
        indexes created at or before the view's epoch are considered —
        a newer index holds no entries for images only this snapshot
        can still see.
        """
        bindings = where.equality_bindings()
        if bindings:
            pk_columns = entry.schema.primary_key
            if all(column in bindings for column in pk_columns):
                return ("pk_lookup", "__pk__")
            for name, index in entry.hash_indexes.items():
                if index.created_epoch <= epoch and all(
                    column in bindings for column in index.columns
                ):
                    return ("hash_index", name)
        if isinstance(where, IN):
            if entry.schema.primary_key == (where.column,):
                return ("in_index", "__pk__")
            for name, index in entry.hash_indexes.items():
                if index.created_epoch <= epoch and index.columns == (
                    where.column,
                ):
                    return ("in_index", name)
        if isinstance(where, (LT, LE, GT, GE)):
            for name, ordered in entry.ordered_indexes.items():
                if (
                    ordered.created_epoch <= epoch
                    and ordered.column == where.column
                ):
                    return ("range_scan", name)
        return ("full_scan", None)

    def _execute_strategy(
        self,
        entry: TableEntry,
        where: Predicate | None,
        strategy: tuple[str, Any],
    ) -> tuple[list[int] | None, dict[str, Any]]:
        """Run a chosen access path against the current predicate values."""
        access, index_name = strategy
        if access == "full_scan":
            return None, {"access": "full_scan", "columns": None}
        self.stats.record_index_lookup()
        if access == "pk_lookup":
            pk_columns = entry.schema.primary_key
            bindings = where.equality_bindings()
            key = tuple(bindings[column] for column in pk_columns)
            return sorted(entry.pk_index.lookup(key)), {
                "access": "pk_lookup",
                "columns": list(pk_columns),
            }
        if access == "hash_index":
            index = entry.hash_indexes[index_name]
            bindings = where.equality_bindings()
            key = tuple(bindings[column] for column in index.columns)
            return sorted(index.lookup(key)), {
                "access": "hash_index",
                "columns": list(index.columns),
            }
        if access == "in_index":
            index = (
                entry.pk_index
                if index_name == "__pk__"
                else entry.hash_indexes[index_name]
            )
            rowids: set[int] = set()
            for value in where.values:
                rowids.update(index.lookup((value,)))
            return sorted(rowids), {
                "access": "in_index",
                "columns": [where.column],
            }
        ordered = entry.ordered_indexes[index_name]
        info = {"access": "range_scan", "columns": [where.column]}
        if isinstance(where, LT):
            return (
                list(ordered.range(high=where.value, include_high=False)),
                info,
            )
        if isinstance(where, LE):
            return list(ordered.range(high=where.value)), info
        if isinstance(where, GT):
            return (
                list(ordered.range(low=where.value, include_low=False)),
                info,
            )
        return list(ordered.range(low=where.value)), info

    def explain(
        self, table: str, where: Predicate | None = None
    ) -> dict[str, Any]:
        """Describe how a SELECT over ``where`` would be executed.

        Returns ``access`` (``pk_lookup`` / ``hash_index`` / ``in_index``
        / ``range_scan`` / ``full_scan``), the ``columns`` the chosen
        index covers, and ``candidate_rows`` the path would touch before
        post-filtering.  ``update`` and ``delete`` locate their targets
        through the same planner, so an ``explain`` of their predicate
        describes their access path too.
        """
        view = self._pin_view()
        try:
            return self._explain_at(view, table, where)
        finally:
            self._unpin_view(view)

    def _explain_at(
        self, view: _ReadView, table: str, where: Predicate | None
    ) -> dict[str, Any]:
        entry = self._catalog.entry(table)
        if where is not None:
            entry.schema_at(view.version).validate_column_names(where.columns())
        rowids, info = self._plan_with_info(entry, where, view)
        info["candidate_rows"] = (
            len(entry.heap) if rowids is None else len(rowids)
        )
        return info

    # ------------------------------------------------------------------
    # DML — update
    # ------------------------------------------------------------------

    def update(
        self,
        table: str,
        where: Predicate | None,
        changes: dict[str, Any],
    ) -> int:
        """Update matching rows; returns the number of rows changed.

        Primary-key columns may not be updated (Exp-DB never rewrites
        experiment ids, and immutable keys keep the referential graph
        simple and cheap to maintain).
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            schema = entry.schema
            schema.validate_column_names(changes)
            if where is not None:
                schema.validate_column_names(where.columns())
            for column in changes:
                if column in schema.primary_key:
                    raise ConstraintError(
                        f"primary key column {schema.name}.{column} "
                        "cannot be updated"
                    )
            coerced = {
                name: coerce(
                    value, schema.column(name).type, f"{schema.name}.{name}"
                )
                for name, value in changes.items()
            }
            for name, value in coerced.items():
                if value is None and not schema.column(name).nullable:
                    raise NotNullError(
                        f"column {schema.name}.{name} may not be NULL"
                    )

            self.stats.record_read(table)  # locating targets is a read
            targets = [
                (rowid, dict(row))
                for rowid, row in self._matching_rows(
                    entry, where, self._writer_view()
                )
            ]

            changed = 0
            with self._statement():
                txn = self._txn.current
                for rowid, old_row in targets:
                    new_row = dict(old_row)
                    new_row.update(coerced)
                    if new_row == old_row:
                        continue
                    self._check_changed_foreign_keys(
                        entry, old_row, new_row, self._writer_view()
                    )
                    self._replace(entry, rowid, old_row, new_row, txn)
                    txn.touched.append((entry, rowid))
                    txn.deferred.append((entry, rowid, old_row, new_row))
                    self._txn.record(
                        UndoUpdate(table, rowid, old_row),
                        {
                            "op": "update",
                            "table": table,
                            "pk": list(
                                to_wire(new_row[c], schema.column(c).type)
                                for c in schema.primary_key
                            ),
                            "row": self._wire_row(entry, new_row),
                        },
                    )
                    self.stats.record_write(table)
                    self._notify_write(table)
                    changed += 1
        self._sync_pending()
        return changed

    def _check_changed_foreign_keys(
        self,
        entry: TableEntry,
        old_row: dict[str, Any],
        new_row: dict[str, Any],
        view: _ReadView,
    ) -> None:
        for foreign in entry.schema.foreign_keys:
            old_key = tuple(old_row[column] for column in foreign.columns)
            new_key = tuple(new_row[column] for column in foreign.columns)
            if old_key == new_key or any(part is None for part in new_key):
                continue
            referenced = self._catalog.entry(foreign.ref_table)
            self.stats.record_read(foreign.ref_table)
            self.stats.record_index_lookup()
            if self._pk_visible_row(referenced, new_key, view) is None:
                raise ForeignKeyError(
                    f"{entry.schema.name}.{foreign.columns} = {new_key!r} has "
                    f"no match in {foreign.ref_table!r}"
                )

    def _replace(
        self,
        entry: TableEntry,
        rowid: int,
        old_row: dict[str, Any],
        new_row: dict[str, Any],
        token: Transaction,
    ) -> None:
        """Install a new uncommitted image; index entries for the old
        image stay until version GC proves no snapshot needs them.  An
        index gains an entry only when the image changed its key under
        that index (the PK never does — PK updates are forbidden)."""
        entry.heap.put(rowid, new_row, token)
        for index in entry.hash_indexes.values():
            if index.key_of(new_row) != index.key_of(old_row):
                index.add(rowid, new_row)
        for ordered in entry.ordered_indexes.values():
            if ordered.key_of(new_row) != ordered.key_of(old_row):
                ordered.add(rowid, new_row)

    # ------------------------------------------------------------------
    # DML — delete
    # ------------------------------------------------------------------

    def delete(self, table: str, where: Predicate | None) -> int:
        """Delete matching rows; returns the number of rows removed.

        Deleting a parent row cascades to inheritance children; foreign
        keys honour their declared ``on_delete`` action.
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            if where is not None:
                entry.schema.validate_column_names(where.columns())
            self.stats.record_read(table)
            targets = [
                rowid
                for rowid, __ in self._matching_rows(
                    entry, where, self._writer_view()
                )
            ]
            deleted = 0
            with self._statement():
                view = self._writer_view()
                for rowid in targets:
                    if self._resolve(entry, rowid, view) is None:
                        continue  # already removed by a cascade
                    deleted += self._delete_row(entry, rowid, view)
        self._sync_pending()
        return deleted

    def _delete_row(
        self, entry: TableEntry, rowid: int, view: _ReadView
    ) -> int:
        table = entry.schema.name
        row = dict(self._resolve(entry, rowid, view))
        key = entry.pk_index.key_of(row)

        # Inheritance children share the PK: cascade to them first.
        deleted = 0
        for child_name in self._catalog.children(table):
            child = self._catalog.entry(child_name)
            self.stats.record_read(child_name)
            self.stats.record_index_lookup()
            for child_rowid in sorted(child.pk_index.lookup(key)):
                child_row = self._resolve(child, child_rowid, view)
                if child_row is None or child.pk_index.key_of(child_row) != key:
                    continue
                deleted += self._delete_row(child, child_rowid, view)

        # Referential actions.
        for referrer_name, foreign in self._catalog.referrers(table):
            referrer = self._catalog.entry(referrer_name)
            self.stats.record_read(referrer_name)
            matches = self._referencing_rowids(referrer, foreign, key, view)
            if not matches:
                continue
            if foreign.on_delete == "restrict":
                raise ForeignKeyError(
                    f"cannot delete {table!r} key {key!r}: referenced by "
                    f"{referrer_name!r}"
                )
            for referencing_rowid in matches:
                if self._resolve(referrer, referencing_rowid, view) is not None:
                    deleted += self._delete_row(referrer, referencing_rowid, view)

        current = self._resolve(entry, rowid, view)
        if current is None:
            return deleted  # removed transitively by a cycle of cascades
        row = dict(current)
        txn = self._txn.current
        entry.heap.put_tombstone(rowid, txn)
        txn.touched.append((entry, rowid))
        txn.deferred.append((entry, rowid, row, None))
        self._txn.record(
            UndoDelete(table, rowid, row),
            {
                "op": "delete",
                "table": table,
                "pk": [
                    to_wire(row[c], entry.schema.column(c).type)
                    for c in entry.schema.primary_key
                ],
            },
        )
        self.stats.record_write(table)
        self._notify_write(table)
        return deleted + 1

    def _referencing_rowids(
        self,
        referrer: TableEntry,
        foreign,
        key: tuple[Any, ...],
        view: _ReadView,
    ) -> list[int]:
        """Rowids in ``referrer`` whose visible FK columns equal ``key``."""
        for index in referrer.hash_indexes.values():
            if index.columns == tuple(foreign.columns):
                self.stats.record_index_lookup()
                matches = []
                for rowid in sorted(index.lookup(key)):
                    row = self._resolve(referrer, rowid, view)
                    if row is not None and index.key_of(row) == key:
                        matches.append(rowid)
                return matches
        matches = []
        self.stats.record_scan(len(referrer.heap))
        for rowid, chain in referrer.heap.chains():
            row = visible_row(chain, view.version, view.token)
            if row is not None and (
                tuple(row.get(column) for column in foreign.columns) == key
            ):
                matches.append(rowid)
        return matches

    # ------------------------------------------------------------------
    # Undo / redo plumbing
    # ------------------------------------------------------------------

    def _apply_undo(self, undo: UndoEntry) -> None:
        """Reverse one mutation by popping its chain entry.

        Undo entries run newest-first, so the popped head is always the
        image this entry installed.  Index reversal mirrors the write
        rules: a delete made no index changes (nothing to undo); an
        insert/update added entries for the popped image, which are
        retracted only where no surviving image still owns them (hash
        buckets are shared per key; ordered instances are per
        transition).
        """
        entry = self._catalog.entry(undo.table)
        rowid = undo.rowid
        popped = entry.heap.rollback_head(rowid)
        if isinstance(undo, UndoDelete):
            return  # popped the tombstone; the old image is live again
        remaining = entry.heap.images(rowid)
        for index in (entry.pk_index, *entry.hash_indexes.values()):
            key = index.key_of(popped)
            if not any(index.key_of(image) == key for image in remaining):
                index.remove(rowid, popped)
        old_row = undo.old_row if isinstance(undo, UndoUpdate) else None
        for ordered in entry.ordered_indexes.values():
            if old_row is None or ordered.key_of(popped) != ordered.key_of(
                old_row
            ):
                ordered.remove(rowid, popped)

    def _wire_row(self, entry: TableEntry, row: dict[str, Any]) -> dict[str, Any]:
        return self._wire_row_with(entry.schema, row)

    @staticmethod
    def _wire_row_with(
        schema: TableSchema, row: dict[str, Any]
    ) -> dict[str, Any]:
        return {
            name: to_wire(value, schema.column(name).type)
            for name, value in row.items()
        }

    def _unwire_row(self, entry: TableEntry, row: dict[str, Any]) -> dict[str, Any]:
        schema = entry.schema
        return {
            name: from_wire(value, schema.column(name).type)
            for name, value in row.items()
        }

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _log(self, record: dict[str, Any]) -> None:
        """Buffer one WAL record; durability is settled in _sync_pending.

        The (sequence, start-time) pair is parked in a thread-local and
        only assigned *after* the append returns, so an injected crash
        inside ``append`` never leaves a stale pending commit behind.
        """
        if self._wal is not None and not self._recovering:
            t0 = time.perf_counter()
            seq = self._wal.append(record)
            self._pending_commit.seq = seq
            self._pending_commit.t0 = t0

    def _sync_pending(self) -> None:
        """Wait for this thread's buffered commit to become durable.

        Called *after* the engine mutex is released: under
        ``sync_policy="group"`` that is what lets commits from many
        threads share one fsync barrier instead of serialising their
        own behind the lock.  Also feeds the :attr:`on_commit` latency
        hook (append → durable, in milliseconds).
        """
        t0 = getattr(self._pending_commit, "t0", None)
        if t0 is None:
            return
        seq = self._pending_commit.seq
        self._pending_commit.t0 = None
        self._pending_commit.seq = None
        if self._wal is not None:
            self._wal.sync(seq)
        if self.on_commit is not None:
            try:
                self.on_commit((time.perf_counter() - t0) * 1000.0)
            except Exception:
                pass
        self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self) -> None:
        """Run a policy-triggered checkpoint after a commit is durable.

        Runs outside the statement mutex (we are past the durability
        barrier) and skips silently when another checkpoint is already
        in flight — the next commit will re-evaluate the policy.
        """
        policy = self.checkpoint_policy
        if policy is None or self._wal is None or self._recovering:
            return
        if not policy.due(self._wal.seg.records_since_checkpoint):
            return
        if not self._ckpt_lock.acquire(blocking=False):
            return
        try:
            self._checkpoint_online("policy")
        except TransactionError:
            pass  # a transaction is open on this thread; retry later
        finally:
            self._ckpt_lock.release()

    _recovering = False

    def _recover(self) -> None:
        """Replay checkpoint + tail to rebuild state after (re)opening.

        Recovery runs before any reader exists, so replay writes flat,
        already-committed chains (version = the current MVCC version)
        and maintains indexes exactly — no tokens, no deferred GC.
        Reader pins taken later are always at or above the version the
        replayed rows carry, so everything replayed is visible.
        """
        assert self._wal is not None
        self._recovering = True
        t0 = time.perf_counter()
        replayed = 0
        try:
            for record in self._wal.replay():
                replayed += 1
                kind = record["type"]
                if kind == "create_table":
                    self._catalog.add_table(
                        TableSchema.from_description(record["schema"])
                    )
                    self._advance_epoch()
                elif kind == "drop_table":
                    self._catalog.remove_table(record["table"])
                    self._advance_epoch()
                elif kind == "create_index":
                    if record["ordered"]:
                        self.create_ordered_index(
                            record["table"], record["columns"][0]
                        )
                    else:
                        self.create_index(
                            record["table"], record["columns"], record["unique"]
                        )
                elif kind == "add_column":
                    from repro.minidb.schema import Column
                    from repro.minidb.types import ColumnType

                    spec = record["column"]
                    self.add_column(
                        record["table"],
                        Column(
                            name=spec["name"],
                            type=ColumnType(spec["type"]),
                            nullable=spec["nullable"],
                            default=spec["default"],
                        ),
                    )
                elif kind == "autoincrement":
                    entry = self._catalog.entry(record["table"])
                    entry.autoincrement_next = max(
                        entry.autoincrement_next, record["next"]
                    )
                elif kind == "txn":
                    for op in record["ops"]:
                        self._replay_op(op)
                else:
                    raise RecoveryError(f"unknown WAL record type {kind!r}")
        finally:
            self._recovering = False
        replay_shape = dict(self._wal.seg.last_replay)
        self.last_recovery = {
            "elapsed_ms": (time.perf_counter() - t0) * 1000.0,
            "records": replayed,
            **replay_shape,
        }
        self.stats.reset()

    def _replay_rowid(
        self, entry: TableEntry, key: tuple[Any, ...], table: str
    ) -> tuple[int, dict[str, Any]]:
        """Locate the committed row carrying ``key`` during replay."""
        for candidate in sorted(entry.pk_index.lookup(key)):
            row = entry.heap.latest_committed(candidate)
            if row is not None and entry.pk_index.key_of(row) == key:
                return candidate, row
        raise RecoveryError(
            f"WAL references missing row {key!r} in {table!r}"
        )

    def _replay_op(self, op: dict[str, Any]) -> None:
        entry = self._catalog.entry(op["table"])
        schema = entry.schema
        version = self._mvcc.version
        if op["op"] == "insert":
            row = self._unwire_row(entry, op["row"])
            self._store(entry, row, token=None, version=version)
            if schema.autoincrement is not None:
                value = row.get(schema.autoincrement)
                if value is not None and value >= entry.autoincrement_next:
                    entry.autoincrement_next = value + 1
            return
        key = tuple(
            from_wire(value, schema.column(column).type)
            for column, value in zip(schema.primary_key, op["pk"])
        )
        rowid, old_row = self._replay_rowid(entry, key, op["table"])
        if op["op"] == "update":
            new_row = self._unwire_row(entry, op["row"])
            entry.pk_index.remove(rowid, old_row)
            for index in entry.hash_indexes.values():
                index.remove(rowid, old_row)
            for ordered in entry.ordered_indexes.values():
                ordered.remove(rowid, old_row)
            entry.heap.replace_committed(rowid, new_row, version)
            entry.pk_index.add(rowid, new_row)
            for index in entry.hash_indexes.values():
                index.add(rowid, new_row)
            for ordered in entry.ordered_indexes.values():
                ordered.add(rowid, new_row)
        elif op["op"] == "delete":
            entry.heap.remove(rowid)
            entry.pk_index.remove(rowid, old_row)
            for index in entry.hash_indexes.values():
                index.remove(rowid, old_row)
            for ordered in entry.ordered_indexes.values():
                ordered.remove(rowid, old_row)
        else:
            raise RecoveryError(f"unknown WAL op {op['op']!r}")

    def checkpoint(self, reason: str = "manual") -> int:
        """Online checkpoint: snapshot state, compact the WAL behind it.

        Writers are paused only for the WAL segment rotation plus an
        O(1) MVCC version pin and per-table metadata capture — the rows
        themselves stream out of the pinned snapshot *after* the
        statement mutex is released, concurrently with new commits.
        Serialisation, the checkpoint-file fsync, the atomic manifest
        swap and the compaction of pre-watermark segments likewise run
        while appends continue into the new segment.  Recovery
        afterwards replays the checkpoint plus only the post-watermark
        tail, so recovery time stops growing with history.  Returns the
        number of records in the checkpoint snapshot.
        """
        if self._wal is None:
            raise TransactionError("checkpoint requires a WAL-backed database")
        with self._ckpt_lock:
            return self._checkpoint_online(reason)

    def _checkpoint_online(self, reason: str) -> int:
        """The checkpoint body; caller holds ``_ckpt_lock``."""
        assert self._wal is not None
        t0 = time.perf_counter()
        with self._mutex:
            self._forbid_in_transaction("checkpoint")
            watermark = self._wal.rotate()
            version, __ = self._mvcc.pin()
            captured = self._capture_meta_locked()
        try:
            count = self._wal.install_checkpoint(
                self._snapshot_records(captured, version), watermark
            )
        finally:
            self._mvcc.unpin(version)
        self.checkpoints += 1
        if self.checkpoint_policy is not None:
            self.checkpoint_policy.note_checkpoint()
        if self.on_checkpoint is not None:
            try:
                self.on_checkpoint(
                    {
                        "reason": reason,
                        "records": count,
                        "watermark": watermark,
                        "elapsed_ms": (time.perf_counter() - t0) * 1000.0,
                    }
                )
            except Exception:
                pass
        return count

    def _capture_meta_locked(self) -> list[dict[str, Any]]:
        """Capture per-table metadata for a checkpoint (under mutex).

        O(#tables + #indexes) — no row copies.  The rows are streamed
        later from the pinned MVCC version; everything captured here is
        either immutable (schemas) or only mutated under the mutex by
        DDL, whose WAL records land after the rotation watermark and
        replay on top of the checkpoint.
        """
        captured: list[dict[str, Any]] = []
        for name in self._catalog.table_names():
            entry = self._catalog.entry(name)
            captured.append(
                {
                    "name": name,
                    "entry": entry,
                    "schema": entry.schema,
                    "hash_indexes": [
                        (list(index.columns), index.unique)
                        for index in entry.hash_indexes.values()
                    ],
                    "ordered_indexes": [
                        ordered.column
                        for ordered in entry.ordered_indexes.values()
                    ],
                    "autoincrement_next": (
                        entry.autoincrement_next
                        if entry.schema.autoincrement is not None
                        else None
                    ),
                }
            )
        return captured

    def _snapshot_records(
        self, captured: list[dict[str, Any]], version: int
    ) -> Iterator[dict[str, Any]]:
        """Stream the pinned version as replayable WAL records.

        Rows resolve against the pinned MVCC version lock-free while
        writers keep committing; replaying the sequence reproduces
        exactly the state as of the pin.  Rows are batched into ``txn``
        records of bounded size.
        """
        for table in captured:
            yield {"type": "create_table", "schema": table["schema"].describe()}
            for columns, unique in table["hash_indexes"]:
                yield {
                    "type": "create_index",
                    "table": table["name"],
                    "columns": columns,
                    "unique": unique,
                    "ordered": False,
                }
            for column in table["ordered_indexes"]:
                yield {
                    "type": "create_index",
                    "table": table["name"],
                    "columns": [column],
                    "unique": False,
                    "ordered": True,
                }
            if table["autoincrement_next"] is not None:
                yield {
                    "type": "autoincrement",
                    "table": table["name"],
                    "next": table["autoincrement_next"],
                }
        for table in captured:
            schema = table["schema"]
            batch: list[dict[str, Any]] = []
            for __, row in table["entry"].heap.visible_items(version):
                batch.append(
                    {
                        "op": "insert",
                        "table": table["name"],
                        "row": self._wire_row_with(schema, row),
                    }
                )
                if len(batch) >= _CHECKPOINT_BATCH_ROWS:
                    yield {"type": "txn", "ops": batch}
                    batch = []
            if batch:
                yield {"type": "txn", "ops": batch}

    def close(self) -> None:
        """Flush and release the WAL file handle."""
        if self._wal is not None:
            self._wal.close()


def _order_key(column: str):
    """Sort key for ORDER BY: NULLs first, then natural ordering."""

    def key(row: dict[str, Any]) -> tuple[bool, Any]:
        value = row[column]
        if value is None:
            return (False, 0)
        return (True, value)

    return key
