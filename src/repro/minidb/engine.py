"""The minidb database engine: DDL, DML, constraints, planning, recovery.

:class:`Database` is the single public entry point.  It glues together the
catalog (schemas, heaps, indexes), the transaction manager (atomicity),
the write-ahead log (durability) and the statistics collector (the
read/write accounting the paper's evaluation is phrased in).

Usage::

    db = Database()                      # in-memory
    db = Database("/var/lib/lims.wal")   # durable, recovers on open

    db.create_table(TableSchema(...))
    db.insert("Experiment", {"name": "pcr-7", ...})
    rows = db.select("Experiment", EQ("project_id", 3))
    with db.transaction():
        db.update(...)
        db.delete(...)
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from repro.errors import (
    ConstraintError,
    ForeignKeyError,
    NotNullError,
    PrimaryKeyError,
    RecoveryError,
    SchemaError,
    TransactionError,
)
from repro.minidb.catalog import Catalog, TableEntry
from repro.minidb.index import HashIndex, OrderedIndex
from repro.minidb.predicates import GE, GT, IN, LE, LT, Predicate
from repro.minidb.schema import TableSchema
from repro.minidb.stats import DatabaseStats
from repro.minidb.transactions import (
    TransactionManager,
    UndoDelete,
    UndoEntry,
    UndoInsert,
    UndoUpdate,
)
from repro.minidb.types import coerce, from_wire, to_wire
from repro.minidb.wal import WriteAheadLog
from repro.seglog import DEFAULT_SEGMENT_BYTES

_MISSING = object()

#: Rows per ``txn`` record in a checkpoint snapshot — keeps individual
#: checkpoint frames bounded without changing the replayed state.
_CHECKPOINT_BATCH_ROWS = 500


class CheckpointPolicy:
    """When the engine should checkpoint on its own.

    ``every_records`` triggers once that many records have accumulated
    in the WAL tail since the last checkpoint; ``interval_s`` triggers
    on elapsed time through an injectable clock (so the chaos suite can
    drive time-based checkpoints without wall time).  Either may be
    ``None``; a policy with both ``None`` never triggers.  The engine
    consults the policy after each commit's durability barrier — outside
    the statement mutex, so an automatic checkpoint delays no writer.
    """

    def __init__(
        self,
        every_records: int | None = None,
        interval_s: float | None = None,
        clock: Any = None,
    ) -> None:
        self.every_records = every_records
        self.interval_s = interval_s
        if clock is None:
            from repro.resilience.clock import SystemClock

            clock = SystemClock()
        self.clock = clock
        self._last_at = self.clock.now()

    def due(self, records_since_checkpoint: int) -> bool:
        """Whether a checkpoint should run now."""
        if (
            self.every_records is not None
            and records_since_checkpoint >= self.every_records
        ):
            return True
        if self.interval_s is not None:
            return self.clock.now() - self._last_at >= self.interval_s
        return False

    def note_checkpoint(self) -> None:
        """Restart the interval timer (called after any checkpoint)."""
        self._last_at = self.clock.now()


class Database:
    """An in-process relational database with optional durability.

    Thread safety: every statement (DDL, DML, reads) runs under one
    re-entrant mutex, so autocommit statements from concurrent threads
    are safe.  Explicit multi-statement transactions share a single
    transaction slot and must be serialised by the caller (the workflow
    engine holds its own bean lock around them).  Under
    ``sync_policy="group"`` the durability wait happens *after* the
    mutex is released, which is what lets concurrent committers share
    one fsync instead of queueing on the lock for theirs.
    """

    def __init__(
        self,
        wal_path: str | os.PathLike[str] | None = None,
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        clock: Any = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_max_records: int | None = None,
        salvage: bool = False,
        checkpoint_policy: CheckpointPolicy | None = None,
    ) -> None:
        self._catalog = Catalog()
        self._txn = TransactionManager()
        self.stats = DatabaseStats()
        self._mutex = threading.RLock()
        #: Per-thread (wal sequence, start time) of a commit awaiting
        #: its durability barrier — drained by :meth:`_sync_pending`.
        self._pending_commit = threading.local()
        #: Cached access-path choice per (table, predicate shape);
        #: cleared wholesale on any DDL.
        self._plan_cache: dict[tuple[str, tuple], tuple[str, Any]] = {}
        #: Test/bench escape hatch: bypass (not just miss) the cache.
        self.plan_cache_enabled = True
        #: Callbacks ``f(table_name)`` fired after each row write —
        #: the invalidation feed for higher-level caches.  Listeners
        #: run under the database mutex: keep them cheap and never call
        #: back into the database.
        self._write_listeners: list[Callable[[str], None]] = []
        #: Optional hook ``f(elapsed_ms)`` observing commit durability
        #: latency (append → fsync barrier); never allowed to raise.
        self.on_commit: Callable[[float], None] | None = None
        #: Optional hook ``f(detail)`` fired after each completed
        #: checkpoint with ``{"reason", "records", "watermark",
        #: "elapsed_ms"}``; never allowed to raise (observability wires
        #: audit records and metrics through it).
        self.on_checkpoint: Callable[[dict[str, Any]], None] | None = None
        #: Automatic checkpointing policy (``None`` = manual only).
        self.checkpoint_policy = checkpoint_policy
        #: Checkpoints completed through this Database's lifetime.
        self.checkpoints = 0
        #: What the last :meth:`_recover` replayed (timings + shape).
        self.last_recovery: dict[str, Any] = {}
        #: Serialises checkpoints against each other (writers are *not*
        #: blocked: the mutex is only held for the brief state capture).
        self._ckpt_lock = threading.Lock()
        self.sync_policy = sync_policy
        self._wal: WriteAheadLog | None = None
        if wal_path is not None:
            self._wal = WriteAheadLog(
                wal_path,
                sync_policy=sync_policy,
                group_window_s=group_window_s,
                clock=clock,
                segment_max_bytes=segment_max_bytes,
                segment_max_records=segment_max_records,
                salvage=salvage,
            )
            self._recover()

    def attach_faults(self, plan) -> None:
        """Install (or clear) a fault plan on the database's WAL.

        ``plan`` is a :class:`repro.resilience.faults.FaultPlan` (typed
        loosely to keep minidb free of upward imports).  A no-op on a
        non-durable database — there is no WAL to inject into.
        """
        if self._wal is not None:
            self._wal.faults = plan

    def wrap_mutex(self, wrap: Callable[[str, Any], Any]) -> None:
        """Swap the statement mutex for a profiled drop-in.

        ``wrap(name, lock)`` must return an object with the same
        ``acquire``/``release``/context-manager contract (re-entrant,
        since the inner lock is an RLock).  Installed by the profiling
        layer (``repro.obs.prof``) — minidb itself never imports it, the
        wrapper comes in from above.
        """
        self._mutex = wrap("minidb.mutex", self._mutex)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Create a table.  Not allowed inside a transaction."""
        with self._mutex:
            self._forbid_in_transaction("create_table")
            self._catalog.add_table(schema)
            self._plan_cache.clear()
            self._log({"type": "create_table", "schema": schema.describe()})
        self._sync_pending()

    def drop_table(self, name: str) -> None:
        """Drop a table (fails if referenced by other tables)."""
        with self._mutex:
            self._forbid_in_transaction("drop_table")
            self._catalog.remove_table(name)
            self._plan_cache.clear()
            self._log({"type": "drop_table", "table": name})
        self._sync_pending()

    def create_index(
        self, table: str, columns: Sequence[str], unique: bool = False
    ) -> str:
        """Create a hash index over ``columns``; returns the index name."""
        with self._mutex:
            self._forbid_in_transaction("create_index")
            entry = self._catalog.entry(table)
            entry.schema.validate_column_names(columns)
            name = self._index_name(table, columns)
            if name in entry.hash_indexes:
                raise SchemaError(f"index {name!r} already exists")
            index = HashIndex(tuple(columns), unique=unique)
            index.rebuild(entry.heap.scan())
            if unique:
                self._verify_unique(entry, index, columns)
            entry.hash_indexes[name] = index
            self._plan_cache.clear()
            self._log(
                {
                    "type": "create_index",
                    "table": table,
                    "columns": list(columns),
                    "unique": unique,
                    "ordered": False,
                }
            )
        self._sync_pending()
        return name

    def create_ordered_index(self, table: str, column: str) -> str:
        """Create a sorted index on one column (enables range scans)."""
        with self._mutex:
            self._forbid_in_transaction("create_ordered_index")
            entry = self._catalog.entry(table)
            entry.schema.validate_column_names([column])
            name = self._index_name(table, [column]) + "__ordered"
            if name in entry.ordered_indexes:
                raise SchemaError(f"index {name!r} already exists")
            index = OrderedIndex(column)
            index.rebuild(entry.heap.scan())
            entry.ordered_indexes[name] = index
            self._plan_cache.clear()
            self._log(
                {
                    "type": "create_index",
                    "table": table,
                    "columns": [column],
                    "unique": False,
                    "ordered": True,
                }
            )
        self._sync_pending()
        return name

    def add_column(self, table: str, column) -> None:
        """ALTER TABLE ADD COLUMN: extend ``table`` with one new column.

        Existing rows are backfilled with the column default (which must
        be NULL-compatible with the column's nullability).  This is the
        mechanism Exp-WF uses to extend the ``Experiment`` table with its
        workflow pointers — the only modification the paper makes to the
        original data model.
        """
        with self._mutex:
            self._add_column_locked(table, column)
        self._sync_pending()

    def _add_column_locked(self, table: str, column) -> None:
        self._forbid_in_transaction("add_column")
        entry = self._catalog.entry(table)
        schema = entry.schema
        if schema.has_column(column.name):
            raise SchemaError(
                f"table {table!r} already has a column {column.name!r}"
            )
        backfill = column.resolve_default()
        if backfill is None and not column.nullable:
            raise SchemaError(
                f"cannot add NOT NULL column {column.name!r} without a "
                "default to backfill existing rows"
            )
        backfill = coerce(backfill, column.type, f"{table}.{column.name}")
        new_schema = TableSchema(
            name=schema.name,
            columns=[*schema.columns, column],
            primary_key=schema.primary_key,
            foreign_keys=list(schema.foreign_keys),
            parent=schema.parent,
            autoincrement=schema.autoincrement,
        )
        entry.schema = new_schema
        for __, row in entry.heap.scan():
            row[column.name] = backfill
        self._plan_cache.clear()
        self._log(
            {
                "type": "add_column",
                "table": table,
                "column": {
                    "name": column.name,
                    "type": column.type.value,
                    "nullable": column.nullable,
                    "default": None if callable(column.default) else column.default,
                },
            }
        )

    @staticmethod
    def _index_name(table: str, columns: Sequence[str]) -> str:
        return f"{table}__{'_'.join(columns)}"

    @staticmethod
    def _verify_unique(
        entry: TableEntry, index: HashIndex, columns: Sequence[str]
    ) -> None:
        for __, row in entry.heap.scan():
            key = index.key_of(row)
            if index.count_key(key) > 1:
                raise ConstraintError(
                    f"cannot create unique index on {entry.schema.name!r}"
                    f"{tuple(columns)}: duplicate key {key!r}"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tables(self) -> list[str]:
        """All table names in creation order."""
        return self._catalog.table_names()

    def has_table(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return name in self._catalog

    def schema(self, name: str) -> TableSchema:
        """The schema of table ``name``."""
        return self._catalog.entry(name).schema

    def row_count(self, name: str) -> int:
        """Number of rows currently in table ``name``."""
        return len(self._catalog.entry(name).heap)

    def wal_info(self) -> dict[str, object]:
        """Durability status: whether a WAL is attached, and its shape.

        ``appended_records`` counts appends through this Database's
        lifetime (it restarts at 0 on reopen — replayed records were
        appended by the *previous* incarnation); ``size_bytes`` is the
        on-disk log size, which a :meth:`checkpoint` shrinks.
        """
        if self._wal is None:
            return {"enabled": False}
        info: dict[str, object] = {
            "enabled": True,
            "path": str(self._wal.path),
            "appended_records": self._wal.appended,
            "size_bytes": self._wal.size_bytes(),
            "sync_policy": self._wal.sync_policy,
            "fsyncs": self._wal.fsyncs,
            "fsync_wait_ms": self._wal.fsync_wait_ms,
            "group_syncs": self._wal.group.syncs,
            "group_writes_covered": self._wal.group.writes_covered,
        }
        info.update(self._wal.info())
        info["checkpoints"] = self.checkpoints
        info["last_recovery"] = dict(self.last_recovery)
        return info

    def add_write_listener(self, listener: Callable[[str], None]) -> None:
        """Register ``listener(table_name)``, fired after each row write.

        Fired for inserts, updates and deletes — including writes that a
        later rollback undoes, so listeners must treat notifications as
        "this table *may* have changed" (cache invalidation is the
        intended use; spurious invalidation is harmless).
        """
        self._write_listeners.append(listener)

    def _notify_write(self, table: str) -> None:
        for listener in self._write_listeners:
            listener(table)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction."""
        with self._mutex:
            self._txn.begin()

    def commit(self) -> None:
        """Commit the open transaction, making it durable."""
        with self._mutex:
            redo = self._txn.take_commit()
            if redo:
                self._log({"type": "txn", "ops": redo})
        self._sync_pending()

    def rollback(self) -> None:
        """Abort the open transaction, undoing all of its changes."""
        with self._mutex:
            for entry in self._txn.take_rollback():
                self._apply_undo(entry)

    @contextlib.contextmanager
    def transaction(self) -> Iterator[None]:
        """``with db.transaction():`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield
        except BaseException:
            self.rollback()
            raise
        self.commit()

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open."""
        return self._txn.active

    def _forbid_in_transaction(self, operation: str) -> None:
        if self._txn.active:
            raise TransactionError(f"{operation} is not allowed in a transaction")

    @contextlib.contextmanager
    def _statement(self) -> Iterator[None]:
        """Run one DML statement, autocommitting if no transaction is open."""
        if self._txn.active:
            yield
            return
        self._txn.begin()
        try:
            yield
        except BaseException:
            for entry in self._txn.take_rollback():
                self._apply_undo(entry)
            raise
        redo = self._txn.take_commit()
        if redo:
            self._log({"type": "txn", "ops": redo})

    # ------------------------------------------------------------------
    # DML — insert
    # ------------------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        """Insert one row; returns the stored row (defaults filled in)."""
        with self._mutex:
            entry = self._catalog.entry(table)
            with self._statement():
                row = self._materialise_row(entry, values)
                self._check_primary_key(entry, row)
                self._check_parent(entry, row)
                self._check_foreign_keys(entry, row)
                rowid = self._store(entry, row)
                self._txn.record(
                    UndoInsert(table, rowid),
                    {
                        "op": "insert",
                        "table": table,
                        "row": self._wire_row(entry, row),
                    },
                )
                self.stats.record_write(table)
                self._notify_write(table)
        self._sync_pending()
        return dict(row)

    def _materialise_row(
        self, entry: TableEntry, values: dict[str, Any]
    ) -> dict[str, Any]:
        schema = entry.schema
        schema.validate_column_names(values)
        row: dict[str, Any] = {}
        for column in schema.columns:
            value = values.get(column.name, _MISSING)
            if value is _MISSING:
                if column.name == schema.autoincrement:
                    value = None
                else:
                    value = column.resolve_default()
            if value is None and column.name == schema.autoincrement:
                value = entry.autoincrement_next
                entry.autoincrement_next += 1
            value = coerce(value, column.type, f"{schema.name}.{column.name}")
            if value is None and not column.nullable:
                raise NotNullError(
                    f"column {schema.name}.{column.name} may not be NULL"
                )
            row[column.name] = value
        if schema.autoincrement is not None:
            provided = row[schema.autoincrement]
            if provided is not None and provided >= entry.autoincrement_next:
                entry.autoincrement_next = provided + 1
        return row

    def _check_primary_key(self, entry: TableEntry, row: dict[str, Any]) -> None:
        schema = entry.schema
        key = entry.pk_index.key_of(row)
        if any(part is None for part in key):
            raise PrimaryKeyError(
                f"primary key of {schema.name!r} may not contain NULL"
            )
        self.stats.record_index_lookup()
        if entry.pk_index.contains_key(key):
            raise PrimaryKeyError(
                f"duplicate primary key {key!r} in table {schema.name!r}"
            )

    def _check_parent(self, entry: TableEntry, row: dict[str, Any]) -> None:
        """Child tables require a matching parent row (table inheritance)."""
        schema = entry.schema
        if schema.parent is None:
            return
        parent = self._catalog.entry(schema.parent)
        key = tuple(row[column] for column in schema.primary_key)
        self.stats.record_read(schema.parent)
        self.stats.record_index_lookup()
        if not parent.pk_index.contains_key(key):
            raise ForeignKeyError(
                f"no parent row in {schema.parent!r} for child "
                f"{schema.name!r} key {key!r}"
            )

    def _check_foreign_keys(self, entry: TableEntry, row: dict[str, Any]) -> None:
        for foreign in entry.schema.foreign_keys:
            key = tuple(row[column] for column in foreign.columns)
            if any(part is None for part in key):
                continue  # NULL foreign keys are unconstrained, as in SQL
            referenced = self._catalog.entry(foreign.ref_table)
            self.stats.record_read(foreign.ref_table)
            self.stats.record_index_lookup()
            if not referenced.pk_index.contains_key(key):
                raise ForeignKeyError(
                    f"{entry.schema.name}.{foreign.columns} = {key!r} has no "
                    f"match in {foreign.ref_table!r}"
                )

    def _store(self, entry: TableEntry, row: dict[str, Any]) -> int:
        rowid = entry.heap.insert(row)
        entry.pk_index.add(rowid, row)
        for index in entry.hash_indexes.values():
            index.add(rowid, row)
        for ordered in entry.ordered_indexes.values():
            ordered.add(rowid, row)
        return rowid

    # ------------------------------------------------------------------
    # DML — select
    # ------------------------------------------------------------------

    def select(
        self,
        table: str,
        where: Predicate | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Return copies of every row matching ``where``.

        ``order_by`` sorts by one column (NULLs first); ``limit`` caps the
        result after sorting; ``columns`` projects the result to the
        named columns (the full row by default).  The ``order_by``
        column does not need to appear in the projection.
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            if where is not None:
                entry.schema.validate_column_names(where.columns())
            if order_by is not None:
                entry.schema.validate_column_names([order_by])
            if columns is not None:
                entry.schema.validate_column_names(columns)
            self.stats.record_read(table)
            rows = [dict(row) for row in self._matching_rows(entry, where)]
        if order_by is not None:
            rows.sort(key=_order_key(order_by), reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        if columns is not None:
            rows = [{name: row[name] for name in columns} for row in rows]
        return rows

    def select_one(
        self, table: str, where: Predicate | None = None
    ) -> dict[str, Any] | None:
        """The first matching row, or ``None``."""
        rows = self.select(table, where, limit=1)
        return rows[0] if rows else None

    def get(self, table: str, *key: Any) -> dict[str, Any] | None:
        """Primary-key lookup; always served by the PK hash index."""
        with self._mutex:
            entry = self._catalog.entry(table)
            if len(key) != len(entry.schema.primary_key):
                raise ConstraintError(
                    f"table {table!r} has a "
                    f"{len(entry.schema.primary_key)}-column "
                    f"primary key, got {len(key)} values"
                )
            self.stats.record_read(table)
            self.stats.record_index_lookup()
            rowids = entry.pk_index.lookup(tuple(key))
            if not rowids:
                return None
            return dict(entry.heap.get(next(iter(rowids))))

    def count(self, table: str, where: Predicate | None = None) -> int:
        """Number of rows matching ``where``."""
        with self._mutex:
            entry = self._catalog.entry(table)
            if where is None:
                self.stats.record_read(table)
                return len(entry.heap)
            entry.schema.validate_column_names(where.columns())
            self.stats.record_read(table)
            return sum(1 for __ in self._matching_rows(entry, where))

    def select_with_parent(
        self,
        table: str,
        where: Predicate | None = None,
    ) -> list[dict[str, Any]]:
        """Select from a child table, merging inherited parent columns.

        Reproduces TableBean's behaviour for experiment-type tables: a read
        on ``PCR`` performs reads on both ``PCR`` and ``Experiment`` and
        returns one merged record per child row.  Child columns win on name
        clashes.  Works recursively up a multi-level parent chain.
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            child_rows = self.select(table, where)
            chain: list[TableEntry] = []
            current = entry
            while current.schema.parent is not None:
                current = self._catalog.entry(current.schema.parent)
                chain.append(current)
            merged_rows = []
            for child_row in child_rows:
                merged: dict[str, Any] = {}
                key = tuple(
                    child_row[column] for column in entry.schema.primary_key
                )
                for ancestor in reversed(chain):
                    self.stats.record_read(ancestor.schema.name)
                    self.stats.record_index_lookup()
                    rowids = ancestor.pk_index.lookup(key)
                    if rowids:
                        merged.update(ancestor.heap.get(next(iter(rowids))))
                merged.update(child_row)
                merged_rows.append(merged)
            return merged_rows

    def _matching_rows(
        self, entry: TableEntry, where: Predicate | None
    ) -> Iterator[dict[str, Any]]:
        rowids = self._plan(entry, where)
        if rowids is None:
            self.stats.record_full_scan()
            self.stats.record_scan(len(entry.heap))
            for __, row in entry.heap.scan():
                if where is None or where.matches(row):
                    yield row
        else:
            self.stats.record_scan(len(rowids))
            for rowid in rowids:
                row = entry.heap.get(rowid)
                if where is None or where.matches(row):
                    yield row

    def _plan(
        self, entry: TableEntry, where: Predicate | None
    ) -> list[int] | None:
        """Pick an access path: PK index, secondary index, range, or scan."""
        rowids, __ = self._plan_with_info(entry, where)
        return rowids

    def _plan_with_info(
        self, entry: TableEntry, where: Predicate | None
    ) -> tuple[list[int] | None, dict[str, Any]]:
        """The planner: candidate rowids plus the chosen access path.

        Split into strategy *selection* (cacheable — depends only on the
        predicate's shape and the table's indexes) and strategy
        *execution* (per-query — plugs the predicate's values into the
        chosen index).
        """
        strategy = self._plan_strategy(entry, where)
        return self._execute_strategy(entry, where, strategy)

    def _plan_strategy(
        self, entry: TableEntry, where: Predicate | None
    ) -> tuple[str, Any]:
        """The cached access-path decision for (table, predicate shape)."""
        if where is None:
            return ("full_scan", None)
        if not self.plan_cache_enabled:
            return self._derive_strategy(entry, where)
        key = (entry.schema.name, where.shape())
        strategy = self._plan_cache.get(key)
        if strategy is not None:
            self.stats.record_plan_cache(hit=True)
            return strategy
        self.stats.record_plan_cache(hit=False)
        strategy = self._derive_strategy(entry, where)
        self._plan_cache[key] = strategy
        return strategy

    def _derive_strategy(
        self, entry: TableEntry, where: Predicate
    ) -> tuple[str, Any]:
        """Choose an access path from scratch (cache miss / bypass).

        The decision depends only on the predicate's *shape*: which
        columns are bound, and how.  The second element names the index
        to use (``"__pk__"`` standing for the primary-key hash index),
        so execution never searches the index dictionaries again.
        """
        bindings = where.equality_bindings()
        if bindings:
            pk_columns = entry.schema.primary_key
            if all(column in bindings for column in pk_columns):
                return ("pk_lookup", "__pk__")
            for name, index in entry.hash_indexes.items():
                if all(column in bindings for column in index.columns):
                    return ("hash_index", name)
        if isinstance(where, IN):
            if entry.schema.primary_key == (where.column,):
                return ("in_index", "__pk__")
            for name, index in entry.hash_indexes.items():
                if index.columns == (where.column,):
                    return ("in_index", name)
        if isinstance(where, (LT, LE, GT, GE)):
            for name, ordered in entry.ordered_indexes.items():
                if ordered.column == where.column:
                    return ("range_scan", name)
        return ("full_scan", None)

    def _execute_strategy(
        self,
        entry: TableEntry,
        where: Predicate | None,
        strategy: tuple[str, Any],
    ) -> tuple[list[int] | None, dict[str, Any]]:
        """Run a chosen access path against the current predicate values."""
        access, index_name = strategy
        if access == "full_scan":
            return None, {"access": "full_scan", "columns": None}
        self.stats.record_index_lookup()
        if access == "pk_lookup":
            pk_columns = entry.schema.primary_key
            bindings = where.equality_bindings()
            key = tuple(bindings[column] for column in pk_columns)
            return sorted(entry.pk_index.lookup(key)), {
                "access": "pk_lookup",
                "columns": list(pk_columns),
            }
        if access == "hash_index":
            index = entry.hash_indexes[index_name]
            bindings = where.equality_bindings()
            key = tuple(bindings[column] for column in index.columns)
            return sorted(index.lookup(key)), {
                "access": "hash_index",
                "columns": list(index.columns),
            }
        if access == "in_index":
            index = (
                entry.pk_index
                if index_name == "__pk__"
                else entry.hash_indexes[index_name]
            )
            rowids: set[int] = set()
            for value in where.values:
                rowids.update(index.lookup((value,)))
            return sorted(rowids), {
                "access": "in_index",
                "columns": [where.column],
            }
        ordered = entry.ordered_indexes[index_name]
        info = {"access": "range_scan", "columns": [where.column]}
        if isinstance(where, LT):
            return (
                list(ordered.range(high=where.value, include_high=False)),
                info,
            )
        if isinstance(where, LE):
            return list(ordered.range(high=where.value)), info
        if isinstance(where, GT):
            return (
                list(ordered.range(low=where.value, include_low=False)),
                info,
            )
        return list(ordered.range(low=where.value)), info

    def explain(
        self, table: str, where: Predicate | None = None
    ) -> dict[str, Any]:
        """Describe how a SELECT over ``where`` would be executed.

        Returns ``access`` (``pk_lookup`` / ``hash_index`` / ``in_index``
        / ``range_scan`` / ``full_scan``), the ``columns`` the chosen
        index covers, and ``candidate_rows`` the path would touch before
        post-filtering.  ``update`` and ``delete`` locate their targets
        through the same planner, so an ``explain`` of their predicate
        describes their access path too.
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            if where is not None:
                entry.schema.validate_column_names(where.columns())
            rowids, info = self._plan_with_info(entry, where)
            info["candidate_rows"] = (
                len(entry.heap) if rowids is None else len(rowids)
            )
            return info

    # ------------------------------------------------------------------
    # DML — update
    # ------------------------------------------------------------------

    def update(
        self,
        table: str,
        where: Predicate | None,
        changes: dict[str, Any],
    ) -> int:
        """Update matching rows; returns the number of rows changed.

        Primary-key columns may not be updated (Exp-DB never rewrites
        experiment ids, and immutable keys keep the referential graph
        simple and cheap to maintain).
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            schema = entry.schema
            schema.validate_column_names(changes)
            if where is not None:
                schema.validate_column_names(where.columns())
            for column in changes:
                if column in schema.primary_key:
                    raise ConstraintError(
                        f"primary key column {schema.name}.{column} "
                        "cannot be updated"
                    )
            coerced = {
                name: coerce(
                    value, schema.column(name).type, f"{schema.name}.{name}"
                )
                for name, value in changes.items()
            }
            for name, value in coerced.items():
                if value is None and not schema.column(name).nullable:
                    raise NotNullError(
                        f"column {schema.name}.{name} may not be NULL"
                    )

            self.stats.record_read(table)  # locating targets is a read
            targets = self._locate_targets(entry, where)

            changed = 0
            with self._statement():
                for rowid in targets:
                    old_row = dict(entry.heap.get(rowid))
                    new_row = dict(old_row)
                    new_row.update(coerced)
                    if new_row == old_row:
                        continue
                    self._check_changed_foreign_keys(entry, old_row, new_row)
                    self._replace(entry, rowid, old_row, new_row)
                    self._txn.record(
                        UndoUpdate(table, rowid, old_row),
                        {
                            "op": "update",
                            "table": table,
                            "pk": list(
                                to_wire(new_row[c], schema.column(c).type)
                                for c in schema.primary_key
                            ),
                            "row": self._wire_row(entry, new_row),
                        },
                    )
                    self.stats.record_write(table)
                    self._notify_write(table)
                    changed += 1
        self._sync_pending()
        return changed

    def _locate_targets(
        self, entry: TableEntry, where: Predicate | None
    ) -> list[int]:
        """Rowids matching ``where`` — the planner-driven target scan
        shared by :meth:`update` and :meth:`delete` (same index
        selection as ``select``)."""
        targets: list[int] = []
        rowids = self._plan(entry, where)
        if rowids is None:
            self.stats.record_full_scan()
            self.stats.record_scan(len(entry.heap))
            for rowid, row in entry.heap.scan():
                if where is None or where.matches(row):
                    targets.append(rowid)
        else:
            self.stats.record_scan(len(rowids))
            for rowid in rowids:
                if where is None or where.matches(entry.heap.get(rowid)):
                    targets.append(rowid)
        return targets

    def _check_changed_foreign_keys(
        self,
        entry: TableEntry,
        old_row: dict[str, Any],
        new_row: dict[str, Any],
    ) -> None:
        for foreign in entry.schema.foreign_keys:
            old_key = tuple(old_row[column] for column in foreign.columns)
            new_key = tuple(new_row[column] for column in foreign.columns)
            if old_key == new_key or any(part is None for part in new_key):
                continue
            referenced = self._catalog.entry(foreign.ref_table)
            self.stats.record_read(foreign.ref_table)
            self.stats.record_index_lookup()
            if not referenced.pk_index.contains_key(new_key):
                raise ForeignKeyError(
                    f"{entry.schema.name}.{foreign.columns} = {new_key!r} has "
                    f"no match in {foreign.ref_table!r}"
                )

    def _replace(
        self,
        entry: TableEntry,
        rowid: int,
        old_row: dict[str, Any],
        new_row: dict[str, Any],
    ) -> None:
        entry.pk_index.remove(rowid, old_row)
        for index in entry.hash_indexes.values():
            index.remove(rowid, old_row)
        for ordered in entry.ordered_indexes.values():
            ordered.remove(rowid, old_row)
        entry.heap.replace(rowid, new_row)
        entry.pk_index.add(rowid, new_row)
        for index in entry.hash_indexes.values():
            index.add(rowid, new_row)
        for ordered in entry.ordered_indexes.values():
            ordered.add(rowid, new_row)

    # ------------------------------------------------------------------
    # DML — delete
    # ------------------------------------------------------------------

    def delete(self, table: str, where: Predicate | None) -> int:
        """Delete matching rows; returns the number of rows removed.

        Deleting a parent row cascades to inheritance children; foreign
        keys honour their declared ``on_delete`` action.
        """
        with self._mutex:
            entry = self._catalog.entry(table)
            if where is not None:
                entry.schema.validate_column_names(where.columns())
            self.stats.record_read(table)
            targets = self._locate_targets(entry, where)
            deleted = 0
            with self._statement():
                for rowid in targets:
                    if not entry.heap.contains(rowid):
                        continue  # already removed by a cascade
                    deleted += self._delete_row(entry, rowid)
        self._sync_pending()
        return deleted

    def _delete_row(self, entry: TableEntry, rowid: int) -> int:
        table = entry.schema.name
        row = dict(entry.heap.get(rowid))
        key = entry.pk_index.key_of(row)

        # Inheritance children share the PK: cascade to them first.
        deleted = 0
        for child_name in self._catalog.children(table):
            child = self._catalog.entry(child_name)
            self.stats.record_read(child_name)
            self.stats.record_index_lookup()
            for child_rowid in sorted(child.pk_index.lookup(key)):
                deleted += self._delete_row(child, child_rowid)

        # Referential actions.
        for referrer_name, foreign in self._catalog.referrers(table):
            referrer = self._catalog.entry(referrer_name)
            self.stats.record_read(referrer_name)
            matches = self._referencing_rowids(referrer, foreign, key)
            if not matches:
                continue
            if foreign.on_delete == "restrict":
                raise ForeignKeyError(
                    f"cannot delete {table!r} key {key!r}: referenced by "
                    f"{referrer_name!r}"
                )
            for referencing_rowid in matches:
                if referrer.heap.contains(referencing_rowid):
                    deleted += self._delete_row(referrer, referencing_rowid)

        if not entry.heap.contains(rowid):
            return deleted  # removed transitively by a cycle of cascades
        row = dict(entry.heap.get(rowid))
        entry.heap.delete(rowid)
        entry.pk_index.remove(rowid, row)
        for index in entry.hash_indexes.values():
            index.remove(rowid, row)
        for ordered in entry.ordered_indexes.values():
            ordered.remove(rowid, row)
        self._txn.record(
            UndoDelete(table, rowid, row),
            {
                "op": "delete",
                "table": table,
                "pk": [
                    to_wire(row[c], entry.schema.column(c).type)
                    for c in entry.schema.primary_key
                ],
            },
        )
        self.stats.record_write(table)
        self._notify_write(table)
        return deleted + 1

    def _referencing_rowids(
        self,
        referrer: TableEntry,
        foreign,
        key: tuple[Any, ...],
    ) -> list[int]:
        """Rowids in ``referrer`` whose FK columns equal ``key``."""
        for index in referrer.hash_indexes.values():
            if index.columns == tuple(foreign.columns):
                self.stats.record_index_lookup()
                return sorted(index.lookup(key))
        matches = []
        self.stats.record_scan(len(referrer.heap))
        for rowid, row in referrer.heap.scan():
            if tuple(row.get(column) for column in foreign.columns) == key:
                matches.append(rowid)
        return matches

    # ------------------------------------------------------------------
    # Undo / redo plumbing
    # ------------------------------------------------------------------

    def _apply_undo(self, undo: UndoEntry) -> None:
        entry = self._catalog.entry(undo.table)
        if isinstance(undo, UndoInsert):
            row = entry.heap.get(undo.rowid)
            entry.heap.delete(undo.rowid)
            entry.pk_index.remove(undo.rowid, row)
            for index in entry.hash_indexes.values():
                index.remove(undo.rowid, row)
            for ordered in entry.ordered_indexes.values():
                ordered.remove(undo.rowid, row)
        elif isinstance(undo, UndoUpdate):
            current = dict(entry.heap.get(undo.rowid))
            self._replace(entry, undo.rowid, current, dict(undo.old_row))
        elif isinstance(undo, UndoDelete):
            entry.heap.insert_at(undo.rowid, dict(undo.old_row))
            entry.pk_index.add(undo.rowid, undo.old_row)
            for index in entry.hash_indexes.values():
                index.add(undo.rowid, undo.old_row)
            for ordered in entry.ordered_indexes.values():
                ordered.add(undo.rowid, undo.old_row)
        else:  # pragma: no cover - closed union
            raise TransactionError(f"unknown undo entry {undo!r}")

    def _wire_row(self, entry: TableEntry, row: dict[str, Any]) -> dict[str, Any]:
        schema = entry.schema
        return {
            name: to_wire(value, schema.column(name).type)
            for name, value in row.items()
        }

    def _unwire_row(self, entry: TableEntry, row: dict[str, Any]) -> dict[str, Any]:
        schema = entry.schema
        return {
            name: from_wire(value, schema.column(name).type)
            for name, value in row.items()
        }

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _log(self, record: dict[str, Any]) -> None:
        """Buffer one WAL record; durability is settled in _sync_pending.

        The (sequence, start-time) pair is parked in a thread-local and
        only assigned *after* the append returns, so an injected crash
        inside ``append`` never leaves a stale pending commit behind.
        """
        if self._wal is not None and not self._recovering:
            t0 = time.perf_counter()
            seq = self._wal.append(record)
            self._pending_commit.seq = seq
            self._pending_commit.t0 = t0

    def _sync_pending(self) -> None:
        """Wait for this thread's buffered commit to become durable.

        Called *after* the engine mutex is released: under
        ``sync_policy="group"`` that is what lets commits from many
        threads share one fsync barrier instead of serialising their
        own behind the lock.  Also feeds the :attr:`on_commit` latency
        hook (append → durable, in milliseconds).
        """
        t0 = getattr(self._pending_commit, "t0", None)
        if t0 is None:
            return
        seq = self._pending_commit.seq
        self._pending_commit.t0 = None
        self._pending_commit.seq = None
        if self._wal is not None:
            self._wal.sync(seq)
        if self.on_commit is not None:
            try:
                self.on_commit((time.perf_counter() - t0) * 1000.0)
            except Exception:
                pass
        self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self) -> None:
        """Run a policy-triggered checkpoint after a commit is durable.

        Runs outside the statement mutex (we are past the durability
        barrier) and skips silently when another checkpoint is already
        in flight — the next commit will re-evaluate the policy.
        """
        policy = self.checkpoint_policy
        if policy is None or self._wal is None or self._recovering:
            return
        if not policy.due(self._wal.seg.records_since_checkpoint):
            return
        if not self._ckpt_lock.acquire(blocking=False):
            return
        try:
            self._checkpoint_online("policy")
        except TransactionError:
            pass  # a transaction is open on this thread; retry later
        finally:
            self._ckpt_lock.release()

    _recovering = False

    def _recover(self) -> None:
        """Replay checkpoint + tail to rebuild state after (re)opening."""
        assert self._wal is not None
        self._recovering = True
        t0 = time.perf_counter()
        replayed = 0
        try:
            for record in self._wal.replay():
                replayed += 1
                kind = record["type"]
                if kind == "create_table":
                    self._catalog.add_table(
                        TableSchema.from_description(record["schema"])
                    )
                elif kind == "drop_table":
                    self._catalog.remove_table(record["table"])
                elif kind == "create_index":
                    if record["ordered"]:
                        self.create_ordered_index(
                            record["table"], record["columns"][0]
                        )
                    else:
                        self.create_index(
                            record["table"], record["columns"], record["unique"]
                        )
                elif kind == "add_column":
                    from repro.minidb.schema import Column
                    from repro.minidb.types import ColumnType

                    spec = record["column"]
                    self.add_column(
                        record["table"],
                        Column(
                            name=spec["name"],
                            type=ColumnType(spec["type"]),
                            nullable=spec["nullable"],
                            default=spec["default"],
                        ),
                    )
                elif kind == "autoincrement":
                    entry = self._catalog.entry(record["table"])
                    entry.autoincrement_next = max(
                        entry.autoincrement_next, record["next"]
                    )
                elif kind == "txn":
                    for op in record["ops"]:
                        self._replay_op(op)
                else:
                    raise RecoveryError(f"unknown WAL record type {kind!r}")
        finally:
            self._recovering = False
        replay_shape = dict(self._wal.seg.last_replay)
        self.last_recovery = {
            "elapsed_ms": (time.perf_counter() - t0) * 1000.0,
            "records": replayed,
            **replay_shape,
        }
        self.stats.reset()

    def _replay_op(self, op: dict[str, Any]) -> None:
        entry = self._catalog.entry(op["table"])
        schema = entry.schema
        if op["op"] == "insert":
            row = self._unwire_row(entry, op["row"])
            self._store(entry, row)
            if schema.autoincrement is not None:
                value = row.get(schema.autoincrement)
                if value is not None and value >= entry.autoincrement_next:
                    entry.autoincrement_next = value + 1
            return
        key = tuple(
            from_wire(value, schema.column(column).type)
            for column, value in zip(schema.primary_key, op["pk"])
        )
        rowids = entry.pk_index.lookup(key)
        if not rowids:
            raise RecoveryError(
                f"WAL references missing row {key!r} in {op['table']!r}"
            )
        rowid = next(iter(rowids))
        if op["op"] == "update":
            old_row = dict(entry.heap.get(rowid))
            self._replace(entry, rowid, old_row, self._unwire_row(entry, op["row"]))
        elif op["op"] == "delete":
            row = dict(entry.heap.get(rowid))
            entry.heap.delete(rowid)
            entry.pk_index.remove(rowid, row)
            for index in entry.hash_indexes.values():
                index.remove(rowid, row)
            for ordered in entry.ordered_indexes.values():
                ordered.remove(rowid, row)
        else:
            raise RecoveryError(f"unknown WAL op {op['op']!r}")

    def checkpoint(self, reason: str = "manual") -> int:
        """Online checkpoint: snapshot state, compact the WAL behind it.

        Unlike the original stop-the-world rewrite (ROADMAP item 2),
        writers are paused only for the brief in-memory capture: the
        statement mutex is held while the WAL rotates to a fresh segment
        and the live rows are copied, then released — serialisation,
        the checkpoint-file fsync, the atomic manifest swap and the
        compaction of pre-watermark segments all run while appends
        continue into the new segment.  Recovery afterwards replays the
        checkpoint plus only the post-watermark tail, so recovery time
        stops growing with history.  Returns the number of records in
        the checkpoint snapshot.
        """
        if self._wal is None:
            raise TransactionError("checkpoint requires a WAL-backed database")
        with self._ckpt_lock:
            return self._checkpoint_online(reason)

    def _checkpoint_online(self, reason: str) -> int:
        """The checkpoint body; caller holds ``_ckpt_lock``."""
        assert self._wal is not None
        t0 = time.perf_counter()
        with self._mutex:
            self._forbid_in_transaction("checkpoint")
            watermark = self._wal.rotate()
            captured = self._capture_state_locked()
        count = self._wal.install_checkpoint(
            self._snapshot_records(captured), watermark
        )
        self.checkpoints += 1
        if self.checkpoint_policy is not None:
            self.checkpoint_policy.note_checkpoint()
        if self.on_checkpoint is not None:
            try:
                self.on_checkpoint(
                    {
                        "reason": reason,
                        "records": count,
                        "watermark": watermark,
                        "elapsed_ms": (time.perf_counter() - t0) * 1000.0,
                    }
                )
            except Exception:
                pass
        return count

    def _capture_state_locked(self) -> list[dict[str, Any]]:
        """Copy the catalog + all rows (cheap dict copies, under mutex)."""
        captured: list[dict[str, Any]] = []
        for name in self._catalog.table_names():
            entry = self._catalog.entry(name)
            captured.append(
                {
                    "name": name,
                    "schema": entry.schema.describe(),
                    "hash_indexes": [
                        (list(index.columns), index.unique)
                        for index in entry.hash_indexes.values()
                    ],
                    "ordered_indexes": [
                        ordered.column
                        for ordered in entry.ordered_indexes.values()
                    ],
                    "autoincrement_next": (
                        entry.autoincrement_next
                        if entry.schema.autoincrement is not None
                        else None
                    ),
                    "rows": [
                        self._wire_row(entry, row)
                        for __, row in entry.heap.scan()
                    ],
                }
            )
        return captured

    def _snapshot_records(
        self, captured: list[dict[str, Any]]
    ) -> Iterator[dict[str, Any]]:
        """Stream the captured state as replayable WAL records.

        Rows are batched into ``txn`` records of bounded size; replaying
        the sequence reproduces exactly the captured database.
        """
        for table in captured:
            yield {"type": "create_table", "schema": table["schema"]}
            for columns, unique in table["hash_indexes"]:
                yield {
                    "type": "create_index",
                    "table": table["name"],
                    "columns": columns,
                    "unique": unique,
                    "ordered": False,
                }
            for column in table["ordered_indexes"]:
                yield {
                    "type": "create_index",
                    "table": table["name"],
                    "columns": [column],
                    "unique": False,
                    "ordered": True,
                }
            if table["autoincrement_next"] is not None:
                yield {
                    "type": "autoincrement",
                    "table": table["name"],
                    "next": table["autoincrement_next"],
                }
        for table in captured:
            rows = table["rows"]
            for start in range(0, len(rows), _CHECKPOINT_BATCH_ROWS):
                yield {
                    "type": "txn",
                    "ops": [
                        {"op": "insert", "table": table["name"], "row": row}
                        for row in rows[start : start + _CHECKPOINT_BATCH_ROWS]
                    ],
                }

    def close(self) -> None:
        """Flush and release the WAL file handle."""
        if self._wal is not None:
            self._wal.close()


def _order_key(column: str):
    """Sort key for ORDER BY: NULLs first, then natural ordering."""

    def key(row: dict[str, Any]) -> tuple[bool, Any]:
        value = row[column]
        if value is None:
            return (False, 0)
        return (True, value)

    return key
