"""Read/write accounting for the database engine.

The paper's performance evaluation is expressed almost entirely in terms
of *database read and write accesses* ("a simple insert into an experiment
related table can trigger several database reads ...").  minidb therefore
counts every logical access at the statement level:

* each ``select`` (including the engine's own constraint-check lookups,
  which PostgreSQL would also execute as reads) increments ``reads``;
* each ``insert`` / ``update`` / ``delete`` statement increments
  ``writes`` once per affected table.

The perf layer adds planner accounting on top: ``full_scans`` counts
statements the planner could not serve from any index (the regression
signal for "this query should have been indexed"), and the plan-cache
hit/miss counters expose how often the per-(table, predicate-shape)
strategy cache saved a planning pass.

Counters are kept globally and per table, and can be snapshotted so the
benchmark harness can attribute accesses to a single request.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class StatsSnapshot:
    """An immutable view of the counters at one point in time."""

    reads: int
    writes: int
    rows_scanned: int
    index_lookups: int
    full_scans: int
    plan_cache_hits: int
    plan_cache_misses: int
    per_table_reads: dict[str, int]
    per_table_writes: dict[str, int]

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated since ``earlier``."""
        return StatsSnapshot(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            rows_scanned=self.rows_scanned - earlier.rows_scanned,
            index_lookups=self.index_lookups - earlier.index_lookups,
            full_scans=self.full_scans - earlier.full_scans,
            plan_cache_hits=self.plan_cache_hits - earlier.plan_cache_hits,
            plan_cache_misses=(
                self.plan_cache_misses - earlier.plan_cache_misses
            ),
            per_table_reads={
                table: count - earlier.per_table_reads.get(table, 0)
                for table, count in self.per_table_reads.items()
                if count - earlier.per_table_reads.get(table, 0)
            },
            per_table_writes={
                table: count - earlier.per_table_writes.get(table, 0)
                for table, count in self.per_table_writes.items()
                if count - earlier.per_table_writes.get(table, 0)
            },
        )


@dataclass
class DatabaseStats:
    """Mutable counters owned by one :class:`~repro.minidb.engine.Database`.

    Writers record under the statement mutex but MVCC snapshot reads
    record from outside it, so the counters carry their own small lock —
    the read-modify-write increments would otherwise lose updates under
    concurrent readers.  The lock is a leaf: nothing is acquired under
    it, and each critical section is a handful of integer bumps.
    """

    reads: int = 0
    writes: int = 0
    rows_scanned: int = 0
    index_lookups: int = 0
    full_scans: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    per_table_reads: dict[str, int] = field(default_factory=dict)
    per_table_writes: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_read(self, table: str) -> None:
        with self._lock:
            self.reads += 1
            self.per_table_reads[table] = self.per_table_reads.get(table, 0) + 1

    def record_write(self, table: str) -> None:
        with self._lock:
            self.writes += 1
            self.per_table_writes[table] = (
                self.per_table_writes.get(table, 0) + 1
            )

    def record_scan(self, row_count: int) -> None:
        with self._lock:
            self.rows_scanned += row_count

    def record_index_lookup(self) -> None:
        with self._lock:
            self.index_lookups += 1

    def record_full_scan(self) -> None:
        with self._lock:
            self.full_scans += 1

    def record_plan_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1

    def snapshot(self) -> StatsSnapshot:
        """Copy the current counters into an immutable snapshot."""
        with self._lock:
            return StatsSnapshot(
                reads=self.reads,
                writes=self.writes,
                rows_scanned=self.rows_scanned,
                index_lookups=self.index_lookups,
                full_scans=self.full_scans,
                plan_cache_hits=self.plan_cache_hits,
                plan_cache_misses=self.plan_cache_misses,
                per_table_reads=dict(self.per_table_reads),
                per_table_writes=dict(self.per_table_writes),
            )

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self.reads = 0
            self.writes = 0
            self.rows_scanned = 0
            self.index_lookups = 0
            self.full_scans = 0
            self.plan_cache_hits = 0
            self.plan_cache_misses = 0
            self.per_table_reads.clear()
            self.per_table_writes.clear()
