"""The system catalog: every table's schema, heap and indexes.

The catalog also maintains the referential graph needed for constraint
checking: for each table, which foreign keys point *at* it (referrers) and
which child tables inherit from it (Exp-DB-style table inheritance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError, UnknownTableError
from repro.minidb.index import HashIndex, OrderedIndex
from repro.minidb.schema import ForeignKey, TableSchema
from repro.minidb.table import Heap


@dataclass
class TableEntry:
    """Everything the engine keeps for one table.

    ``schema`` is always the *latest* schema (what writers validate
    against); ``schema_versions`` records every schema the table has had
    as ``(first version it applies from, schema)`` pairs, so a reader
    pinned before an ``add_column`` validates and projects against the
    schema its snapshot was taken under.
    """

    schema: TableSchema
    heap: Heap = field(default_factory=Heap)
    pk_index: HashIndex | None = None
    hash_indexes: dict[str, HashIndex] = field(default_factory=dict)
    ordered_indexes: dict[str, OrderedIndex] = field(default_factory=dict)
    autoincrement_next: int = 1

    def __post_init__(self) -> None:
        if self.pk_index is None:
            self.pk_index = HashIndex(self.schema.primary_key, unique=True)
        self.schema_versions: list[tuple[int, TableSchema]] = [(0, self.schema)]

    def schema_at(self, version: int) -> TableSchema:
        """The schema in effect for a reader pinned at ``version``."""
        schema = self.schema_versions[0][1]
        for min_version, candidate in self.schema_versions:
            if min_version > version:
                break
            schema = candidate
        return schema


class Catalog:
    """Name → :class:`TableEntry` mapping plus the referential graph."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        # table -> list of (referring table name, foreign key on it)
        self._referrers: dict[str, list[tuple[str, ForeignKey]]] = {}
        # parent table -> child table names (inheritance)
        self._children: dict[str, list[str]] = {}

    # -- lookup --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def entry(self, name: str) -> TableEntry:
        """The catalog entry for ``name`` (raises if unknown)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def table_names(self) -> list[str]:
        """All table names in creation order."""
        return list(self._tables)

    def referrers(self, name: str) -> list[tuple[str, ForeignKey]]:
        """Tables holding a foreign key that references ``name``."""
        return list(self._referrers.get(name, ()))

    def children(self, name: str) -> list[str]:
        """Child tables inheriting from ``name``."""
        return list(self._children.get(name, ()))

    # -- DDL -----------------------------------------------------------------

    def add_table(self, schema: TableSchema) -> TableEntry:
        """Register a new table, validating its referential links."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        if schema.parent is not None:
            parent_entry = self.entry(schema.parent)
            if parent_entry.schema.primary_key != schema.primary_key:
                raise SchemaError(
                    f"child table {schema.name!r} must declare the parent "
                    f"primary key {parent_entry.schema.primary_key}"
                )
        for foreign in schema.foreign_keys:
            referenced = self.entry(foreign.ref_table)
            if tuple(foreign.ref_columns) != referenced.schema.primary_key:
                raise SchemaError(
                    f"foreign key on {schema.name!r} must reference the "
                    f"primary key of {foreign.ref_table!r} "
                    f"({referenced.schema.primary_key})"
                )
        entry = TableEntry(schema=schema)
        self._tables[schema.name] = entry
        for foreign in schema.foreign_keys:
            self._referrers.setdefault(foreign.ref_table, []).append(
                (schema.name, foreign)
            )
        if schema.parent is not None:
            self._children.setdefault(schema.parent, []).append(schema.name)
        return entry

    def remove_table(self, name: str) -> None:
        """Unregister a table; fails while anything still references it."""
        entry = self.entry(name)
        remaining = [
            referrer
            for referrer, _ in self._referrers.get(name, ())
            if referrer != name and referrer in self._tables
        ]
        if remaining:
            raise SchemaError(
                f"cannot drop {name!r}: referenced by {sorted(set(remaining))}"
            )
        if self._children.get(name):
            raise SchemaError(
                f"cannot drop {name!r}: it has child tables "
                f"{self._children[name]}"
            )
        del self._tables[name]
        self._referrers.pop(name, None)
        for referrer_list in self._referrers.values():
            referrer_list[:] = [
                (referrer, foreign)
                for referrer, foreign in referrer_list
                if referrer != name
            ]
        if entry.schema.parent is not None:
            siblings = self._children.get(entry.schema.parent, [])
            if name in siblings:
                siblings.remove(name)
