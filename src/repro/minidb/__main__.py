"""Command-line front end: ``python -m repro.minidb``.

Operational tooling for a minidb WAL directory::

    python -m repro.minidb checkpoint lims.wal        # online checkpoint
    python -m repro.minidb info lims.wal              # layout + counters
    python -m repro.minidb verify lims.wal            # recovery dry run
    python -m repro.minidb verify lims.wal --salvage  # quarantine + keep

``checkpoint`` opens the database (replaying checkpoint + tail), takes
an online checkpoint, records the action in the ``WFAudit`` table when
the audit schema is installed (kind ``db.checkpoint``, the same row the
``/workflow/checkpoint`` servlet produces), and prints the resulting
layout — including ``db_checkpoint_total``, mirroring the metric name
scraped from ``/workflow/metrics``.

``verify`` is a recovery dry run: it replays the log and reports the
recovery accounting (elapsed, records, torn tails).  On corruption it
prints the structured diagnostic (segment, offset, expected/actual
checksum) and exits 2; with ``--salvage`` the corrupt suffix is
quarantined instead and the committed prefix is kept.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import RecoveryError, TransactionError
from repro.minidb.engine import Database


def _dump(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _audit_checkpoint(db: Database, by: str | None, records: int) -> bool:
    """Write the WFAudit row if the audit schema is installed."""
    from repro.obs.audit import AUDIT_TABLE

    if not db.has_table(AUDIT_TABLE):
        return False
    db.insert(
        AUDIT_TABLE,
        {
            "created": time.time(),
            "kind": "db.checkpoint",
            "actor": by,
            "event": "cli",
            "detail": json.dumps({"records": records}),
        },
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.minidb")
    sub = parser.add_subparsers(dest="command", required=True)

    checkpoint = sub.add_parser(
        "checkpoint", help="take an online checkpoint and compact the WAL"
    )
    checkpoint.add_argument("path", help="WAL base path (e.g. lims.wal)")
    checkpoint.add_argument(
        "--by", default=None, help="operator name for the audit trail"
    )

    info = sub.add_parser("info", help="print the WAL layout and counters")
    info.add_argument("path")

    verify = sub.add_parser(
        "verify", help="recovery dry run; non-zero exit on corruption"
    )
    verify.add_argument("path")
    verify.add_argument(
        "--salvage", action="store_true",
        help="quarantine a corrupt suffix and keep the committed prefix",
    )

    args = parser.parse_args(argv)

    if args.command == "checkpoint":
        db = Database(args.path)
        try:
            records = db.checkpoint(reason="cli")
        except TransactionError as error:
            print(f"checkpoint refused: {error}", file=sys.stderr)
            db.close()
            return 1
        audited = _audit_checkpoint(db, args.by, records)
        _dump(
            {
                "checkpointed": True,
                "records": records,
                "db_checkpoint_total": db.checkpoints,
                "audited": audited,
                "wal": db.wal_info(),
            }
        )
        db.close()
        return 0

    if args.command == "info":
        db = Database(args.path)
        _dump(
            {
                "tables": db.tables(),
                "wal": db.wal_info(),
                "mvcc": db.mvcc_info(),
            }
        )
        db.close()
        return 0

    # verify
    try:
        db = Database(args.path, salvage=args.salvage)
    except RecoveryError as error:
        _dump({"ok": False, "error": str(error), "diagnostic": error.detail()})
        return 2
    wal = db.wal_info()
    _dump(
        {
            "ok": True,
            "recovery": wal.get("last_recovery"),
            "torn_tails": wal.get("torn_tails"),
            "salvaged": wal.get("salvaged"),
            "segments": wal.get("segments"),
        }
    )
    db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
