"""Write-ahead log for minidb.

Each committed transaction (and each DDL statement) is appended to a
JSON-lines file, flushed and fsync'd before the commit returns.  On open,
a Database replays the log to rebuild its state — this is also how crash
recovery is exercised in the tests: kill the Database object, reopen the
file, and the committed (and only the committed) state reappears.

Record shapes::

    {"type": "create_table", "schema": {...}}
    {"type": "drop_table", "table": "PCR"}
    {"type": "create_index", "table": "...", "columns": [...],
     "unique": false, "ordered": false}
    {"type": "txn", "ops": [{"op": "insert"|"update"|"delete", ...}, ...]}

A torn trailing line (simulated crash mid-append) is tolerated and
discarded; corruption anywhere else raises :class:`RecoveryError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.resilience.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.faults import FaultPlan


class WriteAheadLog:
    """Durable JSON-lines log with atomic append semantics."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None
        #: Records durably appended through this handle's lifetime.
        self.appended = 0
        #: Optional fault-injection plan (``repro.resilience.faults``).
        self.faults: "FaultPlan | None" = None

    # -- replay -------------------------------------------------------------

    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every intact record currently in the log."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for line_number, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if line_number == len(lines) - 1:
                    # Torn final write from a crash: ignore, the
                    # transaction never committed.
                    return
                raise RecoveryError(
                    f"corrupt WAL record at {self.path}:{line_number + 1}"
                ) from None
            if not isinstance(record, dict) or "type" not in record:
                raise RecoveryError(
                    f"malformed WAL record at {self.path}:{line_number + 1}"
                )
            yield record

    # -- append -------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record.

        Fault point ``wal.append`` (context: ``record_type``): ``crash``
        dies before anything hits the file — the transaction never
        committed; ``corrupt`` leaves a torn half-line and then dies,
        exactly the state a power cut mid-``write`` produces (replay
        discards it when final, refuses the log otherwise).  Fault point
        ``wal.fsync``: ``crash`` dies after the write but before the
        fsync returned — the record may or may not survive; replay
        treats whatever is on disk as the truth.
        """
        action = fire(self.faults, "wal.append", record_type=record.get("type"))
        if action == "drop":
            # A lying disk: the caller believes the record is durable.
            return
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        line = json.dumps(record, separators=(",", ":"))
        if action == "corrupt":
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise RecoveryError(
                f"injected torn write at {self.path} "
                f"(record type {record.get('type')!r})"
            )
        self._handle.write(line + "\n")
        self._handle.flush()
        fire(self.faults, "wal.fsync", record_type=record.get("type"))
        os.fsync(self._handle.fileno())
        self.appended += 1

    def size_bytes(self) -> int:
        """Current on-disk size of the log (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def close(self) -> None:
        """Release the file handle (reopened lazily on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def truncate(self) -> None:
        """Erase the log (used after a checkpoint rewrite)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    def rewrite(self, records: Iterator[dict[str, Any]] | list) -> None:
        """Atomically replace the log with a fresh record sequence.

        Used by checkpointing: the new log is written to a side file,
        fsync'd, then swapped in with ``os.replace`` so a crash during
        the rewrite leaves either the old or the new log intact — never
        a torn mixture.
        """
        self.close()
        side_path = self.path.with_suffix(self.path.suffix + ".ckpt")
        with side_path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(side_path, self.path)
