"""Write-ahead log for minidb.

Each committed transaction (and each DDL statement) is appended to a
JSON-lines file as one record.  When the record becomes *durable* is
governed by the sync policy:

``always``
    flush + fsync before :meth:`append` returns — the original
    one-fsync-per-record discipline, and the default.
``group``
    :meth:`append` only buffers (write + flush); durability is deferred
    to :meth:`sync`, where concurrent committers share one fsync via
    :class:`repro.durable.GroupCommitter` (group commit).  The commit
    still does not return to its caller until its record is durable —
    only the *per-record* fsync is gone, not the guarantee.
``off``
    flush only, never fsync — for benchmarks and throwaway databases;
    a crash may lose the tail of the log but never corrupts it.

On open, a Database replays the log to rebuild its state — this is also
how crash recovery is exercised in the tests: kill the Database object,
reopen the file, and the committed (and only the committed) state
reappears.  Under every policy the on-disk log is a *prefix* of the
committed record sequence (plus at most one torn final line).

Record shapes::

    {"type": "create_table", "schema": {...}}
    {"type": "drop_table", "table": "PCR"}
    {"type": "create_index", "table": "...", "columns": [...],
     "unique": false, "ordered": false}
    {"type": "txn", "ops": [{"op": "insert"|"update"|"delete", ...}, ...]}

A torn trailing line (simulated crash mid-append) is tolerated and
discarded; corruption anywhere else raises :class:`RecoveryError`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from typing import TYPE_CHECKING

from repro.durable import SYNC_POLICIES, GroupCommitter, validate_sync_policy
from repro.errors import RecoveryError
from repro.resilience.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.clock import Clock
    from repro.resilience.faults import FaultPlan

__all__ = ["SYNC_POLICIES", "WriteAheadLog"]

#: Sequence returned by ``always``-mode appends: the record is buffered
#: and its fsync is owed to :meth:`WriteAheadLog.sync` (any non-``None``
#: value triggers it; the sentinel just reads distinctly in traces).
_ALWAYS_SEQ = -1


class WriteAheadLog:
    """Durable JSON-lines log with atomic append semantics."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        clock: "Clock | None" = None,
    ) -> None:
        validate_sync_policy(sync_policy)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync_policy = sync_policy
        self._handle = None
        #: Serialises buffered writes (appends may come from many
        #: threads once the engine releases its mutex before syncing).
        self._write_lock = threading.Lock()
        #: Shared fsync barrier for ``sync_policy="group"``.
        self.group = GroupCommitter(window_s=group_window_s, clock=clock)
        #: ``always``-mode appends buffered but not yet fsync'd (the
        #: fsync is deferred to :meth:`sync` so it never runs under the
        #: engine's statement mutex; :meth:`close` drains it).
        self._always_pending = 0
        #: Records appended (buffered) through this handle's lifetime.
        self.appended = 0
        #: fsync barriers issued through this handle's lifetime.
        self.fsyncs = 0
        #: Cumulative wall time spent inside fsync barriers (ms) —
        #: the raw material for commit-stage latency attribution.
        self.fsync_wait_ms = 0.0
        #: Optional fault-injection plan (``repro.resilience.faults``).
        self.faults: "FaultPlan | None" = None

    # -- replay -------------------------------------------------------------

    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every intact record currently in the log."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for line_number, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if line_number == len(lines) - 1:
                    # Torn final write from a crash: ignore, the
                    # transaction never committed.
                    return
                raise RecoveryError(
                    f"corrupt WAL record at {self.path}:{line_number + 1}"
                ) from None
            if not isinstance(record, dict) or "type" not in record:
                raise RecoveryError(
                    f"malformed WAL record at {self.path}:{line_number + 1}"
                )
            yield record

    # -- append -------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int | None:
        """Append one record; buffered now, durable per the sync policy.

        Under ``always`` and ``group`` the record is written and flushed
        here, and the returned sequence number must be handed to
        :meth:`sync`, which performs (``always``) or waits for
        (``group``) the fsync.  Deferring the ``always``-mode fsync to
        :meth:`sync` keeps the blocking syscall out of the engine's
        statement mutex — every engine/broker commit path releases its
        lock and then syncs, so the per-record durability guarantee is
        unchanged (the commit still does not return to its caller until
        its record is on disk).  Under ``off`` the record is flushed,
        never fsync'd, and ``None`` is returned.

        Fault point ``wal.append`` (context: ``record_type``): ``crash``
        dies before anything hits the file — the transaction never
        committed; ``corrupt`` leaves a torn half-line and then dies,
        exactly the state a power cut mid-``write`` produces (replay
        discards it when final, refuses the log otherwise).  Fault point
        ``wal.fsync``: ``crash`` dies after the write but before the
        fsync returned — the record may or may not survive; replay
        treats whatever is on disk as the truth.  In ``group`` mode the
        point fires in the barrier leader, inside :meth:`sync`.
        """
        with self._write_lock:
            action = fire(
                self.faults, "wal.append", record_type=record.get("type")
            )
            if action == "drop":
                # A lying disk: the caller believes the record is durable.
                return None
            if self._handle is None:
                self._handle = self.path.open("a", encoding="utf-8")
            line = json.dumps(record, separators=(",", ":"))
            if action == "corrupt":
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                # conlint: allow=CC003 -- torn-write injection must hit
                # the disk before the simulated death, or replay would
                # never see the half-line this fault exists to produce.
                os.fsync(self._handle.fileno())
                raise RecoveryError(
                    f"injected torn write at {self.path} "
                    f"(record type {record.get('type')!r})"
                )
            self._handle.write(line + "\n")
            self._handle.flush()
            self.appended += 1
            if self.sync_policy == "group":
                return self.group.note_write()
            if self.sync_policy == "always":
                self._always_pending += 1
        if self.sync_policy == "always":
            # The fault still fires in the appending thread, with the
            # record type in context, exactly where the fsync used to
            # run — a "crash" here leaves the record buffered but not
            # yet fsync'd, the same torn state as before the deferral.
            fire(self.faults, "wal.fsync", record_type=record.get("type"))
            return _ALWAYS_SEQ
        return None

    def sync(self, seq: int | None) -> None:
        """Make the append that returned ``seq`` durable.

        Under ``always`` this performs the record's own fsync (deferred
        out of :meth:`append` so callers can release their locks first);
        under ``group`` it waits on — or leads — the shared barrier.  A
        no-op for ``off`` (never durable) and for ``seq=None`` (nothing
        was buffered).  Many threads may call this concurrently; in
        group mode one of them fsyncs for all.
        """
        if seq is None:
            return
        if self.sync_policy == "always":
            self._always_fsync()
            return
        if self.sync_policy == "group":
            self.group.wait_durable(seq, self._sync_barrier)

    def _always_fsync(self) -> None:
        """One per-record fsync (``always`` policy), outside all locks."""
        with self._write_lock:
            handle = self._handle
            self._always_pending = 0
        if handle is None:
            return
        t0 = time.perf_counter()
        os.fsync(handle.fileno())
        self.fsync_wait_ms += (time.perf_counter() - t0) * 1000.0
        self.fsyncs += 1

    def _sync_barrier(self) -> None:
        """One fsync covering every buffered append (leader only)."""
        fire(self.faults, "wal.fsync", record_type="group")
        handle = self._handle
        t0 = time.perf_counter()
        if handle is not None:
            os.fsync(handle.fileno())
        self.fsync_wait_ms += (time.perf_counter() - t0) * 1000.0
        self.fsyncs += 1

    def flush_pending(self) -> None:
        """Drain any un-synced appends (checkpoint/close)."""
        if self.sync_policy == "always":
            if self._always_pending:
                self._always_fsync()
            return
        if self.sync_policy != "group":
            return
        if self.group.pending() > 0:
            self.group.wait_durable(self.group.latest(), self._sync_barrier)

    def size_bytes(self) -> int:
        """Current on-disk size of the log (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def close(self) -> None:
        """Release the file handle (reopened lazily on next append).

        Any still-buffered appends (a group-mode batch, or an
        ``always``-mode record whose deferred fsync was never claimed)
        are fsync'd first — a clean close never loses acknowledged work.
        """
        try:
            if self._handle is not None:
                self.flush_pending()
        finally:
            with self._write_lock:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None

    def truncate(self) -> None:
        """Erase the log (used after a checkpoint rewrite)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    def rewrite(self, records: Iterator[dict[str, Any]] | list) -> None:
        """Atomically replace the log with a fresh record sequence.

        Used by checkpointing: the new log is written to a side file,
        fsync'd, then swapped in with ``os.replace`` so a crash during
        the rewrite leaves either the old or the new log intact — never
        a torn mixture.
        """
        self.close()
        side_path = self.path.with_suffix(self.path.suffix + ".ckpt")
        with side_path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(side_path, self.path)
