"""Write-ahead log for minidb (segmented, checksummed — durability v2).

Each committed transaction (and each DDL statement) is appended as one
checksummed frame to the active segment of a
:class:`repro.seglog.SegmentedLog`; see that module for the on-disk
layout (manifest + numbered segments + checkpoint side files).  When the
record becomes *durable* is governed by the sync policy:

``always``
    flush + fsync before the commit returns — the original
    one-fsync-per-record discipline, and the default.
``group``
    :meth:`append` only buffers (write + flush); durability is deferred
    to :meth:`sync`, where concurrent committers share one fsync via
    :class:`repro.durable.GroupCommitter` (group commit).  The commit
    still does not return to its caller until its record is durable —
    only the *per-record* fsync is gone, not the guarantee.
``off``
    flush only, never fsync — for benchmarks and throwaway databases;
    a crash may lose the tail of the log but never corrupts it.

On open, a Database replays checkpoint + tail to rebuild its state —
this is also how crash recovery is exercised in the tests: kill the
Database object, reopen the path, and the committed (and only the
committed) state reappears.  Under every policy the on-disk log is a
*prefix* of the committed record sequence (plus at most one torn final
line, which replay truncates away).

Record shapes::

    {"type": "create_table", "schema": {...}}
    {"type": "drop_table", "table": "PCR"}
    {"type": "create_index", "table": "...", "columns": [...],
     "unique": false, "ordered": false}
    {"type": "txn", "ops": [{"op": "insert"|"update"|"delete", ...}, ...]}

A torn trailing frame (simulated crash mid-append) is tolerated and
discarded; a checksum mismatch or framing break anywhere else raises
:class:`RecoveryError` with structured diagnostics (segment, offset,
expected/actual CRC) — or, with ``salvage=True``, quarantines the
corrupt suffix and recovers the committed prefix.  A v1 single-file
JSON-lines log found at the base path is adopted into segment 1 on open.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Iterator

from typing import TYPE_CHECKING

from repro.durable import SYNC_POLICIES, GroupCommitter, validate_sync_policy
from repro.errors import RecoveryError
from repro.resilience.faults import fire
from repro.seglog import DEFAULT_SEGMENT_BYTES, SegmentedLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.clock import Clock
    from repro.resilience.faults import FaultPlan

__all__ = ["SYNC_POLICIES", "WriteAheadLog"]

#: Sequence returned by ``always``-mode appends: the record is buffered
#: and its fsync is owed to :meth:`WriteAheadLog.sync` (any non-``None``
#: value triggers it; the sentinel just reads distinctly in traces).
_ALWAYS_SEQ = -1


class WriteAheadLog:
    """Durable segmented log with atomic append semantics."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        sync_policy: str = "always",
        group_window_s: float = 0.0,
        clock: "Clock | None" = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_max_records: int | None = None,
        salvage: bool = False,
    ) -> None:
        validate_sync_policy(sync_policy)
        self.path = Path(path)
        self.sync_policy = sync_policy
        #: The segment/manifest/checkpoint machinery (shared with the
        #: broker journal).  Also serves as the write serialiser: every
        #: append runs under its state lock.
        self.seg = SegmentedLog(
            self.path,
            error_cls=RecoveryError,
            prefix="wal",
            segment_max_bytes=segment_max_bytes,
            segment_max_records=segment_max_records,
            salvage=salvage,
        )
        #: Shared fsync barrier for ``sync_policy="group"``.
        self.group = GroupCommitter(window_s=group_window_s, clock=clock)
        #: ``always``-mode appends buffered but not yet fsync'd (the
        #: fsync is deferred to :meth:`sync` so it never runs under the
        #: engine's statement mutex; :meth:`close` drains it).
        self._always_pending = 0
        #: Records appended (buffered) through this handle's lifetime.
        self.appended = 0
        #: fsync barriers issued through this handle's lifetime.
        self.fsyncs = 0
        #: Cumulative wall time spent inside fsync barriers (ms) —
        #: the raw material for commit-stage latency attribution.
        self.fsync_wait_ms = 0.0

    @property
    def faults(self) -> "FaultPlan | None":
        """Optional fault-injection plan (``repro.resilience.faults``)."""
        return self.seg.faults

    @faults.setter
    def faults(self, plan: "FaultPlan | None") -> None:
        self.seg.faults = plan

    def tail_path(self) -> Path | None:
        """The active segment file (tests poke torn/corrupt bytes here)."""
        return self.seg.tail_path()

    # -- replay -------------------------------------------------------------

    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every intact record: checkpoint frames, then the tail.

        Streams frame-by-frame — O(1) memory however long the history
        (pinned by ``tests/minidb/test_segmented_wal.py``).
        """
        for record in self.seg.replay():
            if not isinstance(record, dict) or "type" not in record:
                raise RecoveryError(
                    f"malformed WAL record in {self.path} (not a typed dict)"
                )
            yield record

    # -- append -------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int | None:
        """Append one record; buffered now, durable per the sync policy.

        Under ``always`` and ``group`` the record is written and flushed
        here, and the returned sequence number must be handed to
        :meth:`sync`, which performs (``always``) or waits for
        (``group``) the fsync.  Deferring the ``always``-mode fsync to
        :meth:`sync` keeps the blocking syscall out of the engine's
        statement mutex — every engine/broker commit path releases its
        lock and then syncs, so the per-record durability guarantee is
        unchanged (the commit still does not return to its caller until
        its record is on disk).  Under ``off`` the record is flushed,
        never fsync'd, and ``None`` is returned.

        Fault point ``wal.append`` (context: ``record_type``): ``crash``
        dies before anything hits the file — the transaction never
        committed; ``corrupt`` leaves a torn half-frame and then dies,
        exactly the state a power cut mid-``write`` produces (replay
        discards it when final, refuses the log otherwise).  Fault point
        ``wal.fsync``: ``crash`` dies after the write but before the
        fsync returned — the record may or may not survive; replay
        treats whatever is on disk as the truth.  In ``group`` mode the
        point fires in the barrier leader, inside :meth:`sync`.
        Rotation (fault point ``wal.rotate``) happens inside the append
        when the active segment crosses its threshold.
        """
        action = fire(
            self.faults, "wal.append", record_type=record.get("type")
        )
        if action == "drop":
            # A lying disk: the caller believes the record is durable.
            return None
        if action == "corrupt":
            self.seg.write_torn(record)
            raise RecoveryError(
                f"injected torn write at {self.path} "
                f"(record type {record.get('type')!r})"
            )
        self.seg.write_frame(record)
        self.appended += 1
        if self.sync_policy == "group":
            return self.group.note_write()
        if self.sync_policy == "always":
            self._always_pending += 1
            # The fault still fires in the appending thread, with the
            # record type in context, exactly where the fsync used to
            # run — a "crash" here leaves the record buffered but not
            # yet fsync'd, the same torn state as before the deferral.
            fire(self.faults, "wal.fsync", record_type=record.get("type"))
            return _ALWAYS_SEQ
        return None

    def sync(self, seq: int | None) -> None:
        """Make the append that returned ``seq`` durable.

        Under ``always`` this performs the record's own fsync (deferred
        out of :meth:`append` so callers can release their locks first);
        under ``group`` it waits on — or leads — the shared barrier.  A
        no-op for ``off`` (never durable) and for ``seq=None`` (nothing
        was buffered).  Many threads may call this concurrently; in
        group mode one of them fsyncs for all.
        """
        if seq is None:
            return
        if self.sync_policy == "always":
            self._always_fsync()
            return
        if self.sync_policy == "group":
            self.group.wait_durable(seq, self._sync_barrier)

    def _always_fsync(self) -> None:
        """One per-record fsync (``always`` policy), outside all locks."""
        self._always_pending = 0
        t0 = time.perf_counter()
        self.seg.fsync_active()
        self.fsync_wait_ms += (time.perf_counter() - t0) * 1000.0
        self.fsyncs += 1

    def _sync_barrier(self) -> None:
        """One fsync covering every buffered append (leader only).

        Safe across a rotation: the retiring segment was fsync'd before
        the handle switched, so fsyncing whatever handle is active now
        covers every record written so far.
        """
        fire(self.faults, "wal.fsync", record_type="group")
        t0 = time.perf_counter()
        self.seg.fsync_active()
        self.fsync_wait_ms += (time.perf_counter() - t0) * 1000.0
        self.fsyncs += 1

    def flush_pending(self) -> None:
        """Drain any un-synced appends (checkpoint/close)."""
        if self.sync_policy == "always":
            if self._always_pending:
                self._always_fsync()
            return
        if self.sync_policy != "group":
            return
        if self.group.pending() > 0:
            self.group.wait_durable(self.group.latest(), self._sync_barrier)

    # -- rotation / checkpoint ----------------------------------------------

    def rotate(self) -> int:
        """Seal the active segment; returns the checkpoint watermark."""
        return self.seg.rotate()

    def install_checkpoint(
        self, records: Iterator[dict[str, Any]] | list, watermark: int
    ) -> int:
        """Publish ``records`` as the checkpoint at ``watermark``.

        Segments at or below the watermark are compacted away; recovery
        becomes checkpoint + tail replay.  Fault points:
        ``checkpoint.write`` (before the side file is written),
        ``checkpoint.swap`` (after the side file is durable, before the
        manifest publishes it), ``wal.compact`` (before old segments are
        unlinked) — a crash at any of them recovers to exactly the old
        or the new organisation of the same committed state.
        """
        return self.seg.install_checkpoint(
            records,
            watermark,
            write_point="checkpoint.write",
            swap_point="checkpoint.swap",
            gc_point="wal.compact",
        )

    def size_bytes(self) -> int:
        """Current on-disk size of the log (0 when it does not exist)."""
        return self.seg.size_bytes()

    def info(self) -> dict[str, Any]:
        """Segment-level layout and counters (manifest, rotation, GC)."""
        return self.seg.info()

    def close(self) -> None:
        """Release file handles (reopened lazily on next append).

        Any still-buffered appends (a group-mode batch, or an
        ``always``-mode record whose deferred fsync was never claimed)
        are fsync'd first — a clean close never loses acknowledged work.
        """
        try:
            if self.seg.handle is not None:
                self.flush_pending()
        finally:
            self.seg.close()
