"""Structured query predicates for minidb.

Exp-DB's web interface lets a user supply "search criteria" against one
table; the workflow engine issues the same kind of criteria internally when
it checks task eligibility.  Predicates are small composable trees built
with module-level constructors::

    from repro.minidb import EQ, GT, AND

    criteria = AND(EQ("project_id", 7), GT("concentration", 0.8))
    rows = db.select("Experiment", criteria)

Each predicate can report the columns it touches (for validation), test a
row, and — for the engine's planner — expose equality bindings usable with
a hash index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence


class Predicate:
    """Base class for all predicates."""

    def matches(self, row: dict[str, Any]) -> bool:
        """Whether ``row`` satisfies the predicate."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names referenced by the predicate tree."""
        raise NotImplementedError

    def equality_bindings(self) -> dict[str, Any]:
        """Column→value pairs that must hold with equality for a match.

        Only bindings that are *necessary* (conjunctive) are returned, so
        the planner may serve the query from a hash index on any subset of
        them and post-filter with :meth:`matches`.
        """
        return {}

    def shape(self) -> tuple:
        """A hashable key identifying the predicate's *structure*.

        Two predicates share a shape when they differ only in compared
        values — ``EQ("project_id", 3)`` and ``EQ("project_id", 9)``
        collapse to the same shape.  The planner's access-path choice
        depends only on the shape (which columns are constrained, and
        how), so the engine caches its strategy per (table, shape).
        """
        raise NotImplementedError

    # Composition sugar ----------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return AND(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return OR(self, other)

    def __invert__(self) -> "Predicate":
        return NOT(self)


def _is_comparable(left: Any, right: Any) -> bool:
    """Whether ``left`` and ``right`` can be ordered against each other.

    SQL comparisons with NULL are never true; minidb mirrors that by
    treating ``None`` on either side as incomparable.
    """
    if left is None or right is None:
        return False
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)


@dataclass(frozen=True)
class _Comparison(Predicate):
    column: str
    value: Any

    def columns(self) -> set[str]:
        return {self.column}

    def shape(self) -> tuple:
        return (type(self).__name__, self.column)


class EQ(_Comparison):
    """``column == value`` (never true against NULL)."""

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        if current is None or self.value is None:
            return False
        return current == self.value

    def equality_bindings(self) -> dict[str, Any]:
        return {self.column: self.value}


class NE(_Comparison):
    """``column != value`` (never true against NULL)."""

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        if current is None or self.value is None:
            return False
        return current != self.value


class LT(_Comparison):
    """``column < value``."""

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        return _is_comparable(current, self.value) and current < self.value


class LE(_Comparison):
    """``column <= value``."""

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        return _is_comparable(current, self.value) and current <= self.value


class GT(_Comparison):
    """``column > value``."""

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        return _is_comparable(current, self.value) and current > self.value


class GE(_Comparison):
    """``column >= value``."""

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        return _is_comparable(current, self.value) and current >= self.value


@dataclass(frozen=True)
class IN(Predicate):
    """``column IN values``."""

    column: str
    values: tuple[Any, ...]

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        if current is None:
            return False
        return current in self.values

    def columns(self) -> set[str]:
        return {self.column}

    def shape(self) -> tuple:
        return ("IN", self.column)


@dataclass(frozen=True)
class LIKE(Predicate):
    """SQL-style pattern match where ``%`` matches any run of characters.

    Only TEXT values match; NULL and non-string values never do.
    """

    column: str
    pattern: str

    def matches(self, row: dict[str, Any]) -> bool:
        current = row.get(self.column)
        if not isinstance(current, str):
            return False
        return _like(current, self.pattern)

    def columns(self) -> set[str]:
        return {self.column}

    def shape(self) -> tuple:
        return ("LIKE", self.column)


def _like(text: str, pattern: str) -> bool:
    """Match ``text`` against a ``%``-wildcard pattern (greedy backtracking)."""
    parts = pattern.split("%")
    if len(parts) == 1:
        return text == pattern
    head, *middle, tail = parts
    if not text.startswith(head):
        return False
    if not text.endswith(tail):
        return False
    position = len(head)
    end_limit = len(text) - len(tail)
    for part in middle:
        if not part:
            continue
        found = text.find(part, position, end_limit)
        if found == -1:
            return False
        position = found + len(part)
    return position <= end_limit


@dataclass(frozen=True)
class IS_NULL(Predicate):
    """``column IS NULL``."""

    column: str

    def matches(self, row: dict[str, Any]) -> bool:
        return row.get(self.column) is None

    def columns(self) -> set[str]:
        return {self.column}

    def shape(self) -> tuple:
        return ("IS_NULL", self.column)


class AND(Predicate):
    """Conjunction of two or more predicates."""

    def __init__(self, *operands: Predicate) -> None:
        if len(operands) < 2:
            raise ValueError("AND needs at least two operands")
        self.operands = tuple(operands)

    def matches(self, row: dict[str, Any]) -> bool:
        return all(op.matches(row) for op in self.operands)

    def columns(self) -> set[str]:
        return set().union(*(op.columns() for op in self.operands))

    def equality_bindings(self) -> dict[str, Any]:
        bindings: dict[str, Any] = {}
        for op in self.operands:
            for column, value in op.equality_bindings().items():
                # Conflicting equality constraints can never match, but
                # correctness is preserved by just keeping the first one:
                # the post-filter rejects every row anyway.
                bindings.setdefault(column, value)
        return bindings

    def shape(self) -> tuple:
        return ("AND", tuple(op.shape() for op in self.operands))

    def __repr__(self) -> str:
        return f"AND{self.operands!r}"


class OR(Predicate):
    """Disjunction of two or more predicates."""

    def __init__(self, *operands: Predicate) -> None:
        if len(operands) < 2:
            raise ValueError("OR needs at least two operands")
        self.operands = tuple(operands)

    def matches(self, row: dict[str, Any]) -> bool:
        return any(op.matches(row) for op in self.operands)

    def columns(self) -> set[str]:
        return set().union(*(op.columns() for op in self.operands))

    def shape(self) -> tuple:
        return ("OR", tuple(op.shape() for op in self.operands))

    def __repr__(self) -> str:
        return f"OR{self.operands!r}"


@dataclass(frozen=True)
class NOT(Predicate):
    """Negation. NULL semantics: ``NOT`` of a non-match is a match."""

    operand: Predicate

    def matches(self, row: dict[str, Any]) -> bool:
        return not self.operand.matches(row)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def shape(self) -> tuple:
        return ("NOT", self.operand.shape())


def by_key(key_columns: Sequence[str], key_values: Sequence[Any]) -> Predicate:
    """Build an equality predicate over a (composite) key."""
    pairs: Iterator[Predicate] = (
        EQ(column, value) for column, value in zip(key_columns, key_values)
    )
    predicates = list(pairs)
    if not predicates:
        raise ValueError("by_key needs at least one column")
    if len(predicates) == 1:
        return predicates[0]
    return AND(*predicates)
