"""Multi-version concurrency control for minidb.

The engine keeps every row as an immutable *version chain* (see
:mod:`repro.minidb.table`); this module owns the other half of the MVCC
protocol: which committed version a reader is allowed to see, and when
superseded row images and their index entries may be reclaimed.

The contract, in one paragraph: writers mutate chains under the engine's
statement mutex and, at commit, stamp every touched chain with the next
version number before :meth:`SnapshotManager.publish` makes that number
visible.  Readers call :meth:`SnapshotManager.pin` — O(1) under a tiny
leaf lock, never the statement mutex — to freeze a ``(version, epoch)``
pair, resolve rows against it lock-free, and :meth:`unpin` when done.
Index maintenance for superseded images is *deferred*: each commit
enqueues reclamation records, and :meth:`collect` (run by writers, under
the statement mutex) applies them only once no reader pins a version old
enough to still need the superseded image.

Visibility rule (:func:`visible_row`): a chain entry is visible to a
reader when it is committed at or below the reader's pinned version, or
when it belongs to the reader's own open transaction (read-your-writes
overlay).  Chains are newest-first, so the first visible entry wins; a
``None`` row image is a tombstone (the row is deleted at that version).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

__all__ = ["SnapshotManager", "visible_row"]


def visible_row(
    chain: tuple | None, version: int, token: Any = None
) -> dict[str, Any] | None:
    """Resolve a version chain to the row visible at ``(version, token)``.

    ``chain`` is the newest-first linked tuple ``(version, token, row,
    older)`` maintained by :class:`repro.minidb.table.Heap`.  Returns the
    row dict, or ``None`` when the row does not exist at that version
    (never created yet, or tombstoned).
    """
    entry = chain
    while entry is not None:
        entry_version, entry_token, row, older = entry
        if entry_token is not None:
            if token is not None and entry_token is token:
                return row
        elif entry_version <= version:
            return row
        entry = older
    return None


class SnapshotManager:
    """Version counter, reader pins, and deferred version GC.

    One instance per :class:`~repro.minidb.engine.Database`.  The lock
    here is a *leaf* in the engine's lock hierarchy (it nests strictly
    inside the statement mutex and nothing is ever acquired under it),
    and every critical section is O(1)-ish dict/deque work — readers can
    never block behind a group-commit fsync through it.

    Reclamation records are ``(entry, rowid, old_row, next_row)`` tuples:
    ``old_row`` is the superseded image whose index entries may need
    removal, ``next_row`` the image that replaced it (``None`` for a
    delete).  They queue per publish under the *engine mutex* (the queue
    is writer-owned state; the lock below only guards the pin table and
    the version/epoch pair shared with readers).
    """

    def __init__(self, clock: Any = None) -> None:
        if clock is None:
            from repro.resilience.clock import SystemClock

            clock = SystemClock()
        self.clock = clock
        self._lock = threading.Lock()
        self._version = 0
        self._epoch = 0
        #: version -> [pin count, monotonic time of first pin]
        self._pins: dict[int, list] = {}
        #: Pending reclamation, oldest first: (version, [records]).
        self._gc_queue: deque[tuple[int, list]] = deque()
        self.snapshot_reads = 0
        self.versions_published = 0
        self.gc_reclaims = 0

    def wrap_lock(self, wrap: Callable[[str, Any], Any]) -> None:
        """Swap the version lock for a profiled drop-in (see
        ``Database.wrap_mutex``); the witness sees it as
        ``minidb.version``."""
        self._lock = wrap("minidb.version", self._lock)

    # -- reader side ---------------------------------------------------

    @property
    def version(self) -> int:
        """The latest committed version number."""
        return self._version

    @property
    def epoch(self) -> int:
        """The current catalog epoch (bumped by every DDL)."""
        return self._epoch

    def read_state(self) -> tuple[int, int]:
        """The ``(version, epoch)`` pair without pinning — the writer
        path's view constructor (the engine mutex excludes concurrent
        publishes, so no pin is needed to keep the pair stable)."""
        return self._version, self._epoch

    def pin(self) -> tuple[int, int]:
        """Pin the latest committed snapshot; returns (version, epoch).

        The pin keeps version GC from reclaiming any row image the
        snapshot can still see.  Must be paired with :meth:`unpin`.
        """
        with self._lock:
            version = self._version
            epoch = self._epoch
            pin = self._pins.get(version)
            if pin is None:
                self._pins[version] = [1, self.clock.monotonic()]
            else:
                pin[0] += 1
            self.snapshot_reads += 1
        return version, epoch

    def unpin(self, version: int) -> None:
        """Release one pin on ``version``."""
        with self._lock:
            pin = self._pins[version]
            pin[0] -= 1
            if pin[0] == 0:
                del self._pins[version]

    # -- writer side (engine mutex held) -------------------------------

    def begin_version(self) -> int:
        """The version number the next commit will publish."""
        return self._version + 1

    def publish(
        self,
        version: int,
        records: list | None = None,
        epoch: int | None = None,
    ) -> None:
        """Make ``version`` the latest committed snapshot.

        Every chain stamped with ``version`` must already be in place —
        a reader may pin the new version the instant this returns.
        ``records`` queues deferred reclamation for the images the
        version superseded; ``epoch`` (DDL only) advances the catalog
        epoch atomically with the version.
        """
        if records:
            self._gc_queue.append((version, list(records)))
        with self._lock:
            self._version = version
            if epoch is not None:
                self._epoch = epoch
        self.versions_published += 1

    def horizon(self) -> int:
        """Reclamation horizon: records published at or below it are safe.

        A reader pinned at version ``v`` resolves every chain to its
        newest entry committed at or below ``v`` — so images superseded
        *by* version ``v`` itself are already invisible to it, and the
        horizon is exactly the oldest pinned version (or the current
        version when nothing is pinned).
        """
        with self._lock:
            if self._pins:
                return min(self._pins)
            return self._version

    def collect(self, limit: int = 8192) -> int:
        """Apply queued reclamation records up to the pin horizon.

        Called by writers after publishing (and by checkpoints), under
        the engine mutex.  A record published at version ``v`` is safe
        once no pin is older than ``v``: every remaining reader then
        resolves past the superseded image.  Returns the number of
        records applied.
        """
        if not self._gc_queue:
            return 0
        horizon = self.horizon()
        applied = 0
        while self._gc_queue and applied < limit:
            version, records = self._gc_queue[0]
            if version > horizon:
                break
            self._gc_queue.popleft()
            for entry, rowid, old_row, next_row in records:
                self._reclaim(entry, rowid, old_row, next_row, horizon)
                applied += 1
        self.gc_reclaims += applied
        return applied

    @staticmethod
    def _reclaim(entry, rowid, old_row, next_row, horizon) -> None:
        """Drop one superseded image: compact its chain, fix indexes."""
        entry.heap.compact(rowid, horizon)
        latest = entry.heap.latest_committed(rowid)
        # Hash buckets (including the PK index) are set-based: the entry
        # for a key is shared by every image carrying it, so it goes
        # only when the live image no longer does.
        for index in (entry.pk_index, *entry.hash_indexes.values()):
            if latest is None or index.key_of(latest) != index.key_of(old_row):
                index.remove(rowid, old_row)
        # Ordered indexes hold one pair *instance* per key transition
        # (writers add an instance only when the key changed), so the
        # removal mirrors the add rule exactly: one instance per
        # transition away from ``old_row``'s key.
        for ordered in entry.ordered_indexes.values():
            next_key = None if next_row is None else ordered.key_of(next_row)
            if ordered.key_of(old_row) != next_key:
                ordered.remove(rowid, old_row)

    # -- introspection -------------------------------------------------

    def gc_pending(self) -> int:
        """Reclamation records queued behind the pin horizon."""
        return sum(len(records) for __, records in self._gc_queue)

    def info(self) -> dict[str, Any]:
        """MVCC accounting for ``python -m repro.minidb info`` and
        ``/workflow/metrics``."""
        with self._lock:
            version = self._version
            epoch = self._epoch
            pins = sum(count for count, __ in self._pins.values())
            oldest = min(self._pins) if self._pins else None
            oldest_age = (
                max(0.0, self.clock.monotonic() - self._pins[oldest][1])
                if oldest is not None
                else 0.0
            )
        return {
            "current_version": version,
            "catalog_epoch": epoch,
            "live_versions": version - (oldest if oldest is not None else version) + 1,
            "pinned_snapshots": pins,
            "oldest_pin_version": oldest,
            "oldest_pin_age_s": oldest_age,
            "snapshot_reads": self.snapshot_reads,
            "versions_published": self.versions_published,
            "gc_pending": self.gc_pending(),
            "gc_reclaims": self.gc_reclaims,
        }
