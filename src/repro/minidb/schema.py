"""Table schemas: columns, keys, foreign keys and table inheritance.

The inheritance facility mirrors Exp-DB's experiment-type tables: a child
table (e.g. ``PCR``) declares ``parent="Experiment"`` and *inherits the
parent's primary key*.  The engine then guarantees that every child row has
a matching parent row, and offers joined reads that merge the two — exactly
the behaviour the paper's ``TableBean`` implements on top of PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.minidb.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single typed column.

    ``default`` may be a plain value or a zero-argument callable evaluated
    at insert time (e.g. ``datetime.now`` for creation dates).
    """

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")

    def resolve_default(self) -> Any:
        """Return the default value, calling it if it is a factory."""
        if callable(self.default):
            return self.default()
        return self.default


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from ``columns`` to ``ref_table.ref_columns``.

    ``on_delete`` is one of ``"restrict"`` (default: deleting a referenced
    row fails) or ``"cascade"`` (referencing rows are deleted too).
    """

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]
    on_delete: str = "restrict"

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.columns} -> {self.ref_table}{self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key needs at least one column")
        if self.on_delete not in ("restrict", "cascade"):
            raise SchemaError(f"unsupported on_delete action: {self.on_delete!r}")


def fk(
    columns: str | Sequence[str],
    ref_table: str,
    ref_columns: str | Sequence[str],
    on_delete: str = "restrict",
) -> ForeignKey:
    """Convenience constructor accepting single column names or sequences."""
    cols = (columns,) if isinstance(columns, str) else tuple(columns)
    refs = (ref_columns,) if isinstance(ref_columns, str) else tuple(ref_columns)
    return ForeignKey(cols, ref_table, refs, on_delete)


@dataclass
class TableSchema:
    """The full definition of one table.

    ``parent`` names the parent table in an Exp-DB-style inheritance
    hierarchy; a child table must declare the same primary-key columns as
    the parent, and the engine adds an implicit cascade foreign key from
    the child PK to the parent PK.
    """

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...]
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    parent: str | None = None
    autoincrement: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name: {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        names = [c.name for c in self.columns]
        self._columns_by_name = {c.name: c for c in self.columns}
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                f"table {self.name!r} has duplicate columns: {sorted(duplicates)}"
            )
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        self.primary_key = tuple(self.primary_key)
        for pk_col in self.primary_key:
            if pk_col not in names:
                raise UnknownColumnError(self.name, pk_col)
        for foreign in self.foreign_keys:
            for col in foreign.columns:
                if col not in names:
                    raise UnknownColumnError(self.name, col)
        if self.autoincrement is not None:
            if self.autoincrement not in names:
                raise UnknownColumnError(self.name, self.autoincrement)
            column = self.column(self.autoincrement)
            if column.type is not ColumnType.INTEGER:
                raise SchemaError(
                    f"autoincrement column {self.autoincrement!r} in table "
                    f"{self.name!r} must be INTEGER"
                )

    # -- lookup helpers ----------------------------------------------------

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``."""
        try:
            return self._columns_by_name[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def has_column(self, name: str) -> bool:
        """Whether the table defines a column called ``name``."""
        return name in self._columns_by_name

    def column_names(self) -> list[str]:
        """All column names in definition order."""
        return [c.name for c in self.columns]

    def validate_column_names(self, names: Iterable[str]) -> None:
        """Raise :class:`UnknownColumnError` for any unknown name."""
        for name in names:
            if name not in self._columns_by_name:
                raise UnknownColumnError(self.name, name)

    def pk_tuple(self, row: dict[str, Any]) -> tuple[Any, ...]:
        """Extract the primary-key value tuple from a row dict."""
        return tuple(row[c] for c in self.primary_key)

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly description of the schema (used by the WAL)."""
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": c.type.value,
                    "nullable": c.nullable,
                    # Callable defaults cannot be persisted; they only ever
                    # matter at insert time, which happens before the WAL
                    # record is written, so dropping them is safe.
                    "default": None if callable(c.default) else c.default,
                }
                for c in self.columns
            ],
            "primary_key": list(self.primary_key),
            "foreign_keys": [
                {
                    "columns": list(f.columns),
                    "ref_table": f.ref_table,
                    "ref_columns": list(f.ref_columns),
                    "on_delete": f.on_delete,
                }
                for f in self.foreign_keys
            ],
            "parent": self.parent,
            "autoincrement": self.autoincrement,
        }

    @staticmethod
    def from_description(description: dict[str, Any]) -> "TableSchema":
        """Rebuild a schema from :meth:`describe` output (WAL replay)."""
        return TableSchema(
            name=description["name"],
            columns=[
                Column(
                    name=c["name"],
                    type=ColumnType(c["type"]),
                    nullable=c["nullable"],
                    default=c["default"],
                )
                for c in description["columns"]
            ],
            primary_key=tuple(description["primary_key"]),
            foreign_keys=[
                ForeignKey(
                    columns=tuple(f["columns"]),
                    ref_table=f["ref_table"],
                    ref_columns=tuple(f["ref_columns"]),
                    on_delete=f["on_delete"],
                )
                for f in description["foreign_keys"]
            ],
            parent=description["parent"],
            autoincrement=description["autoincrement"],
        )
