"""Secondary indexes for minidb.

Two flavours are provided:

* :class:`HashIndex` — equality lookups; backs primary keys, foreign-key
  checks and the planner's equality-binding fast path.
* :class:`OrderedIndex` — range lookups over a sorted key list; used by the
  engine when a query's predicate is a single range comparison on an
  indexed column.

Index keys are tuples of column values.  ``None`` components are permitted
(NULL-able indexed columns) but a key containing ``None`` is never returned
by lookups, matching SQL comparison semantics.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator


def _key_has_null(key: tuple[Any, ...]) -> bool:
    return any(part is None for part in key)


class HashIndex:
    """Maps key tuples to the set of rowids holding them."""

    def __init__(self, columns: tuple[str, ...], unique: bool = False) -> None:
        self.columns = columns
        self.unique = unique
        self._buckets: dict[tuple[Any, ...], set[int]] = {}

    def key_of(self, row: dict[str, Any]) -> tuple[Any, ...]:
        """Extract this index's key tuple from a row."""
        return tuple(row.get(column) for column in self.columns)

    def add(self, rowid: int, row: dict[str, Any]) -> None:
        """Register ``row`` (stored at ``rowid``) in the index."""
        self._buckets.setdefault(self.key_of(row), set()).add(rowid)

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        """Unregister ``row`` from the index."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: tuple[Any, ...]) -> set[int]:
        """Rowids whose key equals ``key`` (empty for NULL-bearing keys)."""
        if _key_has_null(key):
            return set()
        return set(self._buckets.get(key, ()))

    def contains_key(self, key: tuple[Any, ...]) -> bool:
        """Whether any row carries ``key`` (NULL keys never match)."""
        if _key_has_null(key):
            return False
        return key in self._buckets

    def count_key(self, key: tuple[Any, ...]) -> int:
        """Number of rows carrying ``key``."""
        if _key_has_null(key):
            return 0
        return len(self._buckets.get(key, ()))

    def clear(self) -> None:
        self._buckets.clear()

    def rebuild(self, rows: Iterable[tuple[int, dict[str, Any]]]) -> None:
        """Rebuild from scratch over ``(rowid, row)`` pairs."""
        self.clear()
        for rowid, row in rows:
            self.add(rowid, row)


class OrderedIndex:
    """A sorted single-column index supporting range scans.

    NULL values are excluded from the sort order entirely (they can never
    satisfy a range predicate).
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._keys: list[Any] = []
        self._rowids: list[int] = []

    def add(self, rowid: int, row: dict[str, Any]) -> None:
        value = row.get(self.column)
        if value is None:
            return
        position = bisect.bisect_right(self._keys, value)
        self._keys.insert(position, value)
        self._rowids.insert(position, rowid)

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        value = row.get(self.column)
        if value is None:
            return
        left = bisect.bisect_left(self._keys, value)
        right = bisect.bisect_right(self._keys, value)
        for position in range(left, right):
            if self._rowids[position] == rowid:
                del self._keys[position]
                del self._rowids[position]
                return

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield rowids with ``low <(=) key <(=) high`` in key order."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        for position in range(start, stop):
            yield self._rowids[position]

    def clear(self) -> None:
        self._keys.clear()
        self._rowids.clear()

    def rebuild(self, rows: Iterable[tuple[int, dict[str, Any]]]) -> None:
        self.clear()
        for rowid, row in rows:
            self.add(rowid, row)
