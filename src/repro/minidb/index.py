"""Secondary indexes for minidb.

Two flavours are provided:

* :class:`HashIndex` — equality lookups; backs primary keys, foreign-key
  checks and the planner's equality-binding fast path.
* :class:`OrderedIndex` — range lookups over a sorted key list; used by the
  engine when a query's predicate is a single range comparison on an
  indexed column.

Index keys are tuples of column values.  ``None`` components are permitted
(NULL-able indexed columns) but a key containing ``None`` is never returned
by lookups, matching SQL comparison semantics.

Under MVCC, indexes are *over-complete*: removal of a superseded image's
entries is deferred to version GC, so a lookup may return rowids whose
visible row no longer matches — the engine always re-checks the predicate
after resolving visibility.  Readers run without the statement mutex;
both structures therefore expose their lookups through single GIL-atomic
copies (``set(bucket)``, ``list(pairs)``) so a concurrent writer can
never hand a reader a half-updated view.  ``created_epoch`` stamps when
the index became part of the catalog: the planner only routes a query
through an index created at or before the reader's pinned epoch, so a
snapshot taken before a ``CREATE INDEX`` never reads an index that lacks
entries for images only that snapshot can still see.
"""

from __future__ import annotations

import bisect
import operator
from typing import Any, Iterable, Iterator

_pair_key = operator.itemgetter(0)


def _key_has_null(key: tuple[Any, ...]) -> bool:
    return any(part is None for part in key)


class HashIndex:
    """Maps key tuples to the set of rowids holding them."""

    def __init__(self, columns: tuple[str, ...], unique: bool = False) -> None:
        self.columns = columns
        self.unique = unique
        self.created_epoch = 0
        self._buckets: dict[tuple[Any, ...], set[int]] = {}

    def key_of(self, row: dict[str, Any]) -> tuple[Any, ...]:
        """Extract this index's key tuple from a row."""
        return tuple(row.get(column) for column in self.columns)

    def add(self, rowid: int, row: dict[str, Any]) -> None:
        """Register ``row`` (stored at ``rowid``) in the index."""
        self._buckets.setdefault(self.key_of(row), set()).add(rowid)

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        """Unregister ``row`` from the index."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(rowid)
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: tuple[Any, ...]) -> set[int]:
        """Rowids whose key equals ``key`` (empty for NULL-bearing keys)."""
        if _key_has_null(key):
            return set()
        bucket = self._buckets.get(key)
        if bucket is None:
            return set()
        return set(bucket)

    def contains_key(self, key: tuple[Any, ...]) -> bool:
        """Whether any row carries ``key`` (NULL keys never match)."""
        if _key_has_null(key):
            return False
        return key in self._buckets

    def count_key(self, key: tuple[Any, ...]) -> int:
        """Number of rows carrying ``key``."""
        if _key_has_null(key):
            return 0
        return len(self._buckets.get(key, ()))

    def clear(self) -> None:
        self._buckets.clear()

    def rebuild(self, rows: Iterable[tuple[int, dict[str, Any]]]) -> None:
        """Rebuild from scratch over ``(rowid, row)`` pairs."""
        self.clear()
        for rowid, row in rows:
            self.add(rowid, row)


class OrderedIndex:
    """A sorted single-column index supporting range scans.

    NULL values are excluded from the sort order entirely (they can never
    satisfy a range predicate).  Entries live in one sorted
    ``(key, rowid)`` pair list, so a reader takes a single atomic copy
    and bisects it — there is no moment where key and rowid columns can
    disagree under a concurrent writer.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self.created_epoch = 0
        self._pairs: list[tuple[Any, int]] = []

    def key_of(self, row: dict[str, Any]) -> Any:
        """Extract this index's key value from a row."""
        return row.get(self.column)

    def add(self, rowid: int, row: dict[str, Any]) -> None:
        value = row.get(self.column)
        if value is None:
            return
        position = bisect.bisect_right(self._pairs, value, key=_pair_key)
        self._pairs.insert(position, (value, rowid))

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        """Drop one ``(value, rowid)`` instance, if present."""
        value = row.get(self.column)
        if value is None:
            return
        pairs = self._pairs
        position = bisect.bisect_left(pairs, value, key=_pair_key)
        while position < len(pairs) and pairs[position][0] == value:
            if pairs[position][1] == rowid:
                del pairs[position]
                return
            position += 1

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield rowids with ``low <(=) key <(=) high`` in key order."""
        pairs = list(self._pairs)  # one atomic snapshot; writers go on
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(pairs, low, key=_pair_key)
        else:
            start = bisect.bisect_right(pairs, low, key=_pair_key)
        if high is None:
            stop = len(pairs)
        elif include_high:
            stop = bisect.bisect_right(pairs, high, key=_pair_key)
        else:
            stop = bisect.bisect_left(pairs, high, key=_pair_key)
        for position in range(start, stop):
            yield pairs[position][1]

    def clear(self) -> None:
        self._pairs.clear()

    def rebuild(self, rows: Iterable[tuple[int, dict[str, Any]]]) -> None:
        self.clear()
        for rowid, row in rows:
            self.add(rowid, row)
