"""Transactions for minidb: undo log, redo buffer, and the MVCC token.

The engine serialises all *writes* under its statement mutex, so the
transaction machinery is about atomicity and visibility, not mutual
exclusion:

* every mutation appends an **undo entry**; ``rollback`` replays the undo
  entries in reverse through the engine, restoring heap and indexes;
* every mutation also appends a **redo operation**; ``commit`` hands the
  redo batch to the write-ahead log as one atomic record;
* the :class:`Transaction` object itself is the **MVCC token**: the
  heap stamps every uncommitted chain entry with it, and a reader whose
  thread has joined the transaction (``participants``) overlays those
  entries on its pinned snapshot — read-your-writes without publishing
  anything to other readers.

At commit the engine walks ``touched`` to restamp the token entries with
the new version number, then hands ``deferred`` (the superseded images
whose index entries must eventually go) to the snapshot manager's GC
queue.  Outside an explicit transaction the engine runs in autocommit
mode: each statement forms its own single-operation transaction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import TransactionError


@dataclass(frozen=True)
class UndoInsert:
    """Reverse of an insert: remove the row again."""

    table: str
    rowid: int


@dataclass(frozen=True)
class UndoUpdate:
    """Reverse of an update: restore the previous row image."""

    table: str
    rowid: int
    old_row: dict[str, Any]


@dataclass(frozen=True)
class UndoDelete:
    """Reverse of a delete: put the old row back at its rowid."""

    table: str
    rowid: int
    old_row: dict[str, Any]


UndoEntry = UndoInsert | UndoUpdate | UndoDelete


class Transaction:
    """One open transaction's undo entries, redo operations and MVCC
    bookkeeping.  Identity (``is``) is what makes it a token — never
    compared by value, and never recycled (a reader holding a stale
    chain reference must not match a token from an earlier life).

    A plain ``__slots__`` class rather than a dataclass: autocommit
    allocates one per statement, so construction is on the write hot
    path.
    """

    __slots__ = ("undo", "redo", "participants", "touched", "deferred")

    def __init__(self) -> None:
        self.undo: list[UndoEntry] = []
        self.redo: list[dict[str, Any]] = []
        #: Thread idents whose reads overlay this transaction's writes.
        self.participants: set[int] = set()
        #: ``(table entry, rowid)`` of every chain holding entries
        #: stamped with this token — restamped to the commit version at
        #: publish.
        self.touched: list = []
        #: Deferred index reclamation: ``(entry, rowid, old_row,
        #: next_row)`` per superseded image; queued to version GC at
        #: commit, discarded on rollback.
        self.deferred: list = []


class TransactionManager:
    """Tracks the (at most one) open transaction of a Database."""

    def __init__(self) -> None:
        self._current: Transaction | None = None

    @property
    def active(self) -> bool:
        """Whether an explicit transaction is open."""
        return self._current is not None

    @property
    def current(self) -> Transaction | None:
        """The open transaction (the MVCC token), if any."""
        return self._current

    def begin(self) -> Transaction:
        """Open an explicit transaction; the opening thread joins it."""
        if self._current is not None:
            raise TransactionError("transaction already in progress")
        self._current = Transaction()
        self._current.participants.add(threading.get_ident())
        return self._current

    def join(self, ident: int) -> None:
        """Let thread ``ident`` read the open transaction's writes."""
        if self._current is not None:
            self._current.participants.add(ident)

    def record(self, undo: UndoEntry, redo: dict[str, Any]) -> None:
        """Log one mutation into the open transaction.

        Must only be called while a transaction is open (the engine opens
        an implicit one for autocommit statements).
        """
        if self._current is None:
            raise TransactionError("no transaction in progress")
        self._current.undo.append(undo)
        self._current.redo.append(redo)

    def take_commit(self) -> Transaction:
        """Close the transaction, returning it for publish + WAL append."""
        if self._current is None:
            raise TransactionError("commit without begin")
        txn = self._current
        self._current = None
        return txn

    def take_rollback(self) -> list[UndoEntry]:
        """Close the transaction, returning undo entries in reverse order."""
        if self._current is None:
            raise TransactionError("rollback without begin")
        undo = list(reversed(self._current.undo))
        self._current = None
        return undo
