"""Transactions for minidb: an undo log plus a redo buffer.

minidb runs single-threaded within one request (the web container
serialises handler execution per worker), so the transaction machinery is
about *atomicity*, not isolation:

* every mutation appends an **undo entry**; ``rollback`` replays the undo
  entries in reverse through the engine, restoring heap and indexes;
* every mutation also appends a **redo operation**; ``commit`` hands the
  redo batch to the write-ahead log as one atomic record.

Outside an explicit transaction the engine runs in autocommit mode: each
statement forms its own single-operation transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import TransactionError


@dataclass(frozen=True)
class UndoInsert:
    """Reverse of an insert: remove the row again."""

    table: str
    rowid: int


@dataclass(frozen=True)
class UndoUpdate:
    """Reverse of an update: restore the previous row image."""

    table: str
    rowid: int
    old_row: dict[str, Any]


@dataclass(frozen=True)
class UndoDelete:
    """Reverse of a delete: put the old row back at its rowid."""

    table: str
    rowid: int
    old_row: dict[str, Any]


UndoEntry = UndoInsert | UndoUpdate | UndoDelete


@dataclass
class Transaction:
    """One open transaction's undo entries and redo operations."""

    undo: list[UndoEntry] = field(default_factory=list)
    redo: list[dict[str, Any]] = field(default_factory=list)


class TransactionManager:
    """Tracks the (at most one) open transaction of a Database."""

    def __init__(self) -> None:
        self._current: Transaction | None = None

    @property
    def active(self) -> bool:
        """Whether an explicit transaction is open."""
        return self._current is not None

    def begin(self) -> None:
        """Open an explicit transaction."""
        if self._current is not None:
            raise TransactionError("transaction already in progress")
        self._current = Transaction()

    def record(self, undo: UndoEntry, redo: dict[str, Any]) -> None:
        """Log one mutation into the open transaction.

        Must only be called while a transaction is open (the engine opens
        an implicit one for autocommit statements).
        """
        if self._current is None:
            raise TransactionError("no transaction in progress")
        self._current.undo.append(undo)
        self._current.redo.append(redo)

    def take_commit(self) -> list[dict[str, Any]]:
        """Close the transaction, returning its redo batch for the WAL."""
        if self._current is None:
            raise TransactionError("commit without begin")
        redo = self._current.redo
        self._current = None
        return redo

    def take_rollback(self) -> list[UndoEntry]:
        """Close the transaction, returning undo entries in reverse order."""
        if self._current is None:
            raise TransactionError("rollback without begin")
        undo = list(reversed(self._current.undo))
        self._current = None
        return undo
