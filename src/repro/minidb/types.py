"""Column types and value coercion for minidb.

minidb supports a deliberately small set of scalar types — the set Exp-DB
actually needs for its laboratory schema.  Values are stored in their
canonical Python representation and coerced on the way in, so that a row
read back always compares equal to the row written.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

from repro.errors import TypeMismatchError


class ColumnType(enum.Enum):
    """Scalar column types supported by minidb."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnType.{self.name}"


#: Canonical Python type for each column type.
_PYTHON_TYPES = {
    ColumnType.INTEGER: int,
    ColumnType.REAL: float,
    ColumnType.TEXT: str,
    ColumnType.BOOLEAN: bool,
    ColumnType.TIMESTAMP: _dt.datetime,
}

#: ISO-8601 format used to persist timestamps in the WAL.
_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%S.%f"


def coerce(value: Any, column_type: ColumnType, context: str = "value") -> Any:
    """Coerce ``value`` to the canonical representation of ``column_type``.

    ``None`` passes through untouched (nullability is checked separately by
    the engine).  Raises :class:`TypeMismatchError` when the value cannot be
    represented losslessly.

    ``context`` is included in error messages to identify the offending
    column.
    """
    if value is None:
        return None

    if column_type is ColumnType.INTEGER:
        # bool is an int subclass; accepting True as 1 silently would make
        # type errors invisible, so reject it explicitly.
        if isinstance(value, bool):
            raise TypeMismatchError(f"{context}: boolean given for INTEGER column")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value, 10)
            except ValueError:
                pass
        raise TypeMismatchError(f"{context}: cannot coerce {value!r} to INTEGER")

    if column_type is ColumnType.REAL:
        if isinstance(value, bool):
            raise TypeMismatchError(f"{context}: boolean given for REAL column")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"{context}: cannot coerce {value!r} to REAL")

    if column_type is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"{context}: cannot coerce {value!r} to TEXT")

    if column_type is ColumnType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise TypeMismatchError(f"{context}: cannot coerce {value!r} to BOOLEAN")

    if column_type is ColumnType.TIMESTAMP:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, str):
            try:
                return _dt.datetime.strptime(value, _TIMESTAMP_FORMAT)
            except ValueError:
                try:
                    return _dt.datetime.fromisoformat(value)
                except ValueError:
                    pass
        raise TypeMismatchError(f"{context}: cannot coerce {value!r} to TIMESTAMP")

    raise TypeMismatchError(f"{context}: unsupported column type {column_type!r}")


def to_wire(value: Any, column_type: ColumnType) -> Any:
    """Render a canonical value as a JSON-serialisable scalar for the WAL."""
    if value is None:
        return None
    if column_type is ColumnType.TIMESTAMP:
        return value.strftime(_TIMESTAMP_FORMAT)
    return value


def from_wire(value: Any, column_type: ColumnType) -> Any:
    """Parse a WAL scalar back into the canonical representation."""
    if value is None:
        return None
    return coerce(value, column_type, context="wal")


def python_type(column_type: ColumnType) -> type:
    """Return the canonical Python type stored for ``column_type``."""
    return _PYTHON_TYPES[column_type]
