"""Heap storage for one minidb table.

Rows live in an insertion-ordered dict keyed by a monotonically increasing
*rowid*.  The heap itself enforces nothing; typing, constraints and index
maintenance are the engine's job.  Keeping the heap dumb makes the undo log
trivial: every mutation is reversible given (rowid, old_row).
"""

from __future__ import annotations

from typing import Any, Iterator


class Heap:
    """Insertion-ordered row storage with stable rowids."""

    def __init__(self) -> None:
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rowid = 1

    def __len__(self) -> int:
        return len(self._rows)

    def insert(self, row: dict[str, Any]) -> int:
        """Store a new row, returning its rowid."""
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        return rowid

    def insert_at(self, rowid: int, row: dict[str, Any]) -> None:
        """Re-insert a row at a specific rowid (undo of a delete)."""
        if rowid in self._rows:
            raise KeyError(f"rowid {rowid} already occupied")
        self._rows[rowid] = row
        if rowid >= self._next_rowid:
            self._next_rowid = rowid + 1

    def get(self, rowid: int) -> dict[str, Any]:
        """Fetch the row stored at ``rowid``."""
        return self._rows[rowid]

    def contains(self, rowid: int) -> bool:
        """Whether ``rowid`` currently holds a row."""
        return rowid in self._rows

    def replace(self, rowid: int, row: dict[str, Any]) -> dict[str, Any]:
        """Overwrite the row at ``rowid``; returns the previous row."""
        old = self._rows[rowid]
        self._rows[rowid] = row
        return old

    def delete(self, rowid: int) -> dict[str, Any]:
        """Remove and return the row at ``rowid``."""
        return self._rows.pop(rowid)

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(rowid, row)`` pairs in insertion order.

        The snapshot via ``list`` makes it safe to mutate while iterating —
        the workflow engine deletes rows found by its own scans.
        """
        return iter(list(self._rows.items()))

    def clear(self) -> None:
        """Drop every row (used by DROP TABLE and recovery)."""
        self._rows.clear()
        self._next_rowid = 1
