"""Versioned heap storage for one minidb table (MVCC row chains).

Each rowid maps to an immutable *version chain*: a newest-first linked
tuple ``(version, token, row, older)``.

* Committed entries carry ``token=None`` and the version number of the
  commit that installed them.
* Uncommitted entries carry ``version=0`` and ``token=<the open
  Transaction>`` — the read-your-writes overlay key.
* ``row=None`` is a tombstone (the row is deleted as of that entry).

Chains are never mutated in place: every write replaces the dict value
with a fresh tuple, so a lock-free reader that grabbed a chain reference
always walks a consistent structure, and replacing the value is a single
GIL-atomic dict store.  Resolution against a pinned version lives in
:func:`repro.minidb.mvcc.visible_row`.

The heap still enforces nothing; typing, constraints and index
maintenance are the engine's job.  ``len(heap)`` counts *live* rows —
rows whose newest entry is not a tombstone — which the heap maintains
incrementally so ``row_count``/``explain`` stay O(1).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.minidb.mvcc import visible_row


class Heap:
    """Version-chained row storage with stable rowids."""

    def __init__(self) -> None:
        self._chains: dict[int, tuple] = {}
        self._next_rowid = 1
        self._live = 0

    def __len__(self) -> int:
        return self._live

    # -- writes (engine mutex held) ------------------------------------

    def insert(
        self, row: dict[str, Any], token: Any = None, version: int = 0
    ) -> int:
        """Store a new row, returning its rowid."""
        rowid = self._next_rowid
        self._next_rowid += 1
        self._chains[rowid] = (version, token, row, None)
        self._live += 1
        return rowid

    def put(self, rowid: int, row: dict[str, Any], token: Any) -> None:
        """Push an uncommitted new image on top of ``rowid``'s chain."""
        self._chains[rowid] = (0, token, row, self._chains[rowid])

    def put_tombstone(self, rowid: int, token: Any) -> None:
        """Push an uncommitted delete marker on top of ``rowid``'s chain."""
        self._chains[rowid] = (0, token, None, self._chains[rowid])
        self._live -= 1

    def commit(self, rowid: int, token: Any, version: int) -> None:
        """Restamp ``token``'s entries in the chain as committed at
        ``version`` (the chain object is rebuilt, never mutated)."""
        chain = self._chains.get(rowid)
        if chain is None:
            return
        if chain[1] is token and (chain[3] is None or chain[3][1] is None):
            # Hot paths: a fresh insert (no history) or one update over a
            # committed image.  Uncommitted entries are contiguous at the
            # head (concurrent statements join the one open transaction),
            # so a committed next entry means only the head needs stamping.
            self._chains[rowid] = (version, None, chain[2], chain[3])
            return
        entries = []
        entry = chain
        changed = False
        while entry is not None:
            entry_version, entry_token, row, older = entry
            if entry_token is token:
                entries.append((version, None, row))
                changed = True
            else:
                entries.append((entry_version, entry_token, row))
            entry = older
        if not changed:
            return
        rebuilt = None
        for entry_version, entry_token, row in reversed(entries):
            rebuilt = (entry_version, entry_token, row, rebuilt)
        self._chains[rowid] = rebuilt

    def rollback_head(self, rowid: int) -> dict[str, Any] | None:
        """Pop the newest (uncommitted) entry; returns its row image."""
        __, __, row, older = self._chains[rowid]
        if older is None:
            del self._chains[rowid]
        else:
            self._chains[rowid] = older
        if row is None:
            self._live += 1  # popped a tombstone: the row is live again
        elif older is None:
            self._live -= 1  # popped a fresh insert: the rowid is gone
        return row

    def compact(self, rowid: int, horizon: int) -> None:
        """Drop chain entries no pinned reader can resolve to.

        Keeps uncommitted entries, committed entries above ``horizon``,
        and the newest committed entry at or below it (the image every
        remaining reader lands on) — unless that image is a tombstone
        with nothing newer, in which case the rowid itself is dead.
        """
        chain = self._chains.get(rowid)
        if chain is None:
            return
        kept: list[tuple] = []
        entry = chain
        while entry is not None:
            version, token, row, older = entry
            if token is not None or version > horizon:
                kept.append((version, token, row))
            else:
                if row is not None or kept:
                    kept.append((version, token, row))
                break
            entry = older
        if not kept:
            del self._chains[rowid]
            return
        rebuilt = None
        for version, token, row in reversed(kept):
            rebuilt = (version, token, row, rebuilt)
        self._chains[rowid] = rebuilt

    # -- recovery writes (flat chains, no concurrent readers) ----------

    def replace_committed(
        self, rowid: int, row: dict[str, Any], version: int
    ) -> None:
        """Overwrite ``rowid`` with a single committed entry (replay)."""
        self._chains[rowid] = (version, None, row, None)

    def remove(self, rowid: int) -> None:
        """Hard-drop ``rowid`` (replay of a committed delete)."""
        del self._chains[rowid]
        self._live -= 1

    # -- reads (safe without the engine mutex) -------------------------

    def chain(self, rowid: int) -> tuple | None:
        """The version chain at ``rowid`` (``None`` if never created)."""
        return self._chains.get(rowid)

    def chains(self) -> Iterator[tuple[int, tuple]]:
        """Iterate ``(rowid, chain)`` pairs over one atomic snapshot of
        the chain table (safe against concurrent writers)."""
        return iter(list(self._chains.items()))

    def visible(
        self, rowid: int, version: int, token: Any = None
    ) -> dict[str, Any] | None:
        """The row image visible at ``(version, token)``, if any."""
        return visible_row(self._chains.get(rowid), version, token)

    def visible_items(
        self, version: int, token: Any = None
    ) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(rowid, row)`` for every row visible at the snapshot."""
        for rowid, chain in list(self._chains.items()):
            row = visible_row(chain, version, token)
            if row is not None:
                yield rowid, row

    def latest_committed(self, rowid: int) -> dict[str, Any] | None:
        """The newest committed image (``None`` if deleted or unknown)."""
        entry = self._chains.get(rowid)
        while entry is not None:
            if entry[1] is None:
                return entry[2]
            entry = entry[3]
        return None

    def latest_items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(rowid, row)`` over the newest committed images —
        the index-rebuild feed for DDL (which forbids open
        transactions, so no token entries exist)."""
        for rowid, chain in list(self._chains.items()):
            row = self.latest_committed(rowid)
            if row is not None:
                yield rowid, row

    def prepend_committed(
        self, rowid: int, row: dict[str, Any], version: int
    ) -> None:
        """Push a committed image on top of ``rowid``'s chain — the
        ``add_column`` backfill path, which rewrites every row at one
        new version while pinned readers keep the old images."""
        self._chains[rowid] = (version, None, row, self._chains[rowid])

    def images(self, rowid: int) -> list[dict[str, Any]]:
        """Every non-tombstone image still in ``rowid``'s chain."""
        out = []
        entry = self._chains.get(rowid)
        while entry is not None:
            if entry[2] is not None:
                out.append(entry[2])
            entry = entry[3]
        return out

    def clear(self) -> None:
        """Drop every row (used by DROP TABLE and recovery)."""
        self._chains.clear()
        self._next_rowid = 1
        self._live = 0
