"""repro.resilience — fault injection, retries, breakers, and leases.

Everything here exists to make the reproduction *fail well*: the fault
plan makes failures deterministic and injectable at named points, the
retry policy and dead-letter queue keep poison messages from looping or
vanishing, the circuit breaker keeps a dead agent from dragging down
dispatch, and the lease table turns silent agent death into a clean
Fig. 4 abort instead of a hung workflow.  Time is always taken from an
injectable :class:`~repro.resilience.clock.Clock`, so every backoff,
cooldown, and lease deadline is testable without wall-clock sleeps.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
)
from repro.resilience.clock import Clock, ManualClock, SystemClock
from repro.resilience.faults import FaultPlan, FaultRule, fire, mangle
from repro.resilience.leases import Lease, LeaseTable
from repro.resilience.retry import NO_RETRY, RetryPolicy

# NOTE: the crash-point torture harness lives in
# ``repro.resilience.torture`` and is imported directly (not re-exported
# here) — it depends on minidb and messaging, which themselves import
# this package for clocks and fault points.

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "NO_RETRY",
    "OPEN",
    "STATE_CODES",
    "CircuitBreaker",
    "Clock",
    "FaultPlan",
    "FaultRule",
    "Lease",
    "LeaseTable",
    "ManualClock",
    "RetryPolicy",
    "SystemClock",
    "fire",
    "mangle",
]
