"""Agent liveness leases for dispatched task instances.

The paper's asynchronous messaging means a dispatched instance has no
built-in liveness: an agent that silently wedges (or whose host dies
without closing its consumer) blocks the instance — and with it the
task, the workflow, and everything downstream — forever.  The lease
table closes that gap:

* every dispatch grants a lease: *this instance should produce a
  ``task.started``/``task.result`` before ``deadline``*;
* inbound agent traffic renews (started) or releases (result) it;
* the manager's sweep expires overdue leases — each expiry either
  re-dispatches the instance (possibly to a different agent) or, once
  the redispatch budget is spent, aborts it through the Fig. 4 instance
  machine so the workflow fails *cleanly* instead of hanging.

The table is in-memory by design: leases describe *delivery* state, not
workflow state.  After a manager restart the instances are still in the
database as ``delegated``/``active`` rows, and the broker's journal
still holds the undelivered dispatches — a fresh sweep re-covers them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.clock import Clock, SystemClock


@dataclass
class Lease:
    """One dispatched instance's liveness contract."""

    experiment_id: int
    workflow_id: int | None
    task: str | None
    agent: str | None
    queue: str | None
    granted_at: float
    deadline: float
    #: How many times the sweep already re-dispatched this instance.
    redispatches: int = 0
    #: Renewal count (``task.started`` arrivals).
    renewals: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def remaining(self, now: float) -> float:
        """Seconds of lease left (negative = expired)."""
        return self.deadline - now


class LeaseTable:
    """All outstanding leases, keyed by experiment id."""

    def __init__(
        self,
        clock: Clock | None = None,
        ttl_s: float = 300.0,
        max_redispatches: int = 1,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("lease ttl must be positive")
        self.clock: Clock = clock or SystemClock()
        self.ttl_s = ttl_s
        self.max_redispatches = max_redispatches
        self._lock = threading.Lock()
        self._leases: dict[int, Lease] = {}
        self.expiries = 0

    # ------------------------------------------------------------------

    def grant(
        self,
        experiment_id: int,
        workflow_id: int | None = None,
        task: str | None = None,
        agent: str | None = None,
        queue: str | None = None,
        ttl_s: float | None = None,
    ) -> Lease:
        """Grant (or re-grant) a lease for a freshly dispatched instance.

        Re-granting an existing lease — a redispatch — keeps its
        ``redispatches`` counter so the budget spans agent changes.
        """
        now = self.clock.monotonic()
        with self._lock:
            previous = self._leases.get(experiment_id)
            lease = Lease(
                experiment_id=experiment_id,
                workflow_id=workflow_id,
                task=task,
                agent=agent,
                queue=queue,
                granted_at=now,
                deadline=now + (ttl_s if ttl_s is not None else self.ttl_s),
                redispatches=previous.redispatches if previous else 0,
            )
            self._leases[experiment_id] = lease
            return lease

    def renew(self, experiment_id: int, ttl_s: float | None = None) -> Lease | None:
        """Extend a lease (the agent proved liveness); ``None`` if unknown."""
        now = self.clock.monotonic()
        with self._lock:
            lease = self._leases.get(experiment_id)
            if lease is None:
                return None
            lease.deadline = now + (ttl_s if ttl_s is not None else self.ttl_s)
            lease.renewals += 1
            return lease

    def release(self, experiment_id: int) -> Lease | None:
        """Remove a lease (instance decided); ``None`` if unknown."""
        with self._lock:
            return self._leases.pop(experiment_id, None)

    def note_redispatch(self, experiment_id: int) -> int:
        """Count a sweep-triggered redispatch; returns the new total."""
        with self._lock:
            lease = self._leases.get(experiment_id)
            if lease is None:
                return 0
            lease.redispatches += 1
            return lease.redispatches

    # ------------------------------------------------------------------

    def get(self, experiment_id: int) -> Lease | None:
        with self._lock:
            return self._leases.get(experiment_id)

    def expired(self, now: float | None = None) -> list[Lease]:
        """Leases past their deadline, oldest deadline first."""
        reading = self.clock.monotonic() if now is None else now
        with self._lock:
            overdue = [
                lease
                for lease in self._leases.values()
                if lease.deadline <= reading
            ]
        return sorted(overdue, key=lambda lease: lease.deadline)

    def active_count(self) -> int:
        with self._lock:
            return len(self._leases)

    def snapshot(self) -> list[dict[str, Any]]:
        """Health-report view: one row per outstanding lease."""
        now = self.clock.monotonic()
        with self._lock:
            leases = list(self._leases.values())
        return [
            {
                "experiment_id": lease.experiment_id,
                "workflow_id": lease.workflow_id,
                "task": lease.task,
                "agent": lease.agent,
                "queue": lease.queue,
                "remaining_s": lease.remaining(now),
                "expired": lease.remaining(now) <= 0,
                "redispatches": lease.redispatches,
                "renewals": lease.renewals,
            }
            for lease in leases
        ]
