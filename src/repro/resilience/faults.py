"""Deterministic, seeded fault injection (the chaos substrate).

A :class:`FaultPlan` is an ordered list of :class:`FaultRule` objects.
Instrumented call sites — the minidb WAL, the broker and its journal,
the agent manager and the template agent — each hold an optional
``faults`` attribute (``None`` in production, costing one attribute read
per operation) and call :func:`fire` at their injection points:

=========================  ==============================================
point                      where it sits
=========================  ==============================================
``wal.append``             before a minidb WAL record is written
``wal.fsync``              after the WAL record is durable, before
                           returning
``wal.rotate``             before the active WAL segment is sealed
``wal.manifest.swap``      after the WAL manifest tmp file is durable,
                           before it replaces the live manifest
``checkpoint.write``       before the checkpoint side file is written
``checkpoint.swap``        after the side file is durable, before the
                           manifest publishes it
``wal.compact``            before superseded WAL segments are unlinked
``journal.append``         before a broker-journal record is written
``journal.replay``         at the start of a broker-journal replay
``journal.rotate``         before the active journal segment is sealed
``journal.manifest.swap``  like ``wal.manifest.swap``, for the journal
``journal.compact``        before the journal compaction snapshot is
                           written
``journal.compact.swap``   before the manifest publishes the snapshot
``journal.compact.gc``     before fully-acked journal segments are
                           unlinked
``broker.publish``         inside ``MessageBroker.send``, before enqueue
``broker.deliver``         inside ``MessageBroker.receive``, before
                           handing out
``broker.ack``             inside ``MessageBroker.ack``, before removal
``agent.dispatch``         inside ``AgentManager.dispatch_instance``
``manager.ack``            inside ``AgentManager.pump``, before
                           acknowledging
``agent.step``             inside ``TemplateAgent.step``, before handling
``agent.ack``              inside ``TemplateAgent.step``, before
                           acknowledging
=========================  ==============================================

Actions: ``crash`` raises :class:`~repro.errors.FaultInjected` at the
point (the caller's process "dies" there); ``delay`` advances/sleeps the
plan's clock; ``drop``, ``duplicate`` and ``corrupt`` are returned to
the call site, which implements the point-specific semantics (a dropped
delivery vanishes, a corrupted publish mangles the body into a poison
message, ...).

Determinism: rule order is evaluated first-match; probabilistic rules
draw from one ``random.Random(seed)`` owned by the plan, and ``after``/
``times`` counters make "crash exactly the 3rd append" expressible
without randomness at all.  The same plan object replays the same
faults for the same operation sequence — which is what lets the chaos
suite assert exact recovery outcomes per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Iterable

from repro.errors import FaultInjected
from repro.resilience.clock import Clock, SystemClock

#: The actions a rule may carry.
ACTIONS = ("crash", "delay", "drop", "duplicate", "corrupt")


@dataclass
class FaultRule:
    """One trigger: *at this point, under these conditions, do this*.

    ``point`` is an ``fnmatch`` pattern (``broker.*`` matches every
    broker hook); ``where`` adds equality filters on the context the
    call site supplies (``where={"queue": "agent.pcr-bot"}``).  The rule
    skips its first ``after`` matches, then fires at most ``times``
    times (``None`` = unlimited), each firing additionally gated by
    ``probability`` when below 1.
    """

    point: str
    action: str
    times: int | None = 1
    after: int = 0
    probability: float = 1.0
    where: dict[str, Any] = field(default_factory=dict)
    delay_s: float = 0.0
    note: str = ""
    #: Runtime counters (how often the rule matched / actually fired).
    seen: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )

    def matches(self, point: str, ctx: dict[str, Any]) -> bool:
        """Whether this rule applies to ``point`` with context ``ctx``."""
        if not fnmatchcase(point, self.point):
            return False
        return all(ctx.get(key) == value for key, value in self.where.items())

    @property
    def exhausted(self) -> bool:
        """Whether the rule's ``times`` budget is spent."""
        return self.times is not None and self.fired >= self.times


class FaultPlan:
    """A seeded, ordered set of fault rules plus a firing history."""

    def __init__(
        self,
        seed: int = 0,
        rules: Iterable[FaultRule] = (),
        clock: Clock | None = None,
    ) -> None:
        self.seed = seed
        self.rules: list[FaultRule] = list(rules)
        self.clock: Clock = clock or SystemClock()
        self._rng = random.Random(seed)
        #: Every fault actually applied: ``(point, action, context)``.
        self.history: list[tuple[str, str, dict[str, Any]]] = []

    def rule(self, point: str, action: str, **kwargs: Any) -> "FaultPlan":
        """Append a rule (builder style); returns the plan."""
        self.rules.append(FaultRule(point, action, **kwargs))
        return self

    def fire(self, point: str, **ctx: Any) -> FaultRule | None:
        """The first armed rule matching ``point``/``ctx``, or ``None``.

        Matching rules advance their ``seen`` counter even while held
        back by ``after``; a firing rule advances ``fired`` and is
        recorded in :attr:`history`.
        """
        for rule in self.rules:
            if not rule.matches(point, ctx):
                continue
            rule.seen += 1
            if rule.seen <= rule.after:
                continue
            if rule.exhausted:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            rule.fired += 1
            self.history.append((point, rule.action, dict(ctx)))
            return rule
        return None

    def fired_points(self) -> list[str]:
        """The points that fired, in order (assertion convenience)."""
        return [point for point, __, __ in self.history]


def fire(faults: FaultPlan | None, point: str, **ctx: Any) -> str | None:
    """Consult ``faults`` at ``point``; apply crash/delay in place.

    The universal call-site helper: ``None`` plans (production) cost one
    comparison.  A ``crash`` rule raises :class:`FaultInjected` here so
    call sites cannot forget to die; a ``delay`` rule sleeps the plan's
    clock and returns ``None`` (execution continues).  ``drop`` /
    ``duplicate`` / ``corrupt`` are returned for the caller to apply.
    """
    if faults is None:
        return None
    rule = faults.fire(point, **ctx)
    if rule is None:
        return None
    if rule.action == "crash":
        raise FaultInjected(point, rule.note)
    if rule.action == "delay":
        faults.clock.sleep(rule.delay_s)
        return None
    return rule.action


def mangle(body: str) -> str:
    """Deterministically corrupt a message body (the ``corrupt`` action).

    Truncates at the midpoint and splices in a marker that breaks both
    XML and JSON parsing, turning the message into reproducible poison.
    """
    cut = len(body) // 2
    return body[:cut] + "\x00<corrupted/>"
