"""Injectable time source for the resilience layer.

Retry backoff, lease deadlines and circuit-breaker cooldowns must all be
testable without wall-clock sleeps (the chaos suite runs thousands of
"seconds" of failure scenarios in milliseconds).  Every component that
reasons about time therefore takes a :class:`Clock`; production code
uses :class:`SystemClock`, tests use :class:`ManualClock` and advance it
explicitly.

Two time bases, mirroring the stdlib: ``now()`` is wall-clock (for
records shown to humans — lease grant times, dead-letter timestamps),
``monotonic()`` is for measuring intervals and scheduling deadlines.
``ManualClock`` drives both off one counter so a test's timeline stays
coherent.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What the resilience components need from a time source."""

    def now(self) -> float:
        """Wall-clock seconds since the epoch."""
        ...  # pragma: no cover - protocol

    def monotonic(self) -> float:
        """Monotonic seconds, for deadlines and intervals."""
        ...  # pragma: no cover - protocol

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        ...  # pragma: no cover - protocol


class SystemClock:
    """The real time source (stdlib ``time``)."""

    def now(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """A clock tests advance by hand — no wall time ever passes.

    ``sleep`` advances the clock instead of blocking, so injected
    ``delay`` faults and backoff waits are visible as jumps on the
    simulated timeline rather than real latency.
    """

    def __init__(self, start: float = 1_000_000.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds}")
        self._now += seconds
        return self._now
