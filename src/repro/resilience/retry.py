"""Per-queue redelivery policy: exponential backoff, jitter, delivery cap.

When a consumer *rejects* a message (``Consumer.reject``), the broker
consults the queue's :class:`RetryPolicy`:

* while ``delivery_count`` is under :attr:`RetryPolicy.max_deliveries`,
  the message is requeued with a ``not_before`` schedule computed by
  :meth:`RetryPolicy.backoff` — it becomes invisible to ``receive``
  until the backoff elapses, so a poison message cannot hot-loop the
  consumer;
* at the cap, the message is dead-lettered instead of redelivered —
  quarantined, never silently dropped.

Backoff is exponential with full-jitter damping: ``base * multiplier **
(delivery_count - 1)``, clamped to ``max_delay_s``, then scaled by a
uniform draw in ``[1 - jitter, 1 + jitter]`` from the *caller's* RNG —
the policy itself is a frozen value object, so one policy can serve many
queues while every broker stays deterministic under its own seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How a queue treats rejected (not merely unacked) messages."""

    #: Total deliveries allowed before dead-lettering (first + retries).
    max_deliveries: int = 5
    #: Backoff before the second delivery, in seconds.
    base_delay_s: float = 0.05
    #: Exponential growth factor per additional delivery.
    multiplier: float = 2.0
    #: Ceiling on a single backoff interval.
    max_delay_s: float = 30.0
    #: Jitter fraction (0 disables; 0.2 = +-20%).
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_deliveries < 1:
            raise ValueError("max_deliveries must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def exhausted(self, delivery_count: int) -> bool:
        """Whether a message with ``delivery_count`` deliveries is spent."""
        return delivery_count >= self.max_deliveries

    def backoff(self, delivery_count: int, rng: random.Random) -> float:
        """Seconds to hold the message back before redelivery.

        ``delivery_count`` is the number of deliveries already made
        (>= 1 when a rejection can happen).
        """
        exponent = max(0, delivery_count - 1)
        raw = self.base_delay_s * (self.multiplier**exponent)
        raw = min(raw, self.max_delay_s)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


#: A policy that never redelivers: first rejection goes straight to the
#: dead-letter queue.  Useful for queues whose consumers are known to be
#: deterministic (a poison message will poison every retry too).
NO_RETRY = RetryPolicy(max_deliveries=1, base_delay_s=0.0, jitter=0.0)
